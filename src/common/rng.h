// Deterministic random number generation for simulation and workloads.
//
// Every stochastic component (network jitter, synthetic EMR generator,
// service availability, JMF initialization) draws from an explicitly
// seeded Rng so whole-platform runs are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace hc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Normal with given mean/stddev.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// True with probability p.
  bool bernoulli(double p);

  /// Exponential with given mean (for inter-arrival times).
  double exponential(double mean);

  /// Random byte buffer of length n.
  std::vector<std::uint8_t> bytes(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-component streams).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf(s) sampler over {0, ..., n-1}; rank 0 is the most popular item.
/// Used by the caching benchmarks (Fig 4) to model skewed key popularity.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace hc
