// Identifier generation.
//
// The ingestion pipeline (Section II.B) references stored records by
// reference-id rather than by any identifying attribute; blockchain records
// likewise use opaque handles. IdGenerator produces UUID-formatted ids from
// a deterministic stream so simulations are reproducible.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"

namespace hc {

/// Produces UUID-v4-formatted identifiers from a seeded stream.
class IdGenerator {
 public:
  explicit IdGenerator(std::uint64_t seed = 0x1d5eed) : rng_(seed) {}

  /// e.g. "3f2a9c4e-1b7d-4a2e-9c31-77d0e5a1b2c3"
  std::string next_uuid();

  /// e.g. "patient-000042" — readable ids for synthetic entities.
  std::string next_labeled(const std::string& label);

 private:
  Rng rng_;
  std::uint64_t counter_ = 0;
};

}  // namespace hc
