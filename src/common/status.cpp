#include "common/status.h"

namespace hc {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnauthenticated: return "UNAUTHENTICATED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kIntegrityError: return "INTEGRITY_ERROR";
    case StatusCode::kComplianceViolation: return "COMPLIANCE_VIOLATION";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hc
