#include "common/bytes.h"

#include <stdexcept>

namespace hc {

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(const Bytes& b) { return std::string(b.begin(), b.end()); }

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("hex_decode: invalid hex digit");
}
}  // namespace

std::string hex_encode(const Bytes& b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0x0f]);
  }
  return out;
}

Bytes hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("hex_decode: odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) << 4 | hex_value(hex[i + 1])));
  }
  return out;
}

bool constant_time_equal(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void secure_wipe(Bytes& b) {
  volatile std::uint8_t* p = b.data();
  for (std::size_t i = 0; i < b.size(); ++i) p[i] = 0;
  b.clear();
}

}  // namespace hc
