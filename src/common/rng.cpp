#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hc {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean must be positive");
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

std::vector<std::uint8_t> Rng::bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(uniform_int(0, 255));
  return out;
}

Rng Rng::fork() { return Rng(engine_()); }

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace hc
