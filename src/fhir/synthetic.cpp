#include "fhir/synthetic.h"

#include <cstdio>

namespace hc::fhir {

namespace {

const std::vector<std::string> kFirstNames = {
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "Wei", "Fatima", "Aisha", "Raj", "Elena"};

const std::vector<std::string> kLastNames = {
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Chen", "Patel", "Nguyen", "Kim", "Singh", "Lopez", "Okafor", "Novak"};

const std::vector<std::string> kStreets = {
    "Oak St", "Maple Ave", "Cedar Rd", "Elm Dr", "Pine Ln", "Main St"};

const std::vector<std::string> kDrugs = {
    "metformin",    "insulin-glargine", "lisinopril",  "atorvastatin",
    "amlodipine",   "metoprolol",       "omeprazole",  "gabapentin",
    "sertraline",   "levothyroxine",    "albuterol",   "hydrochlorothiazide",
    "prednisone",   "tramadol",         "warfarin",    "clopidogrel"};

const std::vector<std::string> kConditions = {
    "type-2-diabetes", "hypertension",       "hyperlipidemia", "asthma",
    "depression",      "hypothyroidism",     "atrial-fibrillation",
    "osteoarthritis",  "chronic-kidney-disease"};

std::string two_digits(int v) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%02d", v);
  return buf;
}

std::string random_date(Rng& rng, int year_lo, int year_hi) {
  int year = static_cast<int>(rng.uniform_int(year_lo, year_hi));
  int month = static_cast<int>(rng.uniform_int(1, 12));
  int day = static_cast<int>(rng.uniform_int(1, 28));
  return std::to_string(year) + "-" + two_digits(month) + "-" + two_digits(day);
}

std::string random_phone(Rng& rng) {
  return "555-" + two_digits(static_cast<int>(rng.uniform_int(0, 99))) +
         std::to_string(rng.uniform_int(10000, 99999));
}

std::string random_ssn(Rng& rng) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%03d-%02d-%04d",
                static_cast<int>(rng.uniform_int(100, 899)),
                static_cast<int>(rng.uniform_int(10, 99)),
                static_cast<int>(rng.uniform_int(1000, 9999)));
  return buf;
}

template <typename T>
const T& pick(Rng& rng, const std::vector<T>& v) {
  return v[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
}

Patient make_patient(Rng& rng, std::size_t index) {
  Patient p;
  p.id = "patient-" + std::to_string(index);
  p.name = pick(rng, kFirstNames) + " " + pick(rng, kLastNames);
  p.ssn = random_ssn(rng);
  p.phone = random_phone(rng);
  p.age = static_cast<int>(rng.uniform_int(18, 95));
  int birth_year = 2018 - p.age;
  p.birth_date = std::to_string(birth_year) + "-" +
                 two_digits(static_cast<int>(rng.uniform_int(1, 12))) + "-" +
                 two_digits(static_cast<int>(rng.uniform_int(1, 28)));
  p.gender = rng.bernoulli(0.5) ? "female" : "male";
  p.zip = std::to_string(rng.uniform_int(10000, 99999));
  p.address = std::to_string(rng.uniform_int(1, 999)) + " " + pick(rng, kStreets);
  p.email = p.id + "@example.org";
  return p;
}

}  // namespace

const std::vector<std::string>& synthetic_drug_names() { return kDrugs; }
const std::vector<std::string>& synthetic_condition_codes() { return kConditions; }

std::vector<Bundle> make_synthetic_bundles(Rng& rng, const SyntheticOptions& options) {
  std::vector<Bundle> bundles;
  bundles.reserve(options.patient_count);

  for (std::size_t i = 0; i < options.patient_count; ++i) {
    Bundle bundle;
    bundle.id = "bundle-" + std::to_string(options.first_patient_index + i);
    Patient patient = make_patient(rng, options.first_patient_index + i);
    std::string patient_id = patient.id;
    bundle.resources.emplace_back(std::move(patient));

    for (int obs = 0; obs < options.observations_per_patient; ++obs) {
      Observation o;
      o.id = bundle.id + "-obs-" + std::to_string(obs);
      o.patient_id = patient_id;
      o.code = "hba1c";
      o.value = 5.0 + rng.uniform(0.0, 4.5);  // plausible HbA1c %
      o.unit = "%";
      o.effective_date = random_date(rng, 2014, 2017);
      bundle.resources.emplace_back(std::move(o));
    }

    for (int med = 0; med < options.medications_per_patient; ++med) {
      MedicationRequest m;
      m.id = bundle.id + "-med-" + std::to_string(med);
      m.patient_id = patient_id;
      m.drug = pick(rng, kDrugs);
      m.start_date = random_date(rng, 2013, 2016);
      m.days_supply = static_cast<int>(rng.uniform_int(30, 180));
      bundle.resources.emplace_back(std::move(m));
    }

    if (rng.bernoulli(options.condition_probability)) {
      Condition c;
      c.id = bundle.id + "-cond-0";
      c.patient_id = patient_id;
      c.code = pick(rng, kConditions);
      c.onset_date = random_date(rng, 2010, 2016);
      bundle.resources.emplace_back(std::move(c));
    }

    bundles.push_back(std::move(bundle));
  }
  return bundles;
}

Bundle make_synthetic_bundle(Rng& rng, const std::string& bundle_id,
                             std::size_t patient_index) {
  SyntheticOptions options;
  options.patient_count = 1;
  options.first_patient_index = patient_index;
  Bundle bundle = make_synthetic_bundles(rng, options).front();
  bundle.id = bundle_id;
  return bundle;
}

}  // namespace hc::fhir
