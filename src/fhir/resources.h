// Compact FHIR-like resource model (Section II.B).
//
// "Our system adopts FHIR as the data ingestion format; this is not a
// limitation of the system as the system can be easily extended to support
// any other format by writing adapters" — the HL7v2 adapter in hl7.h is
// that extension point. The resource set covers what the platform's
// applications need: demographics (Patient), labs (Observation),
// prescriptions (MedicationRequest) and diagnoses (Condition), shipped in
// Bundles.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "fhir/json.h"
#include "privacy/schema.h"

namespace hc::fhir {

struct Patient {
  std::string id;
  std::string name;
  std::string ssn;
  std::string phone;
  std::string email;
  std::string address;
  std::string birth_date;  // YYYY-MM-DD
  std::string gender;      // "male" | "female" | "other"
  std::string zip;         // 5 digits
  int age = 0;
};

struct Observation {
  std::string id;
  std::string patient_id;
  std::string code;            // e.g. "hba1c", "glucose"
  double value = 0.0;
  std::string unit;            // e.g. "%"
  std::string effective_date;  // YYYY-MM-DD
};

struct MedicationRequest {
  std::string id;
  std::string patient_id;
  std::string drug;        // e.g. "metformin"
  std::string start_date;  // YYYY-MM-DD
  int days_supply = 0;
};

struct Condition {
  std::string id;
  std::string patient_id;
  std::string code;        // e.g. "type-2-diabetes"
  std::string onset_date;  // YYYY-MM-DD
};

using Resource = std::variant<Patient, Observation, MedicationRequest, Condition>;

struct Bundle {
  std::string id;
  std::vector<Resource> resources;
};

/// Resource type tag used in the JSON encoding ("Patient", ...).
std::string_view resource_type_name(const Resource& resource);

// --- JSON serde -------------------------------------------------------
Json to_json(const Patient& p);
Json to_json(const Observation& o);
Json to_json(const MedicationRequest& m);
Json to_json(const Condition& c);
Json to_json(const Bundle& bundle);

/// Serializes a bundle for the wire/storage.
Bytes serialize_bundle(const Bundle& bundle);

/// Parses a bundle. kInvalidArgument on malformed JSON or unknown
/// resourceType entries.
Result<Bundle> parse_bundle(const Bytes& data);

// --- validation -------------------------------------------------------
/// Section II.B step "validation/curation of the data": structural checks
/// (ids present, references resolvable within the bundle or non-empty,
/// dates shaped YYYY-MM-DD, lab values finite, known genders).
Status validate_bundle(const Bundle& bundle);

// --- privacy bridge ----------------------------------------------------
/// Flattens a Patient into the FieldMap shape the privacy module consumes.
privacy::FieldMap patient_fields(const Patient& p);

/// Applies de-identified fields back onto a Patient (identifiers blanked,
/// quasi-identifiers replaced by their generalized strings — age moves into
/// `birth_date`-free representation, so the result carries them in zip/
/// gender and the pseudonym in `id`).
Patient apply_deidentified_fields(const privacy::FieldMap& fields,
                                  const std::string& pseudonym);

}  // namespace hc::fhir
