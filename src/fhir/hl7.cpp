#include "fhir/hl7.h"

#include <cstdlib>

#include <vector>

namespace hc::fhir {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string field;
  for (char c : s) {
    if (c == sep) {
      out.push_back(field);
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  out.push_back(field);
  return out;
}

std::string field_or(const std::vector<std::string>& fields, std::size_t i) {
  return i < fields.size() ? fields[i] : std::string();
}

std::string gender_from_hl7(const std::string& g) {
  if (g == "M") return "male";
  if (g == "F") return "female";
  if (g == "O") return "other";
  return g;
}

std::string gender_to_hl7(const std::string& g) {
  if (g == "male") return "M";
  if (g == "female") return "F";
  if (g == "other") return "O";
  return g;
}

}  // namespace

Result<Bundle> hl7v2_to_bundle(const std::string& message,
                               const std::string& bundle_id) {
  Bundle bundle;
  bundle.id = bundle_id;

  // HL7v2 separates segments with '\r'; accept '\n' too for convenience.
  std::vector<std::string> segments;
  std::string current;
  for (char c : message) {
    if (c == '\r' || c == '\n') {
      if (!current.empty()) segments.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) segments.push_back(std::move(current));

  int obx_counter = 0;
  for (const std::string& line : segments) {

    auto fields = split(line, '|');
    const std::string& segment = fields[0];
    if (segment == "MSH") continue;  // framing only

    if (segment == "PID") {
      Patient p;
      p.id = field_or(fields, 2);
      p.name = field_or(fields, 3);
      p.birth_date = field_or(fields, 4);
      p.gender = gender_from_hl7(field_or(fields, 5));
      p.address = field_or(fields, 6);
      p.zip = field_or(fields, 7);
      p.phone = field_or(fields, 8);
      p.ssn = field_or(fields, 9);
      p.age = std::atoi(field_or(fields, 10).c_str());
      if (p.id.empty()) {
        return Status(StatusCode::kInvalidArgument, "PID segment missing patient id");
      }
      bundle.resources.emplace_back(std::move(p));
    } else if (segment == "OBX") {
      Observation o;
      o.id = bundle_id + "-obx-" + std::to_string(++obx_counter);
      o.patient_id = field_or(fields, 2);
      o.code = field_or(fields, 3);
      o.value = std::strtod(field_or(fields, 4).c_str(), nullptr);
      o.unit = field_or(fields, 5);
      o.effective_date = field_or(fields, 6);
      if (o.patient_id.empty() || o.code.empty()) {
        return Status(StatusCode::kInvalidArgument, "OBX segment missing fields");
      }
      bundle.resources.emplace_back(std::move(o));
    } else {
      return Status(StatusCode::kInvalidArgument, "unknown HL7 segment: " + segment);
    }
  }
  return bundle;
}

Result<std::string> bundle_to_hl7v2(const Bundle& bundle) {
  std::string out = "MSH|^~\\&|healthcloud||" + bundle.id + "\r";
  int pid_set = 0;
  int obx_set = 0;

  for (const auto& resource : bundle.resources) {
    if (const auto* p = std::get_if<Patient>(&resource)) {
      out += "PID|" + std::to_string(++pid_set) + "|" + p->id + "|" + p->name + "|" +
             p->birth_date + "|" + gender_to_hl7(p->gender) + "|" + p->address + "|" +
             p->zip + "|" + p->phone + "|" + p->ssn + "|" + std::to_string(p->age) +
             "\r";
    } else if (const auto* o = std::get_if<Observation>(&resource)) {
      char value[32];
      std::snprintf(value, sizeof(value), "%g", o->value);
      out += "OBX|" + std::to_string(++obx_set) + "|" + o->patient_id + "|" + o->code +
             "|" + value + "|" + o->unit + "|" + o->effective_date + "\r";
    } else {
      return Status(StatusCode::kInvalidArgument,
                    std::string("HL7v2 adapter cannot render ") +
                        std::string(resource_type_name(resource)));
    }
  }
  return out;
}

}  // namespace hc::fhir
