#include "fhir/resources.h"

#include <cctype>
#include <cmath>

namespace hc::fhir {

std::string_view resource_type_name(const Resource& resource) {
  struct Visitor {
    std::string_view operator()(const Patient&) const { return "Patient"; }
    std::string_view operator()(const Observation&) const { return "Observation"; }
    std::string_view operator()(const MedicationRequest&) const {
      return "MedicationRequest";
    }
    std::string_view operator()(const Condition&) const { return "Condition"; }
  };
  return std::visit(Visitor{}, resource);
}

Json to_json(const Patient& p) {
  return Json(JsonObject{
      {"resourceType", "Patient"},
      {"id", p.id},
      {"name", p.name},
      {"ssn", p.ssn},
      {"phone", p.phone},
      {"email", p.email},
      {"address", p.address},
      {"birthDate", p.birth_date},
      {"gender", p.gender},
      {"zip", p.zip},
      {"age", p.age},
  });
}

Json to_json(const Observation& o) {
  return Json(JsonObject{
      {"resourceType", "Observation"},
      {"id", o.id},
      {"patientId", o.patient_id},
      {"code", o.code},
      {"value", o.value},
      {"unit", o.unit},
      {"effectiveDate", o.effective_date},
  });
}

Json to_json(const MedicationRequest& m) {
  return Json(JsonObject{
      {"resourceType", "MedicationRequest"},
      {"id", m.id},
      {"patientId", m.patient_id},
      {"drug", m.drug},
      {"startDate", m.start_date},
      {"daysSupply", m.days_supply},
  });
}

Json to_json(const Condition& c) {
  return Json(JsonObject{
      {"resourceType", "Condition"},
      {"id", c.id},
      {"patientId", c.patient_id},
      {"code", c.code},
      {"onsetDate", c.onset_date},
  });
}

Json to_json(const Bundle& bundle) {
  JsonArray entries;
  entries.reserve(bundle.resources.size());
  for (const auto& resource : bundle.resources) {
    entries.push_back(std::visit([](const auto& r) { return to_json(r); }, resource));
  }
  return Json(JsonObject{
      {"resourceType", "Bundle"},
      {"id", bundle.id},
      {"entry", std::move(entries)},
  });
}

Bytes serialize_bundle(const Bundle& bundle) { return to_bytes(to_json(bundle).dump()); }

namespace {

Patient patient_from_json(const Json& j) {
  Patient p;
  p.id = j.string_or("id", "");
  p.name = j.string_or("name", "");
  p.ssn = j.string_or("ssn", "");
  p.phone = j.string_or("phone", "");
  p.email = j.string_or("email", "");
  p.address = j.string_or("address", "");
  p.birth_date = j.string_or("birthDate", "");
  p.gender = j.string_or("gender", "");
  p.zip = j.string_or("zip", "");
  p.age = static_cast<int>(j.number_or("age", 0));
  return p;
}

Observation observation_from_json(const Json& j) {
  Observation o;
  o.id = j.string_or("id", "");
  o.patient_id = j.string_or("patientId", "");
  o.code = j.string_or("code", "");
  o.value = j.number_or("value", 0.0);
  o.unit = j.string_or("unit", "");
  o.effective_date = j.string_or("effectiveDate", "");
  return o;
}

MedicationRequest medication_from_json(const Json& j) {
  MedicationRequest m;
  m.id = j.string_or("id", "");
  m.patient_id = j.string_or("patientId", "");
  m.drug = j.string_or("drug", "");
  m.start_date = j.string_or("startDate", "");
  m.days_supply = static_cast<int>(j.number_or("daysSupply", 0));
  return m;
}

Condition condition_from_json(const Json& j) {
  Condition c;
  c.id = j.string_or("id", "");
  c.patient_id = j.string_or("patientId", "");
  c.code = j.string_or("code", "");
  c.onset_date = j.string_or("onsetDate", "");
  return c;
}

bool valid_date(const std::string& s) {
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return false;
  for (std::size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  int month = (s[5] - '0') * 10 + (s[6] - '0');
  int day = (s[8] - '0') * 10 + (s[9] - '0');
  return month >= 1 && month <= 12 && day >= 1 && day <= 31;
}

}  // namespace

Result<Bundle> parse_bundle(const Bytes& data) {
  auto doc = parse_json(to_string(data));
  if (!doc.is_ok()) return doc.status();
  const Json& root = *doc;
  if (root.string_or("resourceType", "") != "Bundle") {
    return Status(StatusCode::kInvalidArgument, "top-level resource is not a Bundle");
  }

  Bundle bundle;
  bundle.id = root.string_or("id", "");
  const Json& entries = root["entry"];
  if (!entries.is_array()) {
    return Status(StatusCode::kInvalidArgument, "bundle has no entry array");
  }
  for (const Json& entry : entries.as_array()) {
    std::string type = entry.string_or("resourceType", "");
    if (type == "Patient") {
      bundle.resources.emplace_back(patient_from_json(entry));
    } else if (type == "Observation") {
      bundle.resources.emplace_back(observation_from_json(entry));
    } else if (type == "MedicationRequest") {
      bundle.resources.emplace_back(medication_from_json(entry));
    } else if (type == "Condition") {
      bundle.resources.emplace_back(condition_from_json(entry));
    } else {
      return Status(StatusCode::kInvalidArgument, "unknown resourceType: " + type);
    }
  }
  return bundle;
}

Status validate_bundle(const Bundle& bundle) {
  if (bundle.id.empty()) {
    return Status(StatusCode::kInvalidArgument, "bundle id missing");
  }
  if (bundle.resources.empty()) {
    return Status(StatusCode::kInvalidArgument, "bundle is empty");
  }

  struct Validator {
    Status operator()(const Patient& p) const {
      if (p.id.empty()) return Status(StatusCode::kInvalidArgument, "patient id missing");
      if (!p.birth_date.empty() && !valid_date(p.birth_date)) {
        return Status(StatusCode::kInvalidArgument,
                      "patient birthDate malformed: " + p.birth_date);
      }
      if (!p.gender.empty() && p.gender != "male" && p.gender != "female" &&
          p.gender != "other") {
        return Status(StatusCode::kInvalidArgument, "unknown gender: " + p.gender);
      }
      if (p.age < 0 || p.age > 130) {
        return Status(StatusCode::kInvalidArgument, "implausible age");
      }
      return Status::ok();
    }
    Status operator()(const Observation& o) const {
      if (o.id.empty()) return Status(StatusCode::kInvalidArgument, "observation id missing");
      if (o.patient_id.empty()) {
        return Status(StatusCode::kInvalidArgument, "observation has no patient reference");
      }
      if (o.code.empty()) {
        return Status(StatusCode::kInvalidArgument, "observation has no code");
      }
      if (!std::isfinite(o.value)) {
        return Status(StatusCode::kInvalidArgument, "observation value not finite");
      }
      if (!o.effective_date.empty() && !valid_date(o.effective_date)) {
        return Status(StatusCode::kInvalidArgument, "observation date malformed");
      }
      return Status::ok();
    }
    Status operator()(const MedicationRequest& m) const {
      if (m.id.empty()) {
        return Status(StatusCode::kInvalidArgument, "medicationRequest id missing");
      }
      if (m.patient_id.empty()) {
        return Status(StatusCode::kInvalidArgument,
                      "medicationRequest has no patient reference");
      }
      if (m.drug.empty()) {
        return Status(StatusCode::kInvalidArgument, "medicationRequest has no drug");
      }
      if (m.days_supply < 0) {
        return Status(StatusCode::kInvalidArgument, "negative daysSupply");
      }
      return Status::ok();
    }
    Status operator()(const Condition& c) const {
      if (c.id.empty()) return Status(StatusCode::kInvalidArgument, "condition id missing");
      if (c.patient_id.empty()) {
        return Status(StatusCode::kInvalidArgument, "condition has no patient reference");
      }
      if (c.code.empty()) {
        return Status(StatusCode::kInvalidArgument, "condition has no code");
      }
      return Status::ok();
    }
  };

  for (const auto& resource : bundle.resources) {
    if (Status s = std::visit(Validator{}, resource); !s.is_ok()) return s;
  }
  return Status::ok();
}

privacy::FieldMap patient_fields(const Patient& p) {
  return privacy::FieldMap{
      {"patient_id", p.id}, {"name", p.name},           {"ssn", p.ssn},
      {"phone", p.phone},   {"email", p.email},         {"address", p.address},
      {"birth_date", p.birth_date}, {"gender", p.gender}, {"zip", p.zip},
      {"age", std::to_string(p.age)},
  };
}

Patient apply_deidentified_fields(const privacy::FieldMap& fields,
                                  const std::string& pseudonym) {
  Patient p;
  p.id = pseudonym;
  auto get = [&fields](const char* key) {
    auto it = fields.find(key);
    return it == fields.end() ? std::string() : it->second;
  };
  p.birth_date = "";  // removed; generalized birth year may live in fields
  p.gender = get("gender");
  p.zip = get("zip");
  // Generalized age bands are strings like "30-34"; keep the lower bound as
  // a representative numeric age for schema compatibility.
  std::string age = get("age");
  p.age = std::atoi(age.c_str());
  return p;
}

}  // namespace hc::fhir
