#include "fhir/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace hc::fhir {

namespace {
const Json kNullJson;
}

const Json& Json::operator[](const std::string& key) const {
  if (!is_object()) return kNullJson;
  const auto& obj = as_object();
  auto it = obj.find(key);
  return it == obj.end() ? kNullJson : it->second;
}

std::string Json::string_or(const std::string& key, std::string fallback) const {
  const Json& v = (*this)[key];
  return v.is_string() ? v.as_string() : fallback;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json& v = (*this)[key];
  return v.is_number() ? v.as_number() : fallback;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Json& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    double d = v.as_number();
    char buf[32];
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    } else {
      std::snprintf(buf, sizeof(buf), "%.17g", d);
    }
    out += buf;
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    out.push_back('[');
    const auto& arr = v.as_array();
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out.push_back(',');
      dump_value(arr[i], out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    const auto& obj = v.as_object();
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out.push_back(',');
      first = false;
      dump_string(key, out);
      out.push_back(':');
      dump_value(value, out);
    }
    out.push_back('}');
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse() {
    skip_ws();
    auto value = parse_value();
    if (!value.is_ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) return error("trailing characters");
    return value;
  }

 private:
  Status error(const std::string& what) const {
    return Status(StatusCode::kInvalidArgument,
                  "json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> parse_value() {
    if (pos_ >= text_.size()) return error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s.is_ok()) return s.status();
        return Json(std::move(*s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Json(true);
        }
        return error("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Json(false);
        }
        return error("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Json(nullptr);
        }
        return error("bad literal");
      default:
        return parse_number();
    }
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return error("bad escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return error("bad \\u escape");
            }
            // BMP-only, encoded as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default: return error("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return error("unterminated string");
  }

  Result<Json> parse_number() {
    std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return error("expected value");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return error("bad number: " + num);
    return Json(d);
  }

  Result<Json> parse_array() {
    consume('[');
    JsonArray arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    for (;;) {
      skip_ws();
      auto v = parse_value();
      if (!v.is_ok()) return v;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return Json(std::move(arr));
      if (!consume(',')) return error("expected ',' or ']'");
    }
  }

  Result<Json> parse_object() {
    consume('{');
    JsonObject obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key.is_ok()) return key.status();
      skip_ws();
      if (!consume(':')) return error("expected ':'");
      skip_ws();
      auto v = parse_value();
      if (!v.is_ok()) return v;
      obj.emplace(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) return Json(std::move(obj));
      if (!consume(',')) return error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Result<Json> parse_json(std::string_view text) { return Parser(text).parse(); }

}  // namespace hc::fhir
