// HL7 v2 pipe-delimited adapter (Section II.B).
//
// "the system can be easily extended to support any other format by writing
// adapters that transform data from one exchange format to another, e.g.
// from HL7 to FHIR and back." This adapter handles a pragmatic subset of
// HL7v2: MSH (ignored beyond framing), PID (demographics) and OBX (lab
// observations), the segments our ingestion workloads carry.
//
// Simplified segment grammar (fields are '|' separated):
//   PID|<set>|<patient_id>|<name>|<birth_date YYYY-MM-DD>|<gender M/F/O>|
//       <address>|<zip>|<phone>|<ssn>|<age>
//   OBX|<set>|<patient_id>|<code>|<value>|<unit>|<date YYYY-MM-DD>
#pragma once

#include <string>

#include "common/status.h"
#include "fhir/resources.h"

namespace hc::fhir {

/// Converts an HL7v2 message (segments separated by '\r' or '\n') into a
/// FHIR Bundle. kInvalidArgument on unknown segments or missing fields.
Result<Bundle> hl7v2_to_bundle(const std::string& message, const std::string& bundle_id);

/// Inverse adapter: renders the bundle's Patients and Observations as HL7v2
/// segments ("...and back"). Other resource types are kInvalidArgument.
Result<std::string> bundle_to_hl7v2(const Bundle& bundle);

}  // namespace hc::fhir
