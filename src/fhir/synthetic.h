// Synthetic PHI generator.
//
// DESIGN.md substitution: the paper's platform ingests real PHI from EMRs
// and devices; we generate statistically plausible synthetic patients so
// the identical code paths (validation, de-identification, k-anonymity,
// ingestion, export) run on data with known properties and zero re-
// identification risk.
#pragma once

#include <vector>

#include "common/rng.h"
#include "fhir/resources.h"

namespace hc::fhir {

struct SyntheticOptions {
  std::size_t patient_count = 100;
  std::size_t first_patient_index = 0;  // ids start at patient-<this>
  int observations_per_patient = 4;   // HbA1c series
  int medications_per_patient = 2;
  double condition_probability = 0.6;
};

/// One self-contained bundle per patient: Patient + Observations +
/// MedicationRequests (+ maybe a Condition).
std::vector<Bundle> make_synthetic_bundles(Rng& rng, const SyntheticOptions& options);

/// A single well-formed bundle (quickstart/demo helper). `patient_index`
/// controls the patient id so callers can generate distinct patients.
Bundle make_synthetic_bundle(Rng& rng, const std::string& bundle_id,
                             std::size_t patient_index = 0);

/// Drug catalog the generator prescribes from; shared with the analytics
/// module's workloads so names line up across experiments.
const std::vector<std::string>& synthetic_drug_names();

/// Diagnosis codes the generator uses.
const std::vector<std::string>& synthetic_condition_codes();

}  // namespace hc::fhir
