// Minimal JSON value model, parser and emitter.
//
// The ingestion format is a compact FHIR-like JSON (Section II.B adopts
// FHIR as the exchange format). Only the JSON subset the resource model
// needs is implemented: null, bool, number, string, array, object, with
// standard escape handling for strings.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace hc::fhir {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}        // NOLINT
  Json(bool b) : value_(b) {}                      // NOLINT
  Json(double d) : value_(d) {}                    // NOLINT
  Json(int i) : value_(static_cast<double>(i)) {}  // NOLINT
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}  // NOLINT
  Json(std::string s) : value_(std::move(s)) {}    // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}      // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}     // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Object field access; returns null Json for missing keys.
  const Json& operator[](const std::string& key) const;

  /// Convenience getters with defaults (for tolerant resource parsing).
  std::string string_or(const std::string& key, std::string fallback) const;
  double number_or(const std::string& key, double fallback) const;

  std::string dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

/// Parses a complete JSON document. kInvalidArgument with a position hint
/// on malformed input (trailing garbage is an error).
Result<Json> parse_json(std::string_view text);

}  // namespace hc::fhir
