// Scenario -> deterministic event schedule.
//
// compile() expands one sweep cell of a validated Scenario into the
// concrete arrival list both schedulers replay: per-tenant open-loop
// streams (uniform or Poisson, phase-scaled), costs/payloads/consent/
// malware flags drawn from per-tenant per-purpose seeded Rngs, network
// transfer time added per the tenant's LinkProfile, and message-fault
// rules (drop/delay/duplicate/corrupt) applied in arrival order through a
// real FaultInjector. The output depends only on (scenario, load) — same
// file + same seed is the same byte sequence forever, which is what the
// replay-determinism suite pins.
//
// Seed derivation (all offsets from Scenario.seed, per tenant index i):
//   cost     seed + i        (matches bench_overload's Rng(700 + tenant)
//                             when the scenario seed is 700; overridable
//                             per tenant via cost_seed)
//   payload  seed + 3000 + i
//   consent  seed + 5000 + i
//   network  seed + 7000 + i
//   arrival  seed + 9000 + i (Poisson inter-arrival draws)
//   malware  seed + 11000 + i
//   faults   seed + 13      (the injector's stream)
// Streams are only instantiated when a tenant can draw from them, so a
// scenario with no network/faults/mix makes exactly the draws
// bench_overload made — the F9 equivalence golden depends on this.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "scenario/model.h"

namespace hc::scenario {

/// One concrete request the server will see. `at` already includes
/// network transfer and fault delay; dropped/corrupted arrivals never
/// reach the scheduler and are tallied as lost.
struct Arrival {
  SimTime at = 0;
  SimTime deadline = 0;
  std::uint64_t cost = 0;     // us of server work
  std::uint64_t payload = 0;  // bytes (ingestion replay + network transfer)
  int tenant = 0;             // index into Scenario.tenants
  bool consented = true;
  bool malware = false;
  bool dropped = false;    // lost on the wire (fault drop or link loss)
  bool corrupted = false;  // integrity-rejected at the gateway
};

/// One sweep cell, fully expanded.
struct CompiledCell {
  double load = 1.0;
  /// Resolved open-loop rate per tenant (fill tenant's remainder applied;
  /// 0 for closed-loop tenants).
  std::vector<double> rates;
  /// Open-loop arrivals sorted by (at, declaration order). Closed-loop
  /// tenants spawn at run time instead.
  std::vector<Arrival> arrivals;
};

/// Expands one sweep cell. The only failure is the arrival-count guard
/// (kInvalidArgument) — a validated scenario otherwise always compiles.
Result<CompiledCell> compile(const Scenario& scenario, double load);

/// Effective phase rate-scale for `tenant_index` at sim time `t`
/// (1.0 outside every phase). Exposed for the runner's closed-loop spawner.
double phase_scale_at(const Scenario& scenario, int tenant_index, SimTime t);

/// Effective consent probability at `t` (phase override or the tenant's).
double consent_probability_at(const Scenario& scenario, int tenant_index,
                              SimTime t);

/// The per-purpose seeded streams for one tenant (see the seed table in
/// the file comment). The runner uses the same derivation for closed-loop
/// tenants, which the compiler never draws from.
Rng cost_rng_for(const Scenario& scenario, std::size_t tenant_index);
Rng payload_rng_for(const Scenario& scenario, std::size_t tenant_index);
Rng consent_rng_for(const Scenario& scenario, std::size_t tenant_index);
Rng network_rng_for(const Scenario& scenario, std::size_t tenant_index);
Rng arrival_rng_for(const Scenario& scenario, std::size_t tenant_index);
Rng malware_rng_for(const Scenario& scenario, std::size_t tenant_index);

/// Transfer time for `payload` bytes across `link`: propagation + uniform
/// jitter (drawn from `net_rng` only when the profile has jitter) +
/// serialization. Shared by the compiler and the runner's closed-loop
/// spawner so both price the wire identically.
SimTime transfer_time(const net::LinkProfile& link, std::uint64_t payload,
                      Rng& net_rng);

}  // namespace hc::scenario
