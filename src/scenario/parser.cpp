#include "scenario/parser.h"

#include <cctype>

namespace hc::scenario {
namespace {

Status syntax_error(int line, const std::string& problem) {
  return Status(StatusCode::kInvalidArgument,
                "parse error: line " + std::to_string(line) + ": " + problem);
}

/// Splits one physical line (comment already stripped) into tokens.
/// Quoted tokens keep a leading '"' marker so the block-header logic can
/// tell a name from a bare word; the marker never escapes this file.
Status tokenize(const std::string& line, int line_no,
                std::vector<std::string>& tokens) {
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '"') {
      std::size_t close = line.find('"', i + 1);
      if (close == std::string::npos) {
        return syntax_error(line_no, "unterminated quoted string");
      }
      std::string token(1, '"');
      token.append(line, i + 1, close - i - 1);
      tokens.push_back(std::move(token));
      i = close + 1;
      if (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) {
        return syntax_error(line_no, "missing whitespace after quoted string");
      }
      continue;
    }
    std::size_t end = i;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end])) &&
           line[end] != '"') {
      ++end;
    }
    if (end < line.size() && line[end] == '"') {
      return syntax_error(line_no, "quote in the middle of a token");
    }
    tokens.push_back(line.substr(i, end - i));
    i = end;
  }
  return Status::ok();
}

bool is_quoted(const std::string& token) {
  return !token.empty() && token[0] == '"';
}

std::string unquote(const std::string& token) {
  return is_quoted(token) ? token.substr(1) : token;
}

}  // namespace

Result<RawDoc> parse(const std::string& text) {
  RawDoc doc;
  RawBlock* open = nullptr;  // block currently being filled, or null

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;

    // Strip comments — but not inside a quoted string.
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"') quoted = !quoted;
      if (line[i] == '#' && !quoted) {
        line.resize(i);
        break;
      }
    }

    std::vector<std::string> tokens;
    Status split = tokenize(line, line_no, tokens);
    if (!split.is_ok()) return split;
    if (tokens.empty()) continue;

    if (tokens[0] == "}") {
      if (tokens.size() != 1) {
        return syntax_error(line_no, "unexpected tokens after '}'");
      }
      if (open == nullptr) {
        return syntax_error(line_no, "'}' without an open block");
      }
      open = nullptr;
      continue;
    }

    if (open == nullptr) {
      // Block header: kind ["name"] {
      if (tokens.back() != "{") {
        return syntax_error(line_no, "expected '{' at end of block header");
      }
      if (is_quoted(tokens[0])) {
        return syntax_error(line_no, "block kind must not be quoted");
      }
      RawBlock block;
      block.kind = tokens[0];
      block.line = line_no;
      if (tokens.size() == 3) {
        if (!is_quoted(tokens[1])) {
          return syntax_error(line_no, "block name must be quoted");
        }
        block.name = unquote(tokens[1]);
      } else if (tokens.size() != 2) {
        return syntax_error(line_no,
                            "block header must be: kind [\"name\"] {");
      }
      doc.blocks.push_back(std::move(block));
      open = &doc.blocks.back();
      continue;
    }

    // Entry inside a block: key value...
    if (is_quoted(tokens[0])) {
      return syntax_error(line_no, "entry key must not be quoted");
    }
    if (tokens.size() < 2) {
      return syntax_error(line_no,
                          "entry needs at least one value: " + tokens[0]);
    }
    RawEntry entry;
    entry.key = tokens[0];
    entry.line = line_no;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      if (tokens[i] == "{" || tokens[i] == "}") {
        return syntax_error(line_no, "braces are not allowed in entry values");
      }
      entry.values.push_back(unquote(tokens[i]));
    }
    open->entries.push_back(std::move(entry));
  }

  if (open != nullptr) {
    return syntax_error(line_no, "unterminated block \"" + open->kind + "\"");
  }
  return doc;
}

}  // namespace hc::scenario
