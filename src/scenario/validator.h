// RawDoc -> Scenario: the strict decoder.
//
// Validation is all-or-nothing: either every block, key, value, range,
// and cross-reference checks out and a fully runnable Scenario comes
// back, or the first defect is reported as kInvalidArgument with an
// exact, stable diagnostic (the rejection-table test in
// tests/scenario_validator_test.cpp pins these strings — change a
// message and that test changes with it, on purpose). Nothing is ever
// silently defaulted past: unknown blocks and keys are errors, not
// warnings, and a reference to an undeclared quota/tenant/network/
// endpoint refuses the whole file.
#pragma once

#include "common/status.h"
#include "scenario/model.h"
#include "scenario/parser.h"

namespace hc::scenario {

/// Decodes and checks a parsed document. See file comment for the
/// error contract.
Result<Scenario> validate(const RawDoc& doc);

/// parse() + validate() in one step.
Result<Scenario> load_string(const std::string& text);

/// Reads `path` and load_string()s it. kNotFound when unreadable.
Result<Scenario> load_file(const std::string& path);

}  // namespace hc::scenario
