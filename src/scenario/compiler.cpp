#include "scenario/compiler.h"

#include <algorithm>
#include <cmath>

#include "fault/fault.h"

namespace hc::scenario {
namespace {

/// Hard cap on expanded arrivals per cell, so a (valid) 600s x 1e6 req/s
/// scenario refuses loudly instead of eating the machine.
constexpr std::size_t kMaxArrivals = 5'000'000;

bool phase_applies(const PhaseSpec& phase, const std::string& tenant) {
  if (phase.tenants.empty()) return true;
  for (const std::string& name : phase.tenants) {
    if (name == tenant) return true;
  }
  return false;
}

/// The phase covering (tenant, t), or null. Phases for one tenant never
/// overlap (validated), so the first hit is the only hit.
const PhaseSpec* phase_at(const Scenario& scenario, int tenant_index, SimTime t) {
  const std::string& name =
      scenario.tenants[static_cast<std::size_t>(tenant_index)].name;
  for (const PhaseSpec& phase : scenario.phases) {
    if (t >= phase.from && t < phase.until && phase_applies(phase, name)) {
      return &phase;
    }
  }
  return nullptr;
}

/// Per-tenant generation state; streams are created lazily so degenerate
/// mixes (consent 1.0, no network, fixed payload) draw nothing at all.
struct TenantStreams {
  Rng cost;
  Rng payload;
  Rng consent;
  Rng network;
  Rng arrival;
  Rng malware;
};

}  // namespace

SimTime transfer_time(const net::LinkProfile& link, std::uint64_t payload,
                      Rng& net_rng) {
  SimTime t = link.base_latency;
  if (link.jitter > 0) t += net_rng.uniform_int(0, link.jitter);
  if (link.bandwidth_bytes_per_us > 0.0) {
    t += static_cast<SimTime>(
        std::llround(static_cast<double>(payload) / link.bandwidth_bytes_per_us));
  }
  return t;
}

double phase_scale_at(const Scenario& scenario, int tenant_index, SimTime t) {
  const PhaseSpec* phase = phase_at(scenario, tenant_index, t);
  return phase == nullptr ? 1.0 : phase->rate_scale;
}

double consent_probability_at(const Scenario& scenario, int tenant_index,
                              SimTime t) {
  const PhaseSpec* phase = phase_at(scenario, tenant_index, t);
  if (phase != nullptr && phase->consent_probability.has_value()) {
    return *phase->consent_probability;
  }
  return scenario.tenants[static_cast<std::size_t>(tenant_index)]
      .consent_probability;
}

Rng cost_rng_for(const Scenario& scenario, std::size_t tenant_index) {
  const TenantSpec& tenant = scenario.tenants[tenant_index];
  std::uint64_t seed = tenant.cost_seed >= 0
                           ? static_cast<std::uint64_t>(tenant.cost_seed)
                           : scenario.seed + tenant_index;
  return Rng(seed);
}

Rng payload_rng_for(const Scenario& scenario, std::size_t tenant_index) {
  return Rng(scenario.seed + 3000 + tenant_index);
}

Rng consent_rng_for(const Scenario& scenario, std::size_t tenant_index) {
  return Rng(scenario.seed + 5000 + tenant_index);
}

Rng network_rng_for(const Scenario& scenario, std::size_t tenant_index) {
  return Rng(scenario.seed + 7000 + tenant_index);
}

Rng arrival_rng_for(const Scenario& scenario, std::size_t tenant_index) {
  return Rng(scenario.seed + 9000 + tenant_index);
}

Rng malware_rng_for(const Scenario& scenario, std::size_t tenant_index) {
  return Rng(scenario.seed + 11000 + tenant_index);
}

Result<CompiledCell> compile(const Scenario& scenario, double load) {
  CompiledCell cell;
  cell.load = load;

  // Resolve the fill tenant's rate: the sweep remainder over the fixed
  // open-loop rates (bench_overload's `total_rate - 3 * kNormalRate`).
  double fixed = 0.0;
  for (const TenantSpec& tenant : scenario.tenants) {
    if (tenant.arrival != ArrivalKind::kClosedLoop && !tenant.rate_fill) {
      fixed += tenant.rate_per_sec;
    }
  }
  double fill_rate =
      std::max(0.0, std::floor(load * scenario.nominal_rate) - fixed);

  cell.rates.resize(scenario.tenants.size(), 0.0);
  for (std::size_t i = 0; i < scenario.tenants.size(); ++i) {
    const TenantSpec& tenant = scenario.tenants[i];
    if (tenant.arrival == ArrivalKind::kClosedLoop) continue;
    cell.rates[i] = tenant.rate_fill ? fill_rate : tenant.rate_per_sec;
  }

  for (std::size_t i = 0; i < scenario.tenants.size(); ++i) {
    const TenantSpec& tenant = scenario.tenants[i];
    if (tenant.arrival == ArrivalKind::kClosedLoop) continue;
    double rate = cell.rates[i];
    if (rate <= 0.0) continue;  // no stream, no draws (bench parity)

    TenantStreams streams{cost_rng_for(scenario, i),
                          payload_rng_for(scenario, i),
                          consent_rng_for(scenario, i),
                          network_rng_for(scenario, i),
                          arrival_rng_for(scenario, i),
                          malware_rng_for(scenario, i)};
    const NetworkSpec* network = scenario.network_for(tenant);
    int tenant_index = static_cast<int>(i);
    SimTime offset = tenant.phase_offset >= 0
                         ? tenant.phase_offset
                         : static_cast<SimTime>(i) * 17;

    auto emit = [&](SimTime t) -> Status {
      Arrival arrival;
      arrival.tenant = tenant_index;
      arrival.cost = static_cast<std::uint64_t>(streams.cost.uniform_int(
          static_cast<std::int64_t>(tenant.cost_lo),
          static_cast<std::int64_t>(tenant.cost_hi)));
      arrival.payload =
          tenant.payload_lo == tenant.payload_hi
              ? tenant.payload_lo
              : static_cast<std::uint64_t>(streams.payload.uniform_int(
                    static_cast<std::int64_t>(tenant.payload_lo),
                    static_cast<std::int64_t>(tenant.payload_hi)));
      double consent = consent_probability_at(scenario, tenant_index, t);
      arrival.consented =
          consent >= 1.0 ||
          (consent > 0.0 && streams.consent.bernoulli(consent));
      arrival.malware = tenant.malware_probability > 0.0 &&
                        streams.malware.bernoulli(tenant.malware_probability);
      arrival.at = t;
      if (network != nullptr) {
        arrival.at += transfer_time(network->link, arrival.payload, streams.network);
        if (network->link.drop_probability > 0.0 &&
            streams.network.bernoulli(network->link.drop_probability)) {
          arrival.dropped = true;
        }
      }
      arrival.deadline = arrival.at + scenario.server.deadline_budget;
      cell.arrivals.push_back(arrival);
      if (cell.arrivals.size() > kMaxArrivals) {
        return Status(StatusCode::kInvalidArgument,
                      "scenario \"" + scenario.name +
                          "\" generates too many arrivals (cap " +
                          std::to_string(kMaxArrivals) + ")");
      }
      return Status::ok();
    };

    if (tenant.arrival == ArrivalKind::kUniform) {
      // Evenly spaced at the phase-scaled rate. With no phases this is
      // exactly bench_overload's `for (t = offset; t < horizon; t += kSecond
      // / rate)` loop, truncation included.
      SimTime t = offset;
      while (t < scenario.horizon) {
        const PhaseSpec* phase = phase_at(scenario, tenant_index, t);
        double scale = phase == nullptr ? 1.0 : phase->rate_scale;
        if (scale <= 0.0) {
          t = phase->until;  // silenced for the whole phase
          continue;
        }
        Status status = emit(t);
        if (!status.is_ok()) return status;
        SimTime spacing = static_cast<SimTime>(kSecond / (rate * scale));
        t += std::max<SimTime>(1, spacing);
      }
    } else {  // kPoisson
      SimTime t = offset;
      while (true) {
        const PhaseSpec* phase = phase_at(scenario, tenant_index, t);
        double scale = phase == nullptr ? 1.0 : phase->rate_scale;
        if (scale <= 0.0) {
          t = phase->until;
          continue;
        }
        double mean = kSecond / (rate * scale);
        SimTime gap = static_cast<SimTime>(
            std::llround(streams.arrival.exponential(mean)));
        t += std::max<SimTime>(1, gap);
        if (t >= scenario.horizon) break;
        Status status = emit(t);
        if (!status.is_ok()) return status;
      }
    }
  }

  // Merge the per-tenant streams into one schedule; stable sort keeps
  // declaration order as the tie-break, like bench_overload.
  std::stable_sort(cell.arrivals.begin(), cell.arrivals.end(),
                   [](const Arrival& a, const Arrival& b) { return a.at < b.at; });

  // Message-fault pass, in arrival order against a real injector on its
  // own clock. Crash windows are service-side and handled by the runner.
  if (!scenario.faults.rules.empty()) {
    ClockPtr clock = make_clock();
    fault::FaultInjector injector(scenario.faults, clock,
                                  Rng(scenario.seed + 13));
    std::vector<Arrival> duplicated;
    for (Arrival& arrival : cell.arrivals) {
      clock->advance_to(arrival.at);
      const std::string& from =
          scenario.tenants[static_cast<std::size_t>(arrival.tenant)].name;
      fault::FaultDecision decision =
          injector.on_message(from, scenario.server.host);
      if (decision.drop) {
        arrival.dropped = true;
        continue;
      }
      if (decision.corrupt) arrival.corrupted = true;
      if (decision.extra_delay > 0) {
        arrival.at += decision.extra_delay;
        arrival.deadline += decision.extra_delay;
      }
      if (decision.duplicate) duplicated.push_back(arrival);
    }
    if (cell.arrivals.size() + duplicated.size() > kMaxArrivals) {
      return Status(StatusCode::kInvalidArgument,
                    "scenario \"" + scenario.name +
                        "\" generates too many arrivals (cap " +
                        std::to_string(kMaxArrivals) + ")");
    }
    cell.arrivals.insert(cell.arrivals.end(), duplicated.begin(),
                         duplicated.end());
    std::stable_sort(
        cell.arrivals.begin(), cell.arrivals.end(),
        [](const Arrival& a, const Arrival& b) { return a.at < b.at; });
  }

  return cell;
}

}  // namespace hc::scenario
