#include "scenario/runner.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <queue>
#include <tuple>

#include <unistd.h>

#include "blockchain/contracts.h"
#include "ckpt/checkpoint.h"
#include "ckpt/io.h"
#include "cluster/cluster.h"
#include "crypto/sha256.h"
#include "fhir/synthetic.h"
#include "ingestion/ingestion.h"
#include "obs/export.h"
#include "provenance/provenance.h"
#include "sched/sched.h"

namespace hc::scenario {
namespace {

constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

std::string cell_label(double load) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "x%.1f", load);
  return buf;
}

/// One request in flight. client >= 0 marks a closed-loop request whose
/// completion (or shed) schedules that client's next one.
struct Request {
  SimTime arrival = 0;
  SimTime cost = 0;
  SimTime deadline = 0;
  int tenant = 0;
  std::int64_t client = -1;
};

/// Heap event: either a ready request (arrival) or a closed-loop client
/// due to spawn its next request. Ordered by (at, seq) so runs are
/// deterministic and compiled arrivals win ties over spawned ones.
struct Event {
  SimTime at = 0;
  std::uint64_t seq = 0;
  bool is_spawn = false;
  Request request;       // arrival events
  int tenant = 0;        // spawn events
  std::int64_t client = 0;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    return std::tie(a.at, a.seq) > std::tie(b.at, b.seq);
  }
};

struct Outage {
  SimTime at = 0;
  SimTime restart = 0;
};

/// Per-second (timeline_resolution) counts for one (bucket, tenant).
struct BucketCounts {
  std::uint64_t offered = 0;
  std::uint64_t served = 0;
  std::uint64_t late = 0;
  std::uint64_t shed = 0;
  std::uint64_t lost = 0;
};

/// Per-tenant streams for closed-loop spawning (open-loop tenants drew
/// from the same derivations inside the compiler instead).
struct ClosedStreams {
  Rng cost;
  Rng payload;
  Rng network;
};

/// One (sweep cell, scheduler mode) execution: bench_overload's service
/// loop, extended with closed-loop clients, crash windows, and wire loss.
class CellRunner {
 public:
  CellRunner(const Scenario& scenario, const CompiledCell& cell,
             SchedulerMode mode)
      : scenario_(scenario), cell_(cell), mode_(mode) {
    result_.load = cell.load;
    result_.mode = mode;
    result_.tenants.resize(scenario.tenants.size());
    for (const fault::CrashEvent& crash : scenario.faults.crashes) {
      if (crash.host == scenario.server.host) {
        outages_.push_back({crash.at, crash.restart_at});
      }
    }
    std::sort(outages_.begin(), outages_.end(),
              [](const Outage& a, const Outage& b) { return a.at < b.at; });
  }

  CellModeResult run() {
    if (mode_ == SchedulerMode::kFifo) {
      run_fifo();
    } else {
      run_sched();
    }
    return std::move(result_);
  }

  /// Timeline lines for this run, bucket-major then tenant order.
  std::vector<std::string> timeline_lines() const {
    std::vector<std::string> lines;
    std::string prefix = cell_label(cell_.load) + " " +
                         std::string(scheduler_mode_name(mode_));
    for (const auto& [key, counts] : buckets_) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s t=%s %s offered=%llu served=%llu late=%llu shed=%llu "
                    "lost=%llu",
                    prefix.c_str(),
                    format_duration(static_cast<SimTime>(key.first) *
                                    scenario_.timeline_resolution)
                        .c_str(),
                    scenario_.tenants[static_cast<std::size_t>(key.second)]
                        .name.c_str(),
                    static_cast<unsigned long long>(counts.offered),
                    static_cast<unsigned long long>(counts.served),
                    static_cast<unsigned long long>(counts.late),
                    static_cast<unsigned long long>(counts.shed),
                    static_cast<unsigned long long>(counts.lost));
      lines.push_back(buf);
    }
    return lines;
  }

 private:
  /// Service start pushed past any scheduled server outage.
  SimTime adjust_for_outage(SimTime start) const {
    for (const Outage& outage : outages_) {
      if (start >= outage.at && start < outage.restart) start = outage.restart;
    }
    return start;
  }

  BucketCounts* bucket_for(const Request& request) {
    if (scenario_.timeline_resolution <= 0) return nullptr;
    SimTime at = std::min(request.arrival, scenario_.horizon - 1);
    auto key = std::make_pair(at / scenario_.timeline_resolution,
                              request.tenant);
    return &buckets_[key];
  }

  void record_completion(const Request& request, SimTime completion) {
    TenantTally& tally = result_.tenants[static_cast<std::size_t>(request.tenant)];
    BucketCounts* bucket = bucket_for(request);
    if (completion <= request.deadline) {
      ++tally.served;
      if (bucket != nullptr) ++bucket->served;
      tally.latency_us.push_back(static_cast<double>(completion - request.arrival));
    } else {
      ++tally.late;
      if (bucket != nullptr) ++bucket->late;
    }
    respawn(request, completion);
  }

  void record_shed(const Request& request, SimTime when) {
    TenantTally& tally = result_.tenants[static_cast<std::size_t>(request.tenant)];
    ++tally.shed;
    BucketCounts* bucket = bucket_for(request);
    if (bucket != nullptr) ++bucket->shed;
    respawn(request, when);
  }

  void record_lost(const Request& request) {
    TenantTally& tally = result_.tenants[static_cast<std::size_t>(request.tenant)];
    ++tally.offered;
    ++tally.lost;
    BucketCounts* bucket = bucket_for(request);
    if (bucket != nullptr) {
      ++bucket->offered;
      ++bucket->lost;
    }
    // The client only learns about a lost request at its deadline.
    respawn(request, request.deadline);
  }

  /// Closed-loop clients think, then go again — until the horizon.
  void respawn(const Request& request, SimTime finished) {
    if (request.client < 0) return;
    SimTime think =
        scenario_.tenants[static_cast<std::size_t>(request.tenant)].think;
    SimTime next = finished + think;
    if (next >= scenario_.horizon) return;
    Event event;
    event.at = next;
    event.seq = next_seq_++;
    event.is_spawn = true;
    event.tenant = request.tenant;
    event.client = request.client;
    events_.push(event);
  }

  /// Seeds each closed-loop client's first request (1us stagger per
  /// client, like the per-tenant 17us arrival stagger).
  void seed_clients() {
    next_seq_ = cell_.arrivals.size();
    closed_.clear();
    for (std::size_t i = 0; i < scenario_.tenants.size(); ++i) {
      const TenantSpec& tenant = scenario_.tenants[i];
      if (tenant.arrival != ArrivalKind::kClosedLoop) {
        closed_.push_back({Rng(0), Rng(0), Rng(0)});  // unused slot
        continue;
      }
      closed_.push_back({cost_rng_for(scenario_, i),
                         payload_rng_for(scenario_, i),
                         network_rng_for(scenario_, i)});
      SimTime offset = tenant.phase_offset >= 0
                           ? tenant.phase_offset
                           : static_cast<SimTime>(i) * 17;
      for (std::uint64_t client = 0; client < tenant.clients; ++client) {
        Event event;
        event.at = offset + static_cast<SimTime>(client);
        event.seq = next_seq_++;
        event.is_spawn = true;
        event.tenant = static_cast<int>(i);
        event.client = static_cast<std::int64_t>(client);
        events_.push(event);
      }
    }
  }

  /// Draws one closed-loop request at spawn time `at`. Returns false when
  /// the request is lost on the wire (already tallied).
  bool materialize_spawn(const Event& event, Request& request) {
    const TenantSpec& tenant =
        scenario_.tenants[static_cast<std::size_t>(event.tenant)];
    ClosedStreams& streams = closed_[static_cast<std::size_t>(event.tenant)];
    request.tenant = event.tenant;
    request.client = event.client;
    request.cost = static_cast<SimTime>(streams.cost.uniform_int(
        static_cast<std::int64_t>(tenant.cost_lo),
        static_cast<std::int64_t>(tenant.cost_hi)));
    request.arrival = event.at;
    const NetworkSpec* network = scenario_.network_for(tenant);
    if (network != nullptr) {
      std::uint64_t payload =
          tenant.payload_lo == tenant.payload_hi
              ? tenant.payload_lo
              : static_cast<std::uint64_t>(streams.payload.uniform_int(
                    static_cast<std::int64_t>(tenant.payload_lo),
                    static_cast<std::int64_t>(tenant.payload_hi)));
      request.arrival += transfer_time(network->link, payload, streams.network);
      request.deadline = request.arrival + scenario_.server.deadline_budget;
      if (network->link.drop_probability > 0.0 &&
          streams.network.bernoulli(network->link.drop_probability)) {
        record_lost(request);
        return false;
      }
    }
    request.deadline = request.arrival + scenario_.server.deadline_budget;
    return true;
  }

  /// Pulls the next ready request in (at, seq) order, converting spawn
  /// events as they surface. Returns false when both sources are dry.
  /// Lost arrivals are tallied here and skipped.
  bool next_request(Request& request, bool& lost) {
    while (true) {
      SimTime compiled_at =
          arrival_cursor_ < cell_.arrivals.size()
              ? cell_.arrivals[arrival_cursor_].at
              : kNever;
      std::uint64_t compiled_seq = arrival_cursor_;
      bool take_compiled;
      if (compiled_at == kNever && events_.empty()) return false;
      if (events_.empty()) {
        take_compiled = true;
      } else if (compiled_at == kNever) {
        take_compiled = false;
      } else {
        const Event& top = events_.top();
        take_compiled =
            std::tie(compiled_at, compiled_seq) <= std::tie(top.at, top.seq);
      }

      if (take_compiled) {
        const Arrival& arrival = cell_.arrivals[arrival_cursor_++];
        request = Request{arrival.at, static_cast<SimTime>(arrival.cost),
                          arrival.deadline, arrival.tenant, -1};
        lost = arrival.dropped || arrival.corrupted;
        return true;
      }

      Event event = events_.top();
      events_.pop();
      if (event.is_spawn) {
        Request spawned;
        if (!materialize_spawn(event, spawned)) continue;  // lost on the wire
        Event ready;
        ready.at = spawned.arrival;
        ready.seq = next_seq_++;
        ready.is_spawn = false;
        ready.request = spawned;
        events_.push(ready);
        continue;
      }
      request = event.request;
      lost = false;
      return true;
    }
  }

  void count_offered(const Request& request) {
    ++result_.tenants[static_cast<std::size_t>(request.tenant)].offered;
    BucketCounts* bucket = bucket_for(request);
    if (bucket != nullptr) ++bucket->offered;
  }

  // ---- fifo: unbounded queue, no admission, everything completes ------
  void run_fifo() {
    seed_clients();
    std::deque<Request> queue;
    SimTime server_free = 0;

    auto serve_until = [&](SimTime limit) {
      while (!queue.empty() && server_free < limit) {
        Request request = queue.front();
        queue.pop_front();
        SimTime start =
            adjust_for_outage(std::max(server_free, request.arrival));
        server_free = start + request.cost;
        record_completion(request, server_free);
      }
    };

    Request request;
    bool lost = false;
    while (next_request(request, lost)) {
      serve_until(request.arrival);
      if (lost) {
        record_lost(request);
        continue;
      }
      count_offered(request);
      queue.push_back(request);
    }
    serve_until(scenario_.horizon + scenario_.server.drain_grace);
  }

  // ---- sched: buckets + burst pool + admission + DRR ------------------
  void run_sched() {
    seed_clients();
    ClockPtr clock = make_clock();
    obs::MetricsPtr signals = obs::make_metrics();

    sched::BurstPool burst(
        {scenario_.burst_pool.rate_per_sec, scenario_.burst_pool.capacity},
        clock);
    std::vector<sched::TokenBucket> buckets;
    buckets.reserve(scenario_.tenants.size());
    for (const TenantSpec& tenant : scenario_.tenants) {
      const QuotaSpec& quota = scenario_.quota_for(tenant);
      buckets.emplace_back(
          sched::TokenBucketConfig{quota.rate_per_sec, quota.burst}, clock,
          &burst);
    }

    sched::AdmissionConfig admission_config;
    admission_config.capacity_per_sec = scenario_.server.capacity_per_sec;
    admission_config.latency_metric = "hc.scenario.observed_us";
    admission_config.target_p95_us =
        static_cast<double>(scenario_.server.deadline_budget);
    sched::AdmissionController admission(admission_config, clock, signals);

    sched::WeightedFairQueue<Request> queue(scenario_.server.wfq_quantum);
    for (const TenantSpec& tenant : scenario_.tenants) {
      queue.set_weight(tenant.name, scenario_.quota_for(tenant).weight);
    }

    SimTime server_free = 0;
    std::uint64_t since_adapt = 0;

    auto serve_until = [&](SimTime limit) {
      while (server_free < limit) {
        auto popped = queue.pop();
        if (!popped) break;
        Request request = *popped;
        SimTime start =
            adjust_for_outage(std::max(server_free, request.arrival));
        if (start > request.deadline) {
          record_shed(request, start);  // expired in queue: no server time
          continue;
        }
        server_free = start + request.cost;
        record_completion(request, server_free);
        signals->observe("hc.scenario.observed_us",
                         static_cast<double>(server_free - request.arrival));
        if (++since_adapt >= scenario_.server.adapt_every) {
          admission.adapt();
          since_adapt = 0;
        }
      }
    };

    Request request;
    bool lost = false;
    while (next_request(request, lost)) {
      serve_until(request.arrival);
      clock->advance_to(request.arrival);
      if (lost) {
        record_lost(request);
        continue;
      }
      count_offered(request);

      const std::string& tenant_name =
          scenario_.tenants[static_cast<std::size_t>(request.tenant)].name;
      if (buckets[static_cast<std::size_t>(request.tenant)].acquire() ==
          sched::Grant::kDenied) {
        record_shed(request, request.arrival);
        continue;
      }
      double backlog =
          static_cast<double>(queue.backlog_cost()) +
          static_cast<double>(
              std::max<SimTime>(0, server_free - clock->now()));
      if (!admission
               .admit(tenant_name, static_cast<double>(request.cost),
                      request.deadline, backlog)
               .is_ok()) {
        record_shed(request, request.arrival);
        continue;
      }
      queue.push(tenant_name, request,
                 static_cast<std::uint64_t>(request.cost));
    }
    serve_until(scenario_.horizon + scenario_.server.drain_grace);
    result_.final_headroom = admission.headroom();
  }

  const Scenario& scenario_;
  const CompiledCell& cell_;
  SchedulerMode mode_;
  CellModeResult result_;
  std::vector<Outage> outages_;
  std::map<std::pair<SimTime, int>, BucketCounts> buckets_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::vector<ClosedStreams> closed_;
  std::size_t arrival_cursor_ = 0;
  std::uint64_t next_seq_ = 0;
};

// ----------------------------------------------------------- ingestion replay

/// The QoS ingestion stack from tests/sched_integration_test.cpp (same
/// seeds), assembled without gtest. Uploads the first sweep cell's
/// surviving arrivals through the real pipeline and tallies outcomes.
Status replay_ingestion(const Scenario& scenario, const CompiledCell& cell,
                        std::size_t workers, std::vector<IngestTally>& out,
                        ProvenanceTally& prov, ClusterTally& shard,
                        CkptTally& ckpt) {
  ClockPtr clock = make_clock();
  LogPtr log = make_log(clock);
  Rng rng{70};
  crypto::KeyManagementService kms{"tenant-a", Rng(71), log};
  storage::StagingArea staging;
  storage::MessageQueue queue;
  storage::StatusTracker tracker;
  storage::DataLake lake{kms, "platform", Rng(72)};
  storage::MetadataStore metadata;
  privacy::AnonymizationVerificationService verifier{
      privacy::FieldSchema::standard_patient(), 0.99, 1};
  privacy::ReidentificationMap reid_map;
  obs::MetricsPtr metrics = obs::make_metrics();

  blockchain::LedgerConfig ledger_config;
  ledger_config.peers = {"peer-a", "peer-b", "peer-c"};
  blockchain::PermissionedLedger ledger(ledger_config, clock, log);
  Status contracts = blockchain::register_hcls_contracts(ledger);
  if (!contracts.is_ok()) return contracts;

  // Hybrid-storage provenance: Merkle-batch the ingest events and anchor
  // only the roots, with the consensus cost model engaged so the surge's
  // sim-time accounting reflects the batched/pipelined rounds.
  const bool anchored =
      scenario.ingestion.provenance == ProvenanceMode::kAnchored;
  std::unique_ptr<provenance::BatchAnchorer> anchorer;
  if (anchored) {
    Status registered = provenance::BatchAnchorer::register_contract(ledger);
    if (!registered.is_ok()) return registered;
    provenance::AnchorerConfig anchor_config;
    anchor_config.costs = provenance::ConsensusCostModel{};
    anchorer = std::make_unique<provenance::BatchAnchorer>(
        ledger, clock, anchor_config, metrics, log);
  }

  // Cluster scale-out replay: shard_hosts > 0 stands up the consistent-
  // hash ring and routes every stored record through the sharded lake.
  // Built without a metrics registry on purpose — transfer costs charge
  // the sim clock only, so the curated bundle metrics stay byte-identical
  // to the historical single-lake path.
  const bool sharded = scenario.ingestion.shard_hosts > 0;
  std::unique_ptr<cluster::Cluster> shard_cluster;
  std::unique_ptr<cluster::ShardedLake> shard_lake;
  if (sharded) {
    cluster::ClusterConfig cluster_config;
    cluster_config.hosts = scenario.ingestion.shard_hosts;
    cluster_config.vnodes = scenario.ingestion.shard_vnodes;
    cluster_config.replication = scenario.ingestion.shard_replication;
    shard_cluster = std::make_unique<cluster::Cluster>(cluster_config, clock);
    shard_lake = std::make_unique<cluster::ShardedLake>(*shard_cluster, kms,
                                                        "platform", Rng(74));
  }

  crypto::KeyId lake_key = kms.create_symmetric_key("platform");
  queue.bind_metrics(metrics);
  queue.enable_fair_mode(/*quantum=*/4);
  for (const TenantSpec& tenant : scenario.tenants) {
    queue.set_tenant_weight(tenant.name, scenario.quota_for(tenant).weight);
  }

  sched::AdaptiveBatcher batcher({}, metrics);
  ingestion::IngestionDeps deps;
  deps.clock = clock;
  deps.log = log;
  deps.kms = &kms;
  deps.staging = &staging;
  deps.queue = &queue;
  deps.tracker = &tracker;
  deps.lake = &lake;
  deps.metadata = &metadata;
  deps.ledger = &ledger;
  deps.verifier = &verifier;
  deps.reid_map = &reid_map;
  deps.metrics = metrics;
  deps.batcher = &batcher;
  deps.anchorer = anchorer.get();
  deps.cluster = shard_cluster.get();
  deps.cluster_lake = shard_lake.get();
  ingestion::IngestionService service(deps, lake_key, to_bytes("pseudo-key"),
                                      "platform");

  crypto::KeyId client_key = kms.create_keypair("clinic-a");
  Status authorized = kms.authorize(client_key, "clinic-a", "platform");
  if (!authorized.is_ok()) return authorized;
  auto pub = kms.public_key(client_key);
  if (!pub.is_ok()) return pub.status();

  out.assign(scenario.tenants.size(), IngestTally{});
  std::uint64_t attempted = 0;
  std::uint64_t expected_stored = 0;
  auto upload_arrival = [&](ingestion::IngestionService& target,
                            const Arrival& arrival) -> Status {
    IngestTally& tally = out[static_cast<std::size_t>(arrival.tenant)];
    const TenantSpec& tenant =
        scenario.tenants[static_cast<std::size_t>(arrival.tenant)];

    fhir::Bundle bundle = fhir::make_synthetic_bundle(
        rng, "bundle-t" + std::to_string(attempted), attempted);
    auto& patient = std::get<fhir::Patient>(bundle.resources[0]);
    if (arrival.malware) {
      patient.address = to_string(ingestion::test_malware_payload());
    }
    if (arrival.consented) {
      Status granted = ledger
                           .submit_and_commit("consent",
                                              {{"action", "grant"},
                                               {"patient", patient.id},
                                               {"group", "study-a"}},
                                              "healthcare-provider")
                           .status();
      if (!granted.is_ok()) return granted;
    }
    auto envelope =
        crypto::envelope_seal(*pub, fhir::serialize_bundle(bundle), rng);
    auto receipt = target.upload(
        envelope, "clinic-a", "study-a", client_key,
        {tenant.name, /*cost=*/1, /*deadline=*/0});
    if (!receipt.is_ok()) return receipt.status();

    ++attempted;
    ++tally.attempted;
    // The pipeline's own ordering: malware is scanned before consent.
    if (arrival.malware) {
      ++tally.rejected_malware;
    } else if (!arrival.consented) {
      ++tally.rejected_consent;
    } else {
      ++tally.stored;
      ++expected_stored;
    }
    return Status::ok();
  };

  // The arrivals the replay will actually upload, in arrival order.
  std::vector<const Arrival*> replayed;
  for (const Arrival& arrival : cell.arrivals) {
    if (replayed.size() >= scenario.ingestion.max_uploads) break;
    if (arrival.dropped || arrival.corrupted) continue;
    replayed.push_back(&arrival);
  }

  std::size_t stored = 0;
  const std::uint64_t seal_after =
      std::min<std::uint64_t>(scenario.ingestion.checkpoint_after,
                              replayed.size());
  if (scenario.ingestion.checkpoint_after == 0) {
    for (const Arrival* arrival : replayed) {
      if (Status s = upload_arrival(service, *arrival); !s.is_ok()) return s;
    }
    stored = service.process_all(workers);
  } else {
    // Crash-and-resume drill. Segment 1: drain up to the checkpoint
    // boundary, then seal the lake + metadata into a LAKE section and
    // publish it crash-consistently (temp -> fsync -> rename).
    crypto::KeyId ckpt_key_id = kms.create_symmetric_key("platform");
    auto ckpt_key = kms.symmetric_key(ckpt_key_id, "platform");
    if (!ckpt_key.is_ok()) return ckpt_key.status();

    std::size_t next = 0;
    for (; next < seal_after; ++next) {
      if (Status s = upload_arrival(service, *replayed[next]); !s.is_ok()) {
        return s;
      }
    }
    stored += service.process_all(workers);

    ckpt::LakeSnapshot snapshot = ckpt::capture_lake(lake, &metadata);
    Bytes checkpoint = ckpt::encode_lake(snapshot, *ckpt_key);
    ckpt.saved_objects = snapshot.objects.size();
    ckpt.checkpoint_bytes = checkpoint.size();
    const std::string checkpoint_path =
        (std::filesystem::temp_directory_path() /
         ("hc-scn-" + scenario.name + "-" + std::to_string(::getpid()) +
          ".ckpt"))
            .string();
    if (Status s = ckpt::atomic_write_file(checkpoint_path, checkpoint);
        !s.is_ok()) {
      return s;
    }

    if (scenario.ingestion.crash_and_resume == 0) {
      // Checkpoint-only drill: keep draining the live world.
      for (; next < replayed.size(); ++next) {
        if (Status s = upload_arrival(service, *replayed[next]); !s.is_ok()) {
          return s;
        }
      }
      stored += service.process_all(workers);
      ckpt.restored_objects = ckpt.saved_objects;
      ckpt.final_objects = lake.object_count();
      (void)ckpt::remove_file(checkpoint_path);
    } else {
      // Segment 2: uploads the crash will eat. They drain normally — the
      // records *were* stored — and then the live ingestion world dies
      // with the process: lake, metadata, staging, queue, tracker, all of
      // it. The ledger (replicated consensus), the KMS and the published
      // checkpoint file survive.
      const std::uint64_t crash_after = std::min<std::uint64_t>(
          scenario.ingestion.crash_and_resume, replayed.size());
      for (; next < crash_after; ++next) {
        if (Status s = upload_arrival(service, *replayed[next]); !s.is_ok()) {
          return s;
        }
      }
      stored += service.process_all(workers);
      ckpt.lost_objects = lake.object_count() - ckpt.saved_objects;

      // Resume: read the checkpoint back through the integrity-checked
      // decoder and restore into a *fresh* lake on a distinct id seed —
      // a restored lake minting the historical "ref-" stream would
      // collide with the very references it just restored.
      auto reread = ckpt::read_file(checkpoint_path);
      if (!reread.is_ok()) return reread.status();
      auto reloaded = ckpt::decode_lake(*reread, *ckpt_key);
      if (!reloaded.is_ok()) return reloaded.status();
      (void)ckpt::remove_file(checkpoint_path);

      storage::DataLake restored_lake{kms, "platform", Rng(75), 0x2d5eed};
      storage::MetadataStore restored_metadata;
      if (Status s = ckpt::restore_lake(*reloaded, restored_lake,
                                        &restored_metadata);
          !s.is_ok()) {
        return s;
      }
      ckpt.restored_objects = restored_lake.object_count();
      if (ckpt.restored_objects != ckpt.saved_objects) {
        return Status(StatusCode::kDataLoss,
                      "checkpoint restore installed " +
                          std::to_string(ckpt.restored_objects) +
                          " objects, sealed " +
                          std::to_string(ckpt.saved_objects));
      }
      // Integrity sweep: every restored record must still decrypt (keys
      // live in the KMS, not the checkpoint) to its recorded content hash.
      for (const storage::RecordMetadata& record : restored_metadata.all()) {
        auto payload = restored_lake.get(record.reference_id);
        if (!payload.is_ok() ||
            crypto::sha256(*payload) != record.content_hash) {
          return Status(StatusCode::kDataLoss,
                        "restored record " + record.reference_id +
                            " failed its integrity sweep");
        }
      }

      // Segment 3: a second ingestion service over the restored world
      // finishes the drain. Same KMS (client keys still unwrap), same
      // ledger (consent state survived the crash on-chain).
      storage::StagingArea restored_staging;
      storage::MessageQueue restored_queue;
      storage::StatusTracker restored_tracker;
      privacy::ReidentificationMap restored_reid;
      restored_queue.bind_metrics(metrics);
      restored_queue.enable_fair_mode(/*quantum=*/4);
      for (const TenantSpec& tenant : scenario.tenants) {
        restored_queue.set_tenant_weight(tenant.name,
                                         scenario.quota_for(tenant).weight);
      }
      sched::AdaptiveBatcher restored_batcher({}, metrics);
      ingestion::IngestionDeps restored_deps = deps;
      restored_deps.staging = &restored_staging;
      restored_deps.queue = &restored_queue;
      restored_deps.tracker = &restored_tracker;
      restored_deps.lake = &restored_lake;
      restored_deps.metadata = &restored_metadata;
      restored_deps.reid_map = &restored_reid;
      restored_deps.batcher = &restored_batcher;
      ingestion::IngestionService restored_service(
          restored_deps, lake_key, to_bytes("pseudo-key"), "platform");
      for (; next < replayed.size(); ++next) {
        if (Status s = upload_arrival(restored_service, *replayed[next]);
            !s.is_ok()) {
          return s;
        }
      }
      stored += restored_service.process_all(workers);
      ckpt.final_objects = restored_lake.object_count();
    }
  }
  if (stored != expected_stored) {
    return Status(StatusCode::kInternal,
                  "ingestion replay diverged: stored " +
                      std::to_string(stored) + ", expected " +
                      std::to_string(expected_stored));
  }

  if (sharded) {
    // The recovery drill: crash the configured host after the drain, then
    // rebalance — surviving sealed copies re-home onto the new replica
    // sets. The anchored tamper sweep below then doubles as the
    // convergence proof (every anchored record must still decrypt).
    if (!scenario.ingestion.crash_shard_host.empty()) {
      Status crashed =
          shard_cluster->crash_host(scenario.ingestion.crash_shard_host);
      if (!crashed.is_ok()) return crashed;
      cluster::ShardedLake::RebalanceReport rebalanced = shard_lake->rebalance();
      shard.rebalance_moved = rebalanced.moved_copies;
      shard.rebalance_recovered = rebalanced.recovered_primaries;
      shard.lost_objects = rebalanced.lost_objects;
      if (rebalanced.lost_objects != 0) {
        return Status(StatusCode::kDataLoss,
                      "cluster rebalance lost " +
                          std::to_string(rebalanced.lost_objects) + " objects");
      }
    }
    shard.hosts = scenario.ingestion.shard_hosts;
    shard.objects = shard_lake->object_count();
    shard.copies = shard_lake->copy_count();
    shard.transfers = shard_cluster->total_transfers();
    shard.bytes_moved = shard_cluster->total_bytes();
  }

  if (anchored) {
    prov.events = anchorer->anchored_events();
    prov.batches = anchorer->anchored_batches();
    prov.bytes_onchain = anchorer->bytes_onchain();
    prov.bytes_offchain = anchorer->bytes_offchain();
    if (anchorer->sealed_batches() != anchorer->anchored_batches()) {
      return Status(StatusCode::kInternal, "provenance batches left unanchored");
    }

    // Audit read traffic riding the surge: serve membership proofs in
    // canonical batch/leaf order (a pure function of the event set, never
    // of the worker interleaving) and verify every one against the chain.
    provenance::ProvenanceAuditor auditor(*anchorer, ledger, clock, metrics);
    const auto& batches = anchorer->batches();
    std::size_t leaves_total = 0;
    for (const auto& batch : batches) leaves_total += batch.events.size();
    std::uint64_t to_serve =
        leaves_total == 0 ? 0 : scenario.ingestion.audit_reads;
    std::size_t cursor = 0;
    for (std::uint64_t i = 0; i < to_serve; ++i, ++cursor) {
      std::size_t flat = cursor % leaves_total;
      std::size_t batch_idx = 0;
      while (flat >= batches[batch_idx].events.size()) {
        flat -= batches[batch_idx].events.size();
        ++batch_idx;
      }
      const provenance::ProvenanceEvent& event =
          batches[batch_idx].events[flat];
      auto proof = auditor.prove(event.record_ref, event.event);
      if (!proof.is_ok()) return proof.status();
      if (!provenance::ProvenanceAuditor::verify(*proof)) {
        return Status(StatusCode::kInternal, "membership proof failed to verify");
      }
      Status onchain = auditor.verify_onchain(*proof);
      if (!onchain.is_ok()) return onchain;
      ++prov.audit_reads;
    }

    // A tamper sweep over everything just stored must come back clean. In
    // sharded mode the records live across the cluster partitions, so run
    // the same checks through the sharded lake: metadata hash matches the
    // anchored leaf, and the payload still decrypts to the anchored hash
    // from whichever replica survived.
    if (sharded) {
      std::map<std::string, const provenance::ProvenanceEvent*> seen;
      for (const auto& batch : batches) {
        for (const provenance::ProvenanceEvent& event : batch.events) {
          seen.emplace(event.record_ref, &event);
        }
      }
      std::size_t sharded_flagged = 0;
      for (const auto& [ref, event] : seen) {
        auto md = metadata.get(ref);
        if (!md.is_ok() || md->content_hash != event->content_hash) {
          ++sharded_flagged;
          continue;
        }
        auto payload = shard_lake->get(ref);
        if (!payload.is_ok() ||
            crypto::sha256(*payload) != event->content_hash) {
          ++sharded_flagged;
        }
      }
      if (sharded_flagged != 0) {
        return Status(StatusCode::kInternal,
                      "sharded tamper sweep flagged " +
                          std::to_string(sharded_flagged) +
                          " records on a clean run");
      }
    } else {
      std::vector<std::string> flagged = auditor.audit(metadata, lake);
      if (!flagged.empty()) {
        return Status(StatusCode::kInternal,
                      "tamper sweep flagged " + std::to_string(flagged.size()) +
                          " records on a clean run");
      }
    }
  }
  return Status::ok();
}

// ------------------------------------------------------------------ verdicts

bool matches_mode(const VerdictSpec& verdict, SchedulerMode cell_mode) {
  return verdict.mode == SchedulerMode::kBoth || verdict.mode == cell_mode;
}

bool matches_load(const VerdictSpec& verdict, double load) {
  if (verdict.loads.empty()) return true;
  for (double candidate : verdict.loads) {
    if (candidate == load) return true;
  }
  return false;
}

void evaluate_verdicts(const Scenario& scenario, RunReport& report) {
  for (const VerdictSpec& verdict : scenario.verdicts) {
    VerdictOutcome outcome;
    outcome.name = verdict.name;

    auto check = [&](const std::string& where, const std::string& quantity,
                     double value, bool minimum) {
      bool pass = minimum ? value >= verdict.bound : value <= verdict.bound;
      char buf[256];
      std::snprintf(buf, sizeof(buf), "%s %s %s %s=%.4f %s %.4f",
                    pass ? "PASS" : "FAIL", verdict.name.c_str(), where.c_str(),
                    quantity.c_str(), value, minimum ? ">=" : "<=",
                    verdict.bound);
      outcome.lines.push_back(buf);
      outcome.pass = outcome.pass && pass;
    };

    bool stored_kind = verdict.kind == VerdictKind::kMinStoredFraction ||
                       verdict.kind == VerdictKind::kMaxStoredFraction;
    if (stored_kind) {
      for (std::size_t i = 0; i < report.ingest.size(); ++i) {
        const IngestTally& tally = report.ingest[i];
        if (tally.attempted == 0) continue;
        const std::string& name = scenario.tenants[i].name;
        if (verdict.tenant != "*" && verdict.tenant != name) continue;
        check("ingest " + name, "stored_fraction",
              static_cast<double>(tally.stored) /
                  static_cast<double>(tally.attempted),
              verdict.kind == VerdictKind::kMinStoredFraction);
      }
    } else {
      for (const CellModeResult& cell : report.cells) {
        if (!matches_mode(verdict, cell.mode) ||
            !matches_load(verdict, cell.load)) {
          continue;
        }
        std::string where_prefix = cell_label(cell.load) + " " +
                                   std::string(scheduler_mode_name(cell.mode));
        for (std::size_t i = 0; i < cell.tenants.size(); ++i) {
          const TenantTally& tally = cell.tenants[i];
          if (tally.offered == 0) continue;
          const std::string& name = scenario.tenants[i].name;
          if (verdict.tenant != "*" && verdict.tenant != name) continue;
          std::string where = where_prefix + " " + name;
          switch (verdict.kind) {
            case VerdictKind::kMinServedFraction:
            case VerdictKind::kMaxServedFraction:
              check(where, "served_fraction",
                    static_cast<double>(tally.served) /
                        static_cast<double>(tally.offered),
                    verdict.kind == VerdictKind::kMinServedFraction);
              break;
            case VerdictKind::kMaxP95Ms:
              check(where, "p95_ms", tally.percentile(0.95) / 1000.0,
                    /*minimum=*/false);
              break;
            default:
              break;
          }
        }
      }
    }

    if (outcome.lines.empty()) {
      outcome.lines.push_back("PASS " + verdict.name + " (nothing to check)");
    }
    report.metrics->set_gauge("hc.scenario.verdict." + verdict.name,
                              outcome.pass ? 1.0 : 0.0);
    report.verdicts.push_back(std::move(outcome));
  }
}

// ------------------------------------------------------------------- metrics

void record_cell_metrics(const Scenario& scenario, const CellModeResult& cell,
                         obs::MetricsRegistry& metrics) {
  double horizon_sec =
      static_cast<double>(scenario.horizon) / static_cast<double>(kSecond);
  std::string cell_prefix = "hc.scenario." + cell_label(cell.load) + "." +
                            std::string(scheduler_mode_name(cell.mode)) + ".";
  for (std::size_t i = 0; i < cell.tenants.size(); ++i) {
    const TenantTally& tally = cell.tenants[i];
    if (tally.offered == 0) continue;
    std::string prefix = cell_prefix + scenario.tenants[i].name + ".";
    metrics.add(prefix + "offered", tally.offered);
    metrics.add(prefix + "served", tally.served);
    metrics.add(prefix + "shed", tally.shed);
    metrics.add(prefix + "late", tally.late);
    metrics.add(prefix + "lost", tally.lost);
    metrics.set_gauge(prefix + "goodput_rps",
                      static_cast<double>(tally.served) / horizon_sec, "1/s");
    metrics.set_gauge(prefix + "p95_ms", tally.percentile(0.95) / 1000.0, "ms");
    metrics.set_gauge(prefix + "p99_ms", tally.percentile(0.99) / 1000.0, "ms");
  }
  if (cell.mode == SchedulerMode::kSched) {
    metrics.set_gauge("hc.scenario." + cell_label(cell.load) +
                          ".sched.headroom",
                      cell.final_headroom);
  }
}

void record_ingest_metrics(const Scenario& scenario,
                           const std::vector<IngestTally>& ingest,
                           obs::MetricsRegistry& metrics) {
  IngestTally total;
  for (std::size_t i = 0; i < ingest.size(); ++i) {
    const IngestTally& tally = ingest[i];
    if (tally.attempted == 0) continue;
    std::string prefix = "hc.scenario.ingest." + scenario.tenants[i].name + ".";
    metrics.add(prefix + "attempted", tally.attempted);
    metrics.add(prefix + "stored", tally.stored);
    metrics.add(prefix + "rejected_malware", tally.rejected_malware);
    metrics.add(prefix + "rejected_consent", tally.rejected_consent);
    total.attempted += tally.attempted;
    total.stored += tally.stored;
    total.rejected_malware += tally.rejected_malware;
    total.rejected_consent += tally.rejected_consent;
  }
  metrics.add("hc.scenario.ingest.total.attempted", total.attempted);
  metrics.add("hc.scenario.ingest.total.stored", total.stored);
  metrics.add("hc.scenario.ingest.total.rejected_malware",
              total.rejected_malware);
  metrics.add("hc.scenario.ingest.total.rejected_consent",
              total.rejected_consent);
}

void record_cluster_metrics(const ClusterTally& shard,
                            obs::MetricsRegistry& metrics) {
  metrics.add("hc.scenario.cluster.hosts", shard.hosts);
  metrics.add("hc.scenario.cluster.objects", shard.objects);
  metrics.add("hc.scenario.cluster.copies", shard.copies);
  metrics.add("hc.scenario.cluster.transfers", shard.transfers);
  metrics.set_gauge("hc.scenario.cluster.bytes_moved",
                    static_cast<double>(shard.bytes_moved), "B");
  metrics.add("hc.scenario.cluster.rebalance_moved", shard.rebalance_moved);
  metrics.add("hc.scenario.cluster.rebalance_recovered",
              shard.rebalance_recovered);
  metrics.add("hc.scenario.cluster.lost_objects", shard.lost_objects);
}

void record_ckpt_metrics(const CkptTally& ckpt, obs::MetricsRegistry& metrics) {
  metrics.add("hc.scenario.ckpt.saved_objects", ckpt.saved_objects);
  metrics.add("hc.scenario.ckpt.lost_objects", ckpt.lost_objects);
  metrics.add("hc.scenario.ckpt.restored_objects", ckpt.restored_objects);
  metrics.add("hc.scenario.ckpt.final_objects", ckpt.final_objects);
  metrics.set_gauge("hc.scenario.ckpt.checkpoint_bytes",
                    static_cast<double>(ckpt.checkpoint_bytes), "B");
}

void record_prov_metrics(const ProvenanceTally& prov,
                         obs::MetricsRegistry& metrics) {
  metrics.add("hc.scenario.prov.events", prov.events);
  metrics.add("hc.scenario.prov.batches", prov.batches);
  metrics.add("hc.scenario.prov.audit_reads", prov.audit_reads);
  metrics.set_gauge("hc.scenario.prov.bytes_onchain",
                    static_cast<double>(prov.bytes_onchain), "B");
  metrics.set_gauge("hc.scenario.prov.bytes_offchain",
                    static_cast<double>(prov.bytes_offchain), "B");
}

}  // namespace

double TenantTally::percentile(double p) const {
  if (latency_us.empty()) return 0.0;
  std::vector<double> sorted = latency_us;
  std::sort(sorted.begin(), sorted.end());
  std::size_t idx =
      static_cast<std::size_t>(p * static_cast<double>(sorted.size()));
  return sorted[std::min(idx, sorted.size() - 1)];
}

bool RunReport::all_pass() const {
  for (const VerdictOutcome& verdict : verdicts) {
    if (!verdict.pass) return false;
  }
  return true;
}

Result<RunReport> run(const Scenario& scenario, const RunOptions& options) {
  RunReport report;
  report.scenario_name = scenario.name;
  report.seed = scenario.seed;
  report.horizon = scenario.horizon;
  report.metrics = obs::make_metrics();

  // Timeline header: static facts every rerun shares.
  report.timeline.push_back("scenario " + scenario.name + " seed " +
                            std::to_string(scenario.seed) + " horizon " +
                            format_duration(scenario.horizon));
  for (const fault::CrashEvent& crash : scenario.faults.crashes) {
    report.timeline.push_back("crash " + crash.host + " " +
                              format_duration(crash.at) + ".." +
                              format_duration(crash.restart_at));
  }
  for (const PhaseSpec& phase : scenario.phases) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "phase \"%s\" %s..%s scale %g",
                  phase.name.c_str(), format_duration(phase.from).c_str(),
                  format_duration(phase.until).c_str(), phase.rate_scale);
    std::string line = buf;
    if (phase.consent_probability.has_value()) {
      std::snprintf(buf, sizeof(buf), " consent %g", *phase.consent_probability);
      line += buf;
    }
    line += " tenants";
    if (phase.tenants.empty()) {
      line += " *";
    } else {
      for (const std::string& tenant : phase.tenants) line += " " + tenant;
    }
    report.timeline.push_back(line);
  }

  std::vector<SchedulerMode> modes;
  if (scenario.server.mode == SchedulerMode::kBoth) {
    modes = {SchedulerMode::kFifo, SchedulerMode::kSched};
  } else {
    modes = {scenario.server.mode};
  }

  bool replayed_ingestion = false;
  for (double load : scenario.sweep) {
    Result<CompiledCell> compiled = compile(scenario, load);
    if (!compiled.is_ok()) return compiled.status();
    for (SchedulerMode mode : modes) {
      CellRunner runner(scenario, *compiled, mode);
      CellModeResult result = runner.run();
      record_cell_metrics(scenario, result, *report.metrics);
      for (std::string& line : runner.timeline_lines()) {
        report.timeline.push_back(std::move(line));
      }
      report.cells.push_back(std::move(result));
    }
    if (scenario.ingestion.enabled && !replayed_ingestion) {
      // The replay covers the first sweep cell only: arrivals are
      // identical across modes, so once is enough — and the bundle must
      // not depend on the worker count.
      Status replayed = replay_ingestion(scenario, *compiled,
                                         std::max<std::size_t>(1, options.ingest_workers),
                                         report.ingest, report.provenance,
                                         report.cluster, report.ckpt);
      if (!replayed.is_ok()) return replayed;
      record_ingest_metrics(scenario, report.ingest, *report.metrics);
      if (scenario.ingestion.provenance == ProvenanceMode::kAnchored) {
        record_prov_metrics(report.provenance, *report.metrics);
      }
      if (scenario.ingestion.shard_hosts > 0) {
        record_cluster_metrics(report.cluster, *report.metrics);
      }
      if (scenario.ingestion.checkpoint_after > 0) {
        record_ckpt_metrics(report.ckpt, *report.metrics);
      }
      replayed_ingestion = true;
    }
  }

  evaluate_verdicts(scenario, report);
  return report;
}

std::string metrics_text(const RunReport& report) {
  return obs::to_json(*report.metrics);
}

std::string timeline_text(const RunReport& report) {
  std::string text;
  for (const std::string& line : report.timeline) {
    text += line;
    text += '\n';
  }
  return text;
}

std::string verdicts_text(const RunReport& report) {
  std::string text;
  for (const VerdictOutcome& verdict : report.verdicts) {
    for (const std::string& line : verdict.lines) {
      text += line;
      text += '\n';
    }
  }
  text += std::string("verdicts: ") + (report.all_pass() ? "PASS" : "FAIL") +
          "\n";
  return text;
}

std::string bundle_text(const RunReport& report) {
  return "== metrics.json ==\n" + metrics_text(report) +
         "== timeline.txt ==\n" + timeline_text(report) +
         "== verdicts.txt ==\n" + verdicts_text(report);
}

Status write_bundle(const RunReport& report, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status(StatusCode::kUnavailable,
                  "cannot create bundle dir " + dir + ": " + ec.message());
  }
  Status metrics_written =
      obs::write_metrics_json(*report.metrics, dir + "/metrics.json");
  if (!metrics_written.is_ok()) return metrics_written;
  for (const auto& [name, text] :
       {std::pair<std::string, std::string>{"timeline.txt",
                                            timeline_text(report)},
        std::pair<std::string, std::string>{"verdicts.txt",
                                            verdicts_text(report)}}) {
    std::ofstream out(dir + "/" + name, std::ios::binary);
    if (!out) {
      return Status(StatusCode::kUnavailable,
                    "cannot write " + dir + "/" + name);
    }
    out << text;
  }
  return Status::ok();
}

}  // namespace hc::scenario
