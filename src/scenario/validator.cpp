#include "scenario/validator.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

namespace hc::scenario {
namespace {

Status invalid(const std::string& message) {
  return Status(StatusCode::kInvalidArgument, message);
}

std::string at_line(int line) { return " (line " + std::to_string(line) + ")"; }

/// Bounds print as plain integers when integral ("1000000", not "1e+06")
/// so the diagnostics the rejection table pins stay readable.
std::string fmt_number(double v) {
  if (std::floor(v) == v && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::optional<double> parse_number(const std::string& token) {
  if (token.empty()) return std::nullopt;
  const char* begin = token.data();
  const char* end = begin + token.size();
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

std::optional<std::int64_t> parse_integer(const std::string& token) {
  if (token.empty()) return std::nullopt;
  const char* begin = token.data();
  const char* end = begin + token.size();
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

/// "250ms", "5s", "17us", "2m" -> SimTime. Fractions allowed ("1.5s").
std::optional<SimTime> parse_duration(const std::string& token) {
  std::size_t unit_at = token.size();
  while (unit_at > 0 && !std::isdigit(static_cast<unsigned char>(token[unit_at - 1])) &&
         token[unit_at - 1] != '.') {
    --unit_at;
  }
  std::string number = token.substr(0, unit_at);
  std::string unit = token.substr(unit_at);
  std::optional<double> value = parse_number(number);
  if (!value || *value < 0) return std::nullopt;
  double scale = 0.0;
  if (unit == "us") scale = kMicrosecond;
  else if (unit == "ms") scale = kMillisecond;
  else if (unit == "s") scale = kSecond;
  else if (unit == "m") scale = kMinute;
  else return std::nullopt;
  double us = *value * scale;
  if (us > 9e18) return std::nullopt;
  return static_cast<SimTime>(std::llround(us));
}

/// Key/value decoder for one block: typed getters mark entries consumed,
/// so finish() can reject every unknown key; the first defect wins and
/// later getters become no-ops.
class BlockReader {
 public:
  BlockReader(const RawBlock& block, std::string ctx)
      : block_(block), ctx_(std::move(ctx)), used_(block.entries.size(), false) {}

  const std::string& ctx() const { return ctx_; }
  bool failed() const { return !err_.is_ok(); }
  Status error() const { return err_; }
  void fail(const std::string& message) {
    if (err_.is_ok()) err_ = invalid(message);
  }

  /// Finds `key`, enforcing arity and single use. Null when absent or a
  /// defect was already recorded.
  const RawEntry* find(const std::string& key, std::size_t min_values,
                       std::size_t max_values) {
    if (failed()) return nullptr;
    const RawEntry* found = nullptr;
    for (std::size_t i = 0; i < block_.entries.size(); ++i) {
      if (block_.entries[i].key != key) continue;
      if (found != nullptr) {
        fail(ctx_ + ": duplicate key \"" + key + "\"" + at_line(block_.entries[i].line));
        return nullptr;
      }
      found = &block_.entries[i];
      used_[i] = true;
    }
    if (found == nullptr) return nullptr;
    std::size_t n = found->values.size();
    if (n < min_values || n > max_values) {
      std::string want = min_values == max_values
                             ? std::to_string(min_values)
                             : std::to_string(min_values) + " to " + std::to_string(max_values);
      fail(ctx_ + ": key \"" + key + "\" expects " + want + " value" +
           (max_values == 1 ? "" : "s") + " (got " + std::to_string(n) + ")" +
           at_line(found->line));
      return nullptr;
    }
    return found;
  }

  void str(const std::string& key, std::string& out) {
    const RawEntry* entry = find(key, 1, 1);
    if (entry == nullptr) return;
    if (entry->values[0].empty()) {
      fail(ctx_ + ": " + key + " must not be empty" + at_line(entry->line));
      return;
    }
    out = entry->values[0];
  }

  void num(const std::string& key, double& out, double lo, double hi,
           bool lo_exclusive = false) {
    const RawEntry* entry = find(key, 1, 1);
    if (entry == nullptr) return;
    out = decode_num(key, entry->values[0], entry->line, lo, hi, lo_exclusive, out);
  }

  void integer(const std::string& key, std::uint64_t& out, std::int64_t lo,
               std::int64_t hi) {
    const RawEntry* entry = find(key, 1, 1);
    if (entry == nullptr) return;
    std::optional<std::int64_t> value = parse_integer(entry->values[0]);
    if (!value) {
      fail(ctx_ + ": " + key + ": invalid integer \"" + entry->values[0] + "\"" +
           at_line(entry->line));
      return;
    }
    if (*value < lo || *value > hi) {
      fail(ctx_ + ": " + key + " must be in [" + fmt_number(static_cast<double>(lo)) +
           ", " + fmt_number(static_cast<double>(hi)) + "] (got " + entry->values[0] +
           ")" + at_line(entry->line));
      return;
    }
    out = static_cast<std::uint64_t>(*value);
  }

  /// positive=true renders the lower bound as "must be > 0".
  void dur(const std::string& key, SimTime& out, SimTime hi, bool positive) {
    const RawEntry* entry = find(key, 1, 1);
    if (entry == nullptr) return;
    out = decode_dur(key, entry->values[0], entry->line, hi, positive, out);
  }

  void prob(const std::string& key, double& out) { num(key, out, 0.0, 1.0); }

  /// `key lo hi` pair of integers with lo <= hi (cost / payload ranges).
  void int_pair(const std::string& key, std::uint64_t& lo_out, std::uint64_t& hi_out,
                std::int64_t lo, std::int64_t hi) {
    const RawEntry* entry = find(key, 2, 2);
    if (entry == nullptr) return;
    std::uint64_t a = lo_out;
    std::uint64_t b = hi_out;
    decode_int_at(key, *entry, 0, lo, hi, a);
    decode_int_at(key, *entry, 1, lo, hi, b);
    if (failed()) return;
    if (a > b) {
      fail(ctx_ + ": " + key + " range must satisfy lo <= hi (got " +
           entry->values[0] + " " + entry->values[1] + ")" + at_line(entry->line));
      return;
    }
    lo_out = a;
    hi_out = b;
  }

  void num_list(const std::string& key, std::vector<double>& out,
                std::size_t min_values, std::size_t max_values, double lo, double hi,
                bool lo_exclusive) {
    const RawEntry* entry = find(key, min_values, max_values);
    if (entry == nullptr) return;
    std::vector<double> values;
    for (const std::string& token : entry->values) {
      values.push_back(decode_num(key, token, entry->line, lo, hi, lo_exclusive, 0.0));
      if (failed()) return;
    }
    out = std::move(values);
  }

  void str_list(const std::string& key, std::vector<std::string>& out) {
    const RawEntry* entry = find(key, 1, 16);
    if (entry == nullptr) return;
    out = entry->values;
  }

  /// Enum keyword from a fixed choice set; the message lists the choices.
  template <typename E>
  void keyword(const std::string& key, E& out,
               const std::vector<std::pair<std::string_view, E>>& choices) {
    const RawEntry* entry = find(key, 1, 1);
    if (entry == nullptr) return;
    for (const auto& [word, value] : choices) {
      if (entry->values[0] == word) {
        out = value;
        return;
      }
    }
    std::string listed;
    for (const auto& [word, value] : choices) {
      if (!listed.empty()) listed += "|";
      listed += word;
    }
    fail(ctx_ + ": " + key + " must be one of " + listed + " (got \"" +
         entry->values[0] + "\")" + at_line(entry->line));
  }

  /// Every entry not consumed by a getter is an unknown key.
  Status finish() {
    if (failed()) return err_;
    for (std::size_t i = 0; i < block_.entries.size(); ++i) {
      if (!used_[i]) {
        return invalid(ctx_ + ": unknown key \"" + block_.entries[i].key + "\"" +
                       at_line(block_.entries[i].line));
      }
    }
    return Status::ok();
  }

 private:
  double decode_num(const std::string& key, const std::string& token, int line,
                    double lo, double hi, bool lo_exclusive, double fallback) {
    std::optional<double> value = parse_number(token);
    if (!value) {
      fail(ctx_ + ": " + key + ": invalid number \"" + token + "\"" + at_line(line));
      return fallback;
    }
    bool below = lo_exclusive ? *value <= lo : *value < lo;
    if (below || *value > hi) {
      fail(ctx_ + ": " + key + " must be in " + (lo_exclusive ? "(" : "[") +
           fmt_number(lo) + ", " + fmt_number(hi) + "] (got " + token + ")" +
           at_line(line));
      return fallback;
    }
    return *value;
  }

  SimTime decode_dur(const std::string& key, const std::string& token, int line,
                     SimTime hi, bool positive, SimTime fallback) {
    std::optional<SimTime> value = parse_duration(token);
    if (!value) {
      fail(ctx_ + ": " + key + ": invalid duration \"" + token +
           "\" (expected e.g. 250ms, 5s)" + at_line(line));
      return fallback;
    }
    if (positive && *value <= 0) {
      fail(ctx_ + ": " + key + " must be > 0 (got " + token + ")" + at_line(line));
      return fallback;
    }
    if (*value > hi) {
      fail(ctx_ + ": " + key + " must be <= " + format_duration(hi) + " (got " +
           token + ")" + at_line(line));
      return fallback;
    }
    return *value;
  }

  void decode_int_at(const std::string& key, const RawEntry& entry, std::size_t index,
                     std::int64_t lo, std::int64_t hi, std::uint64_t& out) {
    if (failed()) return;
    std::optional<std::int64_t> value = parse_integer(entry.values[index]);
    if (!value) {
      fail(ctx_ + ": " + key + ": invalid integer \"" + entry.values[index] + "\"" +
           at_line(entry.line));
      return;
    }
    if (*value < lo || *value > hi) {
      fail(ctx_ + ": " + key + " values must be in [" +
           fmt_number(static_cast<double>(lo)) + ", " +
           fmt_number(static_cast<double>(hi)) + "] (got " + entry.values[index] +
           ")" + at_line(entry.line));
      return;
    }
    out = static_cast<std::uint64_t>(*value);
  }

  const RawBlock& block_;
  std::string ctx_;
  std::vector<bool> used_;
  Status err_;
};

const std::vector<std::pair<std::string_view, SchedulerMode>>& mode_choices() {
  static const std::vector<std::pair<std::string_view, SchedulerMode>> choices = {
      {"fifo", SchedulerMode::kFifo},
      {"sched", SchedulerMode::kSched},
      {"both", SchedulerMode::kBoth},
  };
  return choices;
}

const std::vector<std::pair<std::string_view, rbac::Role>>& role_choices() {
  static const std::vector<std::pair<std::string_view, rbac::Role>> choices = {
      {"tenant-admin", rbac::Role::kTenantAdmin},
      {"developer", rbac::Role::kDeveloper},
      {"analyst", rbac::Role::kAnalyst},
      {"clinician", rbac::Role::kClinician},
      {"auditor", rbac::Role::kAuditor},
  };
  return choices;
}

const std::vector<std::pair<std::string_view, ArrivalKind>>& arrival_choices() {
  static const std::vector<std::pair<std::string_view, ArrivalKind>> choices = {
      {"uniform", ArrivalKind::kUniform},
      {"poisson", ArrivalKind::kPoisson},
      {"closed", ArrivalKind::kClosedLoop},
  };
  return choices;
}

const std::vector<std::pair<std::string_view, VerdictKind>>& verdict_choices() {
  static const std::vector<std::pair<std::string_view, VerdictKind>> choices = {
      {"min_served_fraction", VerdictKind::kMinServedFraction},
      {"max_served_fraction", VerdictKind::kMaxServedFraction},
      {"max_p95_ms", VerdictKind::kMaxP95Ms},
      {"min_stored_fraction", VerdictKind::kMinStoredFraction},
      {"max_stored_fraction", VerdictKind::kMaxStoredFraction},
  };
  return choices;
}

/// "endpoint" as fault rules use it: "*" is the wildcard (empty in the
/// FaultPlan), anything else must resolve against tenants or the server.
std::string decode_endpoint(const std::string& token) {
  return token == "*" ? "" : token;
}

}  // namespace

// --------------------------------------------------------------- block decoders

namespace {

Status decode_scenario(const RawBlock& block, Scenario& out) {
  BlockReader reader(block, "scenario \"" + block.name + "\"");
  out.name = block.name;
  reader.integer("seed", out.seed, 0, std::numeric_limits<std::int64_t>::max());
  reader.dur("horizon", out.horizon, 10 * kMinute, /*positive=*/true);
  reader.num_list("sweep", out.sweep, 1, 8, 0.0, 100.0, /*lo_exclusive=*/true);
  reader.num("nominal_rate", out.nominal_rate, 1.0, 1e6);
  reader.dur("timeline_resolution", out.timeline_resolution, 10 * kMinute,
             /*positive=*/false);
  return reader.finish();
}

Status decode_server(const RawBlock& block, ServerSpec& out) {
  BlockReader reader(block, "server");
  reader.str("host", out.host);
  reader.num("capacity_per_sec", out.capacity_per_sec, 0.0, 1e12,
             /*lo_exclusive=*/true);
  reader.keyword("scheduler", out.mode, mode_choices());
  reader.dur("deadline", out.deadline_budget, kMinute, /*positive=*/true);
  reader.integer("wfq_quantum", out.wfq_quantum, 1, 1'000'000'000);
  reader.integer("adapt_every", out.adapt_every, 1, 1'000'000'000);
  reader.dur("drain_grace", out.drain_grace, 10 * kMinute, /*positive=*/false);
  return reader.finish();
}

Status decode_burst_pool(const RawBlock& block, BurstPoolSpec& out) {
  BlockReader reader(block, "burst_pool");
  reader.num("rate", out.rate_per_sec, 0.0, 1e9, /*lo_exclusive=*/true);
  reader.num("capacity", out.capacity, 0.0, 1e9, /*lo_exclusive=*/true);
  return reader.finish();
}

Status decode_quota(const RawBlock& block, QuotaSpec& out) {
  BlockReader reader(block, "quota \"" + block.name + "\"");
  out.name = block.name;
  reader.num("rate", out.rate_per_sec, 0.0, 1e9, /*lo_exclusive=*/true);
  reader.num("burst", out.burst, 0.0, 1e9, /*lo_exclusive=*/true);
  reader.integer("weight", out.weight, 1, 1000);
  return reader.finish();
}

Status decode_network(const RawBlock& block, NetworkSpec& out) {
  BlockReader reader(block, "network \"" + block.name + "\"");
  out.name = block.name;
  SimTime latency = 0;
  SimTime jitter = 0;
  double bandwidth_kbps = 1e9;
  double loss = 0.0;
  reader.dur("latency", latency, kMinute, /*positive=*/false);
  reader.dur("jitter", jitter, kMinute, /*positive=*/false);
  reader.num("bandwidth_kbps", bandwidth_kbps, 0.0, 1e9, /*lo_exclusive=*/true);
  reader.prob("loss", loss);
  Status status = reader.finish();
  if (!status.is_ok()) return status;
  out.link.base_latency = latency;
  out.link.jitter = jitter;
  // kbit/s -> bytes per microsecond: kbps * 1000 bits/s / 8 / 1e6 us.
  out.link.bandwidth_bytes_per_us = bandwidth_kbps / 8000.0;
  out.link.drop_probability = loss;
  return Status::ok();
}

Status decode_tenant(const RawBlock& block, TenantSpec& out) {
  BlockReader reader(block, "tenant \"" + block.name + "\"");
  out.name = block.name;
  reader.keyword("role", out.role, role_choices());
  reader.str("quota", out.quota);
  reader.keyword("arrival", out.arrival, arrival_choices());

  // rate is either a number or the keyword `fill`.
  if (const RawEntry* entry = reader.find("rate", 1, 1)) {
    if (entry->values[0] == "fill") {
      out.rate_fill = true;
    } else {
      std::optional<double> rate = parse_number(entry->values[0]);
      if (!rate) {
        reader.fail(reader.ctx() + ": rate: invalid number \"" + entry->values[0] +
                    "\"" + at_line(entry->line));
      } else if (*rate < 0.0 || *rate > 1e6) {
        reader.fail(reader.ctx() + ": rate must be in [0, 1000000] (got " +
                    entry->values[0] + ")" + at_line(entry->line));
      } else {
        out.rate_per_sec = *rate;
      }
    }
  }

  reader.integer("clients", out.clients, 1, 100000);
  reader.dur("think", out.think, 10 * kMinute, /*positive=*/false);
  if (reader.find("phase_offset", 1, 1) != nullptr) {
    // Re-find through the duration decoder (find() is idempotent on the
    // consumed flag, the duplicate check already ran).
    SimTime offset = 0;
    reader.dur("phase_offset", offset, 10 * kMinute, /*positive=*/false);
    out.phase_offset = offset;
  }
  reader.int_pair("cost", out.cost_lo, out.cost_hi, 1, 1'000'000'000);
  std::uint64_t cost_seed = 0;
  if (reader.find("cost_seed", 1, 1) != nullptr) {
    reader.integer("cost_seed", cost_seed, 0,
                   std::numeric_limits<std::int64_t>::max());
    out.cost_seed = static_cast<std::int64_t>(cost_seed);
  }
  reader.int_pair("payload", out.payload_lo, out.payload_hi, 1, 1 << 20);
  reader.prob("consent_probability", out.consent_probability);
  reader.prob("malware_probability", out.malware_probability);
  reader.str("network", out.network);
  Status status = reader.finish();
  if (!status.is_ok()) return status;

  // Arrival-kind consistency.
  const std::string ctx = "tenant \"" + out.name + "\"";
  if (out.arrival == ArrivalKind::kClosedLoop) {
    if (out.clients == 0) {
      return invalid(ctx + ": closed-loop arrival requires clients");
    }
    if (out.rate_fill || out.rate_per_sec != 0.0) {
      return invalid(ctx + ": closed-loop arrival does not take rate");
    }
  } else {
    if (out.clients != 0) {
      return invalid(ctx + ": clients is only valid with closed-loop arrival");
    }
    if (!out.rate_fill && out.rate_per_sec <= 0.0) {
      return invalid(ctx + ": open-loop arrival requires rate > 0 or rate fill");
    }
  }
  return Status::ok();
}

Status decode_phase(const RawBlock& block, SimTime horizon, PhaseSpec& out) {
  BlockReader reader(block, "phase \"" + block.name + "\"");
  out.name = block.name;
  reader.dur("from", out.from, 10 * kMinute, /*positive=*/false);
  reader.dur("until", out.until, 10 * kMinute, /*positive=*/true);
  reader.num("rate_scale", out.rate_scale, 0.0, 1000.0);
  double consent = 1.0;
  if (reader.find("consent_probability", 1, 1) != nullptr) {
    reader.prob("consent_probability", consent);
    out.consent_probability = consent;
  }
  reader.str_list("tenants", out.tenants);
  Status status = reader.finish();
  if (!status.is_ok()) return status;

  const std::string ctx = "phase \"" + out.name + "\"";
  if (out.until <= out.from) {
    return invalid(ctx + ": until (" + format_duration(out.until) +
                   ") must be after from (" + format_duration(out.from) + ")");
  }
  if (out.until > horizon) {
    return invalid(ctx + ": until (" + format_duration(out.until) +
                   ") must be <= horizon (" + format_duration(horizon) + ")");
  }
  return Status::ok();
}

const std::vector<std::pair<std::string_view, ProvenanceMode>>& provenance_choices() {
  static const std::vector<std::pair<std::string_view, ProvenanceMode>> choices = {
      {"per-record", ProvenanceMode::kPerRecord},
      {"anchored", ProvenanceMode::kAnchored},
  };
  return choices;
}

Status decode_ingestion(const RawBlock& block, IngestionSpec& out) {
  BlockReader reader(block, "ingestion");
  out.enabled = true;
  reader.integer("max_uploads", out.max_uploads, 1, 100000);
  reader.keyword("provenance", out.provenance, provenance_choices());
  reader.integer("audit_reads", out.audit_reads, 0, 100000);
  // Presence probes before the decoders (find() is idempotent on the
  // consumed flag) — the shard_* satellites are only meaningful once
  // shard_hosts turns the cluster path on.
  const bool saw_vnodes = reader.find("shard_vnodes", 1, 1) != nullptr;
  const bool saw_replication = reader.find("shard_replication", 1, 1) != nullptr;
  reader.integer("shard_hosts", out.shard_hosts, 0, 64);
  reader.integer("shard_vnodes", out.shard_vnodes, 1, 4096);
  reader.integer("shard_replication", out.shard_replication, 1, 8);
  reader.str("crash_shard_host", out.crash_shard_host);
  const bool saw_crash_resume = reader.find("crash_and_resume", 1, 1) != nullptr;
  reader.integer("checkpoint_after", out.checkpoint_after, 0, 100000);
  reader.integer("crash_and_resume", out.crash_and_resume, 0, 100000);
  Status status = reader.finish();
  if (!status.is_ok()) return status;
  if (out.audit_reads > 0 && out.provenance != ProvenanceMode::kAnchored) {
    return invalid("ingestion: audit_reads requires provenance anchored");
  }
  if (saw_crash_resume && out.checkpoint_after == 0) {
    return invalid("ingestion: crash_and_resume requires checkpoint_after > 0");
  }
  if (out.checkpoint_after > 0) {
    if (out.shard_hosts > 0) {
      return invalid("ingestion: checkpoint_after requires shard_hosts == 0");
    }
    if (out.provenance != ProvenanceMode::kPerRecord) {
      return invalid("ingestion: checkpoint_after requires provenance per-record");
    }
    if (out.checkpoint_after > out.max_uploads) {
      return invalid("ingestion: checkpoint_after (" +
                     std::to_string(out.checkpoint_after) +
                     ") must be <= max_uploads (" +
                     std::to_string(out.max_uploads) + ")");
    }
    if (out.crash_and_resume > 0) {
      if (out.crash_and_resume < out.checkpoint_after) {
        return invalid("ingestion: crash_and_resume (" +
                       std::to_string(out.crash_and_resume) +
                       ") must be >= checkpoint_after (" +
                       std::to_string(out.checkpoint_after) + ")");
      }
      if (out.crash_and_resume > out.max_uploads) {
        return invalid("ingestion: crash_and_resume (" +
                       std::to_string(out.crash_and_resume) +
                       ") must be <= max_uploads (" +
                       std::to_string(out.max_uploads) + ")");
      }
    }
  }
  if (out.shard_hosts == 0) {
    if (saw_vnodes) {
      return invalid("ingestion: shard_vnodes requires shard_hosts > 0");
    }
    if (saw_replication) {
      return invalid("ingestion: shard_replication requires shard_hosts > 0");
    }
    if (!out.crash_shard_host.empty()) {
      return invalid("ingestion: crash_shard_host requires shard_hosts > 0");
    }
    return Status::ok();
  }
  if (out.shard_replication > out.shard_hosts) {
    return invalid("ingestion: shard_replication (" +
                   std::to_string(out.shard_replication) +
                   ") must be <= shard_hosts (" +
                   std::to_string(out.shard_hosts) + ")");
  }
  if (!out.crash_shard_host.empty()) {
    // Hosts are named "shard-0" .. "shard-<hosts-1>" by the cluster.
    bool known = false;
    for (std::uint64_t i = 0; i < out.shard_hosts; ++i) {
      if (out.crash_shard_host == "shard-" + std::to_string(i)) {
        known = true;
        break;
      }
    }
    if (!known) {
      return invalid("ingestion: crash_shard_host \"" + out.crash_shard_host +
                     "\" is not one of shard-0..shard-" +
                     std::to_string(out.shard_hosts - 1));
    }
    if (out.shard_hosts < 2) {
      return invalid("ingestion: crash_shard_host requires shard_hosts >= 2");
    }
    if (out.shard_replication < 2) {
      return invalid(
          "ingestion: crash_shard_host requires shard_replication >= 2 "
          "(a lone copy dies with its host)");
    }
  }
  return Status::ok();
}

Status decode_verdict(const RawBlock& block, VerdictSpec& out) {
  BlockReader reader(block, "verdict \"" + block.name + "\"");
  out.name = block.name;
  reader.keyword("require", out.kind, verdict_choices());
  reader.str("tenant", out.tenant);
  reader.keyword("mode", out.mode, mode_choices());
  reader.num_list("loads", out.loads, 1, 8, 0.0, 100.0, /*lo_exclusive=*/true);
  // Bound range depends on the kind, so decode the kind first.
  switch (out.kind) {
    case VerdictKind::kMaxP95Ms:
      reader.num("bound", out.bound, 0.0, 1e6, /*lo_exclusive=*/true);
      break;
    default:
      reader.prob("bound", out.bound);
      break;
  }
  Status status = reader.finish();
  if (!status.is_ok()) return status;
  if (reader.find("require", 1, 1) == nullptr) {
    return invalid("verdict \"" + out.name + "\": missing required key \"require\"");
  }
  return Status::ok();
}

/// Fault entries are rules, not key/value settings, so they bypass
/// BlockReader: every entry is one rule line.
Status decode_fault(const RawBlock& block, const std::set<std::string>& endpoints,
                    fault::FaultPlan& out) {
  auto bad = [&](const RawEntry& entry, const std::string& problem) {
    return invalid("fault: " + entry.key + " " + problem + at_line(entry.line));
  };
  auto prob_at = [&](const RawEntry& entry, std::size_t index, double& value) {
    std::optional<double> parsed = parse_number(entry.values[index]);
    if (!parsed || *parsed < 0.0 || *parsed > 1.0) {
      return bad(entry, "probability must be in [0, 1] (got " +
                            entry.values[index] + ")");
    }
    value = *parsed;
    return Status::ok();
  };
  auto dur_at = [&](const RawEntry& entry, std::size_t index, SimTime& value) {
    std::optional<SimTime> parsed = parse_duration(entry.values[index]);
    if (!parsed) {
      return bad(entry, "invalid duration \"" + entry.values[index] + "\"");
    }
    value = *parsed;
    return Status::ok();
  };
  auto endpoint_at = [&](const RawEntry& entry, std::size_t index,
                         std::string& value) {
    value = decode_endpoint(entry.values[index]);
    if (!value.empty() && endpoints.find(value) == endpoints.end()) {
      return bad(entry, "endpoint \"" + value +
                            "\" is not a tenant or the server host");
    }
    return Status::ok();
  };

  for (const RawEntry& entry : block.entries) {
    if (entry.key == "crash") {
      if (entry.values.size() != 3) {
        return bad(entry, "expects: crash <host> <at> <restart>");
      }
      fault::CrashEvent crash;
      Status status = endpoint_at(entry, 0, crash.host);
      if (!status.is_ok()) return status;
      if (crash.host.empty()) return bad(entry, "host must not be a wildcard");
      if (!(status = dur_at(entry, 1, crash.at)).is_ok()) return status;
      if (!(status = dur_at(entry, 2, crash.restart_at)).is_ok()) return status;
      if (crash.restart_at <= crash.at) {
        return bad(entry, "restart (" + format_duration(crash.restart_at) +
                              ") must be after at (" + format_duration(crash.at) +
                              ")");
      }
      out.crashes.push_back(crash);
      continue;
    }

    fault::FaultRule rule;
    bool has_delay = false;
    if (entry.key == "drop") rule.kind = fault::FaultKind::kDrop;
    else if (entry.key == "delay") { rule.kind = fault::FaultKind::kDelay; has_delay = true; }
    else if (entry.key == "duplicate") rule.kind = fault::FaultKind::kDuplicate;
    else if (entry.key == "corrupt") rule.kind = fault::FaultKind::kCorrupt;
    else {
      return invalid("fault: unknown rule \"" + entry.key + "\"" +
                     at_line(entry.line));
    }

    // drop/duplicate/corrupt: <from> <to> <prob> [<start> <end>]
    // delay:                  <from> <to> <prob> <extra> [<start> <end>]
    std::size_t fixed = has_delay ? 4u : 3u;
    if (entry.values.size() != fixed && entry.values.size() != fixed + 2) {
      return bad(entry, has_delay
                            ? "expects: delay <from> <to> <prob> <extra> [<start> <end>]"
                            : std::string("expects: ") + entry.key +
                                  " <from> <to> <prob> [<start> <end>]");
    }
    Status status = endpoint_at(entry, 0, rule.from);
    if (!status.is_ok()) return status;
    if (!(status = endpoint_at(entry, 1, rule.to)).is_ok()) return status;
    if (!(status = prob_at(entry, 2, rule.probability)).is_ok()) return status;
    if (has_delay && !(status = dur_at(entry, 3, rule.extra_delay)).is_ok()) {
      return status;
    }
    if (entry.values.size() == fixed + 2) {
      if (!(status = dur_at(entry, fixed, rule.start)).is_ok()) return status;
      if (!(status = dur_at(entry, fixed + 1, rule.end)).is_ok()) return status;
      if (rule.end <= rule.start) {
        return bad(entry, "window end (" + format_duration(rule.end) +
                              ") must be after start (" +
                              format_duration(rule.start) + ")");
      }
    }
    out.rules.push_back(rule);
  }
  return Status::ok();
}

}  // namespace

// ------------------------------------------------------------------- validate

int Scenario::tenant_index(const std::string& tenant_name) const {
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (tenants[i].name == tenant_name) return static_cast<int>(i);
  }
  return -1;
}

const QuotaSpec& Scenario::quota_for(const TenantSpec& tenant) const {
  static const QuotaSpec kDefault{"(default)", 100.0, 20.0, 1};
  if (tenant.quota.empty()) return kDefault;
  for (const QuotaSpec& quota : quotas) {
    if (quota.name == tenant.quota) return quota;
  }
  return kDefault;  // unreachable post-validation
}

const NetworkSpec* Scenario::network_for(const TenantSpec& tenant) const {
  if (tenant.network.empty()) return nullptr;
  for (const NetworkSpec& network : networks) {
    if (network.name == tenant.network) return &network;
  }
  for (const NetworkSpec& network : network_presets()) {
    if (network.name == tenant.network) return &network;
  }
  return nullptr;  // unreachable post-validation
}

const std::vector<NetworkSpec>& network_presets() {
  static const std::vector<NetworkSpec> presets = {
      {"loopback", net::LinkProfile::loopback()},
      {"lan", net::LinkProfile::lan()},
      {"wan", net::LinkProfile::wan()},
      {"mobile", net::LinkProfile::mobile()},
      {"intercloud", net::LinkProfile::intercloud()},
  };
  return presets;
}

std::string_view scheduler_mode_name(SchedulerMode mode) {
  switch (mode) {
    case SchedulerMode::kFifo: return "fifo";
    case SchedulerMode::kSched: return "sched";
    case SchedulerMode::kBoth: return "both";
  }
  return "unknown";
}

std::string_view arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kUniform: return "uniform";
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kClosedLoop: return "closed";
  }
  return "unknown";
}

std::string_view verdict_kind_name(VerdictKind kind) {
  switch (kind) {
    case VerdictKind::kMinServedFraction: return "min_served_fraction";
    case VerdictKind::kMaxServedFraction: return "max_served_fraction";
    case VerdictKind::kMaxP95Ms: return "max_p95_ms";
    case VerdictKind::kMinStoredFraction: return "min_stored_fraction";
    case VerdictKind::kMaxStoredFraction: return "max_stored_fraction";
  }
  return "unknown";
}

Result<Scenario> validate(const RawDoc& doc) {
  Scenario scenario;
  bool saw_scenario = false;
  bool saw_server = false;
  bool saw_burst = false;
  bool saw_fault = false;
  bool saw_ingestion = false;
  const RawBlock* fault_block = nullptr;

  auto require_name = [](const RawBlock& block) -> Status {
    if (block.name.empty()) {
      return invalid(block.kind + " block requires a name" + at_line(block.line));
    }
    return Status::ok();
  };
  auto refuse_name = [](const RawBlock& block) -> Status {
    if (!block.name.empty()) {
      return invalid(block.kind + " block does not take a name" + at_line(block.line));
    }
    return Status::ok();
  };

  for (const RawBlock& block : doc.blocks) {
    Status status;
    if (block.kind == "scenario") {
      if (saw_scenario) return invalid("duplicate scenario block" + at_line(block.line));
      saw_scenario = true;
      if (!(status = require_name(block)).is_ok()) return status;
      if (!(status = decode_scenario(block, scenario)).is_ok()) return status;
    } else if (block.kind == "server") {
      if (saw_server) return invalid("duplicate server block" + at_line(block.line));
      saw_server = true;
      if (!(status = refuse_name(block)).is_ok()) return status;
      if (!(status = decode_server(block, scenario.server)).is_ok()) return status;
    } else if (block.kind == "burst_pool") {
      if (saw_burst) return invalid("duplicate burst_pool block" + at_line(block.line));
      saw_burst = true;
      if (!(status = refuse_name(block)).is_ok()) return status;
      if (!(status = decode_burst_pool(block, scenario.burst_pool)).is_ok()) return status;
    } else if (block.kind == "quota") {
      if (!(status = require_name(block)).is_ok()) return status;
      for (const QuotaSpec& existing : scenario.quotas) {
        if (existing.name == block.name) {
          return invalid("duplicate quota \"" + block.name + "\"" + at_line(block.line));
        }
      }
      QuotaSpec quota;
      if (!(status = decode_quota(block, quota)).is_ok()) return status;
      scenario.quotas.push_back(std::move(quota));
    } else if (block.kind == "network") {
      if (!(status = require_name(block)).is_ok()) return status;
      for (const NetworkSpec& existing : scenario.networks) {
        if (existing.name == block.name) {
          return invalid("duplicate network \"" + block.name + "\"" + at_line(block.line));
        }
      }
      for (const NetworkSpec& preset : network_presets()) {
        if (preset.name == block.name) {
          return invalid("network \"" + block.name +
                         "\" collides with a built-in preset" + at_line(block.line));
        }
      }
      NetworkSpec network;
      if (!(status = decode_network(block, network)).is_ok()) return status;
      scenario.networks.push_back(std::move(network));
    } else if (block.kind == "tenant") {
      if (!(status = require_name(block)).is_ok()) return status;
      for (const TenantSpec& existing : scenario.tenants) {
        if (existing.name == block.name) {
          return invalid("duplicate tenant \"" + block.name + "\"" + at_line(block.line));
        }
      }
      TenantSpec tenant;
      if (!(status = decode_tenant(block, tenant)).is_ok()) return status;
      scenario.tenants.push_back(std::move(tenant));
    } else if (block.kind == "phase") {
      if (!(status = require_name(block)).is_ok()) return status;
      for (const PhaseSpec& existing : scenario.phases) {
        if (existing.name == block.name) {
          return invalid("duplicate phase \"" + block.name + "\"" + at_line(block.line));
        }
      }
      // Horizon may come from a later scenario block in pathological
      // orderings; phases are re-checked against it after the loop.
      PhaseSpec phase;
      if (!(status = decode_phase(block, std::numeric_limits<SimTime>::max(), phase))
               .is_ok()) {
        return status;
      }
      scenario.phases.push_back(std::move(phase));
    } else if (block.kind == "fault") {
      if (saw_fault) return invalid("duplicate fault block" + at_line(block.line));
      saw_fault = true;
      if (!(status = refuse_name(block)).is_ok()) return status;
      fault_block = &block;  // decoded after tenants are known
    } else if (block.kind == "ingestion") {
      if (saw_ingestion) return invalid("duplicate ingestion block" + at_line(block.line));
      saw_ingestion = true;
      if (!(status = refuse_name(block)).is_ok()) return status;
      if (!(status = decode_ingestion(block, scenario.ingestion)).is_ok()) return status;
    } else if (block.kind == "verdict") {
      if (!(status = require_name(block)).is_ok()) return status;
      for (const VerdictSpec& existing : scenario.verdicts) {
        if (existing.name == block.name) {
          return invalid("duplicate verdict \"" + block.name + "\"" + at_line(block.line));
        }
      }
      VerdictSpec verdict;
      if (!(status = decode_verdict(block, verdict)).is_ok()) return status;
      scenario.verdicts.push_back(std::move(verdict));
    } else {
      return invalid("unknown block \"" + block.kind + "\"" + at_line(block.line));
    }
  }

  if (!saw_scenario) return invalid("missing scenario block");
  if (scenario.tenants.empty()) {
    return invalid("scenario must declare at least one tenant");
  }

  // ---- cross references -------------------------------------------------
  std::set<std::string> endpoints;
  endpoints.insert(scenario.server.host);
  for (const TenantSpec& tenant : scenario.tenants) endpoints.insert(tenant.name);

  int fill_index = -1;
  for (std::size_t i = 0; i < scenario.tenants.size(); ++i) {
    const TenantSpec& tenant = scenario.tenants[i];
    const std::string ctx = "tenant \"" + tenant.name + "\"";
    if (!tenant.quota.empty()) {
      bool found = false;
      for (const QuotaSpec& quota : scenario.quotas) {
        found = found || quota.name == tenant.quota;
      }
      if (!found) return invalid(ctx + ": unknown quota \"" + tenant.quota + "\"");
    }
    if (!tenant.network.empty() && scenario.network_for(tenant) == nullptr) {
      return invalid(ctx + ": unknown network \"" + tenant.network + "\"");
    }
    if (tenant.rate_fill) {
      if (fill_index >= 0) {
        return invalid(ctx + ": only one tenant may use rate fill (tenant \"" +
                       scenario.tenants[static_cast<std::size_t>(fill_index)].name +
                       "\" already does)");
      }
      fill_index = static_cast<int>(i);
    }
  }

  for (const PhaseSpec& phase : scenario.phases) {
    const std::string ctx = "phase \"" + phase.name + "\"";
    if (phase.until > scenario.horizon) {
      return invalid(ctx + ": until (" + format_duration(phase.until) +
                     ") must be <= horizon (" + format_duration(scenario.horizon) +
                     ")");
    }
    for (const std::string& tenant : phase.tenants) {
      if (scenario.tenant_index(tenant) < 0) {
        return invalid(ctx + ": unknown tenant \"" + tenant + "\"");
      }
    }
  }
  // Overlap: two phases that can both apply to some tenant must not share
  // sim time, otherwise the effective rate would be ambiguous.
  for (std::size_t i = 0; i < scenario.phases.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const PhaseSpec& a = scenario.phases[i];
      const PhaseSpec& b = scenario.phases[j];
      bool share_tenant = a.tenants.empty() || b.tenants.empty();
      for (const std::string& tenant : a.tenants) {
        for (const std::string& other : b.tenants) {
          share_tenant = share_tenant || tenant == other;
        }
      }
      if (!share_tenant) continue;
      if (a.from < b.until && b.from < a.until) {
        return invalid("phase \"" + a.name + "\" overlaps phase \"" + b.name +
                       "\" ([" + format_duration(a.from) + ", " +
                       format_duration(a.until) + ") vs [" + format_duration(b.from) +
                       ", " + format_duration(b.until) + "))");
      }
    }
  }

  if (fault_block != nullptr) {
    Status status = decode_fault(*fault_block, endpoints, scenario.faults);
    if (!status.is_ok()) return status;
  }

  for (const VerdictSpec& verdict : scenario.verdicts) {
    const std::string ctx = "verdict \"" + verdict.name + "\"";
    if (verdict.tenant != "*" && scenario.tenant_index(verdict.tenant) < 0) {
      return invalid(ctx + ": unknown tenant \"" + verdict.tenant + "\"");
    }
    bool stored_kind = verdict.kind == VerdictKind::kMinStoredFraction ||
                       verdict.kind == VerdictKind::kMaxStoredFraction;
    if (stored_kind && !scenario.ingestion.enabled) {
      return invalid(ctx + ": " + std::string(verdict_kind_name(verdict.kind)) +
                     " requires an ingestion block");
    }
    if (!stored_kind && verdict.mode != SchedulerMode::kBoth &&
        scenario.server.mode != SchedulerMode::kBoth &&
        verdict.mode != scenario.server.mode) {
      return invalid(ctx + ": mode " + std::string(scheduler_mode_name(verdict.mode)) +
                     " but server scheduler is " +
                     std::string(scheduler_mode_name(scenario.server.mode)));
    }
    for (double load : verdict.loads) {
      bool in_sweep = false;
      for (double cell : scenario.sweep) in_sweep = in_sweep || cell == load;
      if (!in_sweep) {
        return invalid(ctx + ": load " + fmt_number(load) + " is not in the sweep");
      }
    }
  }

  return scenario;
}

Result<Scenario> load_string(const std::string& text) {
  Result<RawDoc> doc = parse(text);
  if (!doc.is_ok()) return doc.status();
  return validate(*doc);
}

Result<Scenario> load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kNotFound, "cannot read scenario file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_string(buffer.str());
}

}  // namespace hc::scenario
