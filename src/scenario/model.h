// Scenario engine: the declarative workload model (hc::scenario).
//
// ROADMAP item 3: every bench used to hard-code its own arrival process,
// fault plan, and QoS quotas, so each new claim cost a new bench binary
// and none of them were cross-checked. A *scenario* is instead data: a
// plain-text file under scenarios/ describing tenants (with RBAC roles
// and QoS quotas), arrival processes (open-loop uniform/Poisson,
// closed-loop clients, diurnal/spike phases), payload mixes, fault plans,
// and network profiles, plus machine-checkable verdicts. The pipeline is
//
//   parse (parser.h)      text -> RawDoc, syntax diagnostics with line
//                         numbers, no interpretation;
//   validate (validator.h) RawDoc -> Scenario, every field range-checked,
//                         unknown keys rejected, cross-references
//                         (tenant -> quota, phase/verdict -> tenant,
//                         tenant -> network, fault -> endpoint) resolved
//                         or refused — a Scenario that validates is fully
//                         runnable, never partially applied;
//   compile (compiler.h)  Scenario -> deterministic event schedule on the
//                         shared SimClock with per-tenant seeded Rngs;
//   run (runner.h)        schedule -> the gateway/sched service model and
//                         (optionally) the real ingestion pipeline,
//                         emitting a triage-style artifact bundle
//                         (metrics.json + timeline + verdicts) that is
//                         byte-identical across reruns and worker counts.
//
// Everything here is plain data; the structs carry the *validated* form.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "fault/fault.h"
#include "net/network.h"
#include "rbac/rbac.h"
#include "sched/sched.h"

namespace hc::scenario {

// ---------------------------------------------------------------------------
// Enums
// ---------------------------------------------------------------------------

/// Which scheduler fronts the simulated server. kBoth runs fifo and sched
/// over identical arrivals so a scenario can assert the contrast.
enum class SchedulerMode { kFifo, kSched, kBoth };

std::string_view scheduler_mode_name(SchedulerMode mode);

enum class ArrivalKind {
  kUniform,     // open-loop, evenly spaced at the effective rate
  kPoisson,     // open-loop, exponential inter-arrivals
  kClosedLoop,  // N clients, next request after completion + think time
};

std::string_view arrival_kind_name(ArrivalKind kind);

/// What a verdict measures. Fractions are served/offered (or
/// stored/attempted for the ingestion kinds).
enum class VerdictKind {
  kMinServedFraction,
  kMaxServedFraction,
  kMaxP95Ms,
  kMinStoredFraction,
  kMaxStoredFraction,
};

std::string_view verdict_kind_name(VerdictKind kind);

// ---------------------------------------------------------------------------
// Specs (the validated model)
// ---------------------------------------------------------------------------

/// Named QoS quota referenced by tenants (tenant -> quota is a checked
/// cross-reference). rate/burst feed the tenant's token bucket; weight is
/// the tenant's deficit-round-robin share.
struct QuotaSpec {
  std::string name;
  double rate_per_sec = 100.0;
  double burst = 20.0;
  std::uint64_t weight = 1;
};

/// Named network profile; tenants reference one by name. Either a preset
/// (loopback/lan/wan/mobile/intercloud from net::LinkProfile) or declared
/// in the file as a `network` block.
struct NetworkSpec {
  std::string name;
  net::LinkProfile link;
};

/// One tenant: identity (RBAC role), QoS quota reference, arrival
/// process, and payload mix.
struct TenantSpec {
  std::string name;
  rbac::Role role = rbac::Role::kClinician;
  std::string quota;  // -> QuotaSpec.name (validated)

  ArrivalKind arrival = ArrivalKind::kUniform;
  double rate_per_sec = 0.0;  // open-loop kinds; ignored when rate_fill
  /// Open-loop only: this tenant's rate is the sweep remainder,
  /// max(0, floor(load * nominal_rate) - sum(fixed rates)). At most one
  /// tenant per scenario may fill.
  bool rate_fill = false;
  std::uint64_t clients = 0;  // closed-loop only
  SimTime think = 0;          // closed-loop think time between requests

  /// First-arrival offset. Negative = default (tenant_index * 17us, the
  /// tie-break phase bench_overload used).
  SimTime phase_offset = -1;

  /// Server work per request, uniform in [cost_lo, cost_hi] microseconds,
  /// drawn from this tenant's dedicated cost Rng.
  std::uint64_t cost_lo = 600;
  std::uint64_t cost_hi = 1400;
  /// Cost Rng seed. Negative = default (scenario.seed + tenant_index —
  /// with seed 700 this reproduces bench_overload's Rng(700 + tenant)).
  std::int64_t cost_seed = -1;

  /// Payload bytes per request, uniform in [payload_lo, payload_hi].
  std::uint64_t payload_lo = 1024;
  std::uint64_t payload_hi = 1024;

  /// Ingestion outcome mix: probability an upload's patient has consent
  /// on the ledger / carries the malware signature.
  double consent_probability = 1.0;
  double malware_probability = 0.0;

  std::string network;  // -> NetworkSpec.name; empty = no network model
};

/// Diurnal/spike phase: inside [from, until) the targeted tenants' open-
/// loop rate is scaled by rate_scale and (optionally) their consent
/// probability overridden — the consent-revocation-storm primitive.
/// Phases targeting the same tenant must not overlap.
struct PhaseSpec {
  std::string name;
  SimTime from = 0;
  SimTime until = 0;
  double rate_scale = 1.0;
  std::optional<double> consent_probability;
  /// Tenant names the phase applies to; empty = all tenants.
  std::vector<std::string> tenants;
};

/// The simulated server behind the gateway: capacity, scheduler mode, and
/// the sched-path knobs (mirrors bench_overload's fixed setup so the F9
/// scenario is byte-equivalent).
struct ServerSpec {
  std::string host = "server";  // endpoint name fault plans may crash
  double capacity_per_sec = 1'000'000.0;  // us-of-work per second
  SchedulerMode mode = SchedulerMode::kSched;
  /// Per-request deadline budget (arrival + deadline_budget); also the
  /// admission controller's p95 target.
  SimTime deadline_budget = 50 * kMillisecond;
  std::uint64_t wfq_quantum = 2000;
  std::uint64_t adapt_every = 200;  // AIMD step per N completions
  SimTime drain_grace = kMinute;    // serve past horizon for this long
};

/// Shared spare-capacity pool for over-quota bursts.
struct BurstPoolSpec {
  double rate_per_sec = 50.0;
  double capacity = 100.0;
};

/// Optional replay of admitted arrivals through the *real* ingestion
/// pipeline (synthetic FHIR bundles, consent grants on the ledger,
/// malware mix) — drained by process_all(workers), whose aggregates are
/// byte-identical across worker counts.
/// How ingestion provenance reaches the ledger during replay.
enum class ProvenanceMode {
  kPerRecord,  // historical: one consensus round trip per event
  kAnchored,   // hybrid-storage: Merkle-batched, root-only on-chain
};

struct IngestionSpec {
  bool enabled = false;
  std::uint64_t max_uploads = 200;  // replay cap, arrival order
  ProvenanceMode provenance = ProvenanceMode::kPerRecord;
  /// Anchored mode only: membership proofs served + verified after the
  /// drain (audit read traffic riding the surge).
  std::uint64_t audit_reads = 0;
  /// Cluster scale-out replay (ROADMAP item 1): > 0 stands up that many
  /// simulated shard-hosts behind a consistent-hash ring and routes every
  /// stored record through hc::cluster::ShardedLake. 0 = the historical
  /// single-lake path (byte-identical to pre-cluster bundles).
  std::uint64_t shard_hosts = 0;        // 0..64
  std::uint64_t shard_vnodes = 128;     // ring points per host
  std::uint64_t shard_replication = 2;  // sealed copies per object
  /// Crash this host after the drain, then rebalance — the scale-out
  /// recovery drill (scenarios/scaleout_rebalance.scn). Empty = no crash.
  std::string crash_shard_host;
  /// Crash-and-resume drill (hc::ckpt, ROADMAP item 5). checkpoint_after
  /// > 0 seals a LAKE checkpoint (crash-consistent atomic publish) once
  /// that many uploads have drained. crash_and_resume > 0 then kills the
  /// ingestion world after that many uploads — lake, metadata, staging,
  /// queue and tracker die; the ledger, the KMS and the checkpoint file
  /// survive — restores a fresh lake from the checkpoint and finishes the
  /// drain there (scenarios/crash_resume.scn). Single-lake, per-record
  /// provenance only.
  std::uint64_t checkpoint_after = 0;
  std::uint64_t crash_and_resume = 0;
};

/// Machine-checkable pass/fail rule evaluated over the run.
struct VerdictSpec {
  std::string name;
  VerdictKind kind = VerdictKind::kMinServedFraction;
  double bound = 0.0;
  /// Tenant name or "*" for every tenant (all must satisfy the bound).
  std::string tenant = "*";
  /// Scheduler modes the verdict applies to; kBoth = both.
  SchedulerMode mode = SchedulerMode::kBoth;
  /// Load multipliers the verdict applies to; empty = every sweep cell.
  std::vector<double> loads;
};

/// A fully validated scenario. Construct only through the validator.
struct Scenario {
  std::string name;
  std::uint64_t seed = 1;
  SimTime horizon = kSecond;
  /// Load multipliers swept; each cell reruns the arrival schedule at
  /// floor(load * nominal_rate) total open-loop rate.
  std::vector<double> sweep = {1.0};
  double nominal_rate = 1000.0;  // req/s at load 1.0
  /// Per-second timeline buckets when > 0; 0 = end-of-cell summaries only.
  SimTime timeline_resolution = kSecond;

  ServerSpec server;
  BurstPoolSpec burst_pool;
  std::vector<QuotaSpec> quotas;
  std::vector<NetworkSpec> networks;  // user-declared profiles
  std::vector<TenantSpec> tenants;    // declaration order is significant
  std::vector<PhaseSpec> phases;
  fault::FaultPlan faults;
  IngestionSpec ingestion;
  std::vector<VerdictSpec> verdicts;

  /// Index into tenants, or -1. Validated references always resolve.
  int tenant_index(const std::string& name) const;
  const QuotaSpec& quota_for(const TenantSpec& tenant) const;
  /// Resolves a network name against declared profiles then presets.
  const NetworkSpec* network_for(const TenantSpec& tenant) const;
};

/// Built-in network presets by name (loopback, lan, wan, mobile,
/// intercloud), backed by net::LinkProfile's canonical numbers.
const std::vector<NetworkSpec>& network_presets();

}  // namespace hc::scenario
