// Scenario text -> RawDoc: the uninterpreted block/key/value form.
//
// The format is deliberately small and line-oriented so diagnostics stay
// exact (every entry carries its line number) and the fuzzer can reach
// every code path:
//
//   # comment to end of line
//   tenant "normal-1" {        <- block header: kind, optional quoted name
//     rate 150                 <- entry: key + one or more values
//     cost 600 1400
//   }                          <- closing brace on its own line
//
// Tokens are whitespace-separated; quoted strings ("...") may contain
// spaces and '#' but not newlines. The parser knows nothing about which
// kinds/keys exist — that is the validator's job — so syntax errors and
// semantic errors never mask each other.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace hc::scenario {

/// One `key value...` line inside a block.
struct RawEntry {
  std::string key;
  std::vector<std::string> values;
  int line = 0;
};

/// One `kind "name" { ... }` block.
struct RawBlock {
  std::string kind;
  std::string name;  // empty when the header had no quoted name
  std::vector<RawEntry> entries;
  int line = 0;
};

struct RawDoc {
  std::vector<RawBlock> blocks;
};

/// Parses scenario text. Errors are kInvalidArgument with messages of the
/// form `parse error: line N: <problem>`; the parser never throws and
/// never returns a partially consumed document.
Result<RawDoc> parse(const std::string& text);

}  // namespace hc::scenario
