// Scenario execution + the triage-style artifact bundle.
//
// run() executes every (sweep cell x scheduler mode) of a validated
// Scenario through the same service model bench_overload locked down —
// per-tenant token buckets over a shared BurstPool, deadline-aware AIMD
// admission, deficit-round-robin dispatch, shed-at-dispatch for expired
// deadlines — plus what benches never had: closed-loop client populations,
// server crash windows from the fault plan, network loss/transfer on every
// request, and an optional replay of the first cell's arrivals through the
// *real* ingestion pipeline (KMS, staging, consent ledger, malware scan,
// de-identification, data lake).
//
// The RunReport is the artifact bundle: a curated metrics registry, a
// per-second timeline, and machine-checked verdict lines. Every value in
// it is a pure function of (scenario file bytes, seed) — byte-identical
// across reruns and across ingestion worker counts (the shared-clock
// makespan, which IS worker-dependent, is deliberately excluded).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "scenario/compiler.h"
#include "scenario/model.h"

namespace hc::scenario {

/// Per-tenant outcome counters for one (cell, mode), bench_overload's
/// TenantTally plus `lost` (dropped on the wire or integrity-rejected).
struct TenantTally {
  std::uint64_t offered = 0;
  std::uint64_t served = 0;  // completed before the deadline
  std::uint64_t late = 0;    // completed after the deadline
  std::uint64_t shed = 0;    // rate-limited, admission-shed, or dispatch-shed
  std::uint64_t lost = 0;    // never reached the scheduler
  std::vector<double> latency_us;  // served completions only

  /// bench_overload's percentile convention: sorted[min(p*n, n-1)].
  double percentile(double p) const;
};

/// One scheduler mode's run over one sweep cell's arrivals.
struct CellModeResult {
  double load = 1.0;
  SchedulerMode mode = SchedulerMode::kSched;  // kFifo or kSched, never kBoth
  std::vector<TenantTally> tenants;            // index == Scenario.tenants
  double final_headroom = 1.0;                 // sched mode only
};

/// Ingestion replay outcome for one tenant. Rejections are attributed the
/// way the pipeline orders its checks (malware before consent).
struct IngestTally {
  std::uint64_t attempted = 0;
  std::uint64_t stored = 0;
  std::uint64_t rejected_malware = 0;
  std::uint64_t rejected_consent = 0;
};

/// Hybrid-provenance replay outcome (ingestion provenance anchored).
/// Every count is a pure function of (scenario bytes, seed): proofs are
/// served in canonical batch/leaf order and each one is verified against
/// the on-chain root before it counts.
struct ProvenanceTally {
  std::uint64_t events = 0;         // provenance events anchored
  std::uint64_t batches = 0;        // Merkle batches anchored
  std::uint64_t audit_reads = 0;    // proofs served + verified
  std::uint64_t bytes_onchain = 0;  // manifests through consensus
  std::uint64_t bytes_offchain = 0; // payload bytes kept in the lake
};

/// Cluster scale-out replay outcome (ingestion shard_hosts > 0). Every
/// count is a pure function of the scenario bytes: placement hashes the
/// content, transfer charges are byte-pure, and the recovery drill's
/// rebalance iterates in sorted reference order — so the bundle stays
/// byte-identical across reruns and ingestion worker counts.
struct ClusterTally {
  std::uint64_t hosts = 0;            // shard-hosts stood up
  std::uint64_t objects = 0;          // objects in the sharded lake
  std::uint64_t copies = 0;           // sealed copies incl. replicas
  std::uint64_t transfers = 0;        // cluster-link transfers charged
  std::uint64_t bytes_moved = 0;      // bytes across those transfers
  std::uint64_t rebalance_moved = 0;  // copies moved by the recovery drill
  std::uint64_t rebalance_recovered = 0;  // primaries re-homed after crash
  std::uint64_t lost_objects = 0;     // stays 0 or the run fails
};

/// Crash-and-resume replay outcome (ingestion checkpoint_after > 0). The
/// drill seals a LAKE checkpoint mid-drain, kills the live ingestion world
/// after crash_and_resume uploads, restores a fresh lake from the
/// checkpoint file and finishes the drain there. Counts are lake objects
/// (each stored record contributes its de-identified and original copy),
/// pure functions of the scenario bytes — worker-count invariant.
struct CkptTally {
  std::uint64_t saved_objects = 0;     // sealed into the checkpoint
  std::uint64_t lost_objects = 0;      // stored after the seal, died in the crash
  std::uint64_t restored_objects = 0;  // installed from the checkpoint
  std::uint64_t final_objects = 0;     // in the restored lake after the drain
  std::uint64_t checkpoint_bytes = 0;  // encoded checkpoint file size
};

struct VerdictOutcome {
  std::string name;
  bool pass = true;
  /// One line per evaluated (cell, mode, tenant) check.
  std::vector<std::string> lines;
};

struct RunOptions {
  /// Worker count for the ingestion replay drain; the bundle must not
  /// depend on it (the replay-determinism suite sweeps 1/2/4/8).
  std::size_t ingest_workers = 1;
};

/// The artifact bundle.
struct RunReport {
  std::string scenario_name;
  std::uint64_t seed = 0;
  SimTime horizon = 0;
  std::vector<CellModeResult> cells;  // sweep-major, fifo before sched
  std::vector<IngestTally> ingest;    // per tenant; empty unless enabled
  ProvenanceTally provenance;         // zeros unless `provenance anchored`
  ClusterTally cluster;               // zeros unless `shard_hosts > 0`
  CkptTally ckpt;                     // zeros unless `checkpoint_after > 0`
  std::vector<VerdictOutcome> verdicts;
  obs::MetricsPtr metrics;  // curated `hc.scenario.*` registry
  std::vector<std::string> timeline;

  bool all_pass() const;
};

/// Executes a validated scenario. Fails only on the compiler's arrival
/// cap or an ingestion-replay wiring error (kInternal) — a validated
/// scenario otherwise always runs.
Result<RunReport> run(const Scenario& scenario, const RunOptions& options = {});

/// The three bundle artifacts as strings (trailing newline included).
std::string metrics_text(const RunReport& report);
std::string timeline_text(const RunReport& report);
std::string verdicts_text(const RunReport& report);

/// All three concatenated with `== <name> ==` separators — what the
/// determinism tests compare byte for byte.
std::string bundle_text(const RunReport& report);

/// Writes metrics.json / timeline.txt / verdicts.txt under `dir`
/// (created if missing).
Status write_bundle(const RunReport& report, const std::string& dir);

}  // namespace hc::scenario
