// Multi-tenant QoS & scheduling layer (hc::sched).
//
// The platform multiplexes many hospital tenants through one API gateway
// and one asynchronous ingestion pipeline (Sections II.B, Figs 2-3), but
// admission, ordering, and batching were implicit: every request was
// admitted, queues drained FIFO, and a single noisy tenant could starve
// the rest. This module makes goodput-under-overload an architectural
// property, in four pieces:
//
//   * TokenBucket / BurstPool — per-tenant rate quotas with a shared
//     spare-capacity pool. A tenant inside its quota is granted directly;
//     one over quota may borrow from the shared pool ("deferred" grant);
//     otherwise the request is shed with a *retryable* status so
//     fault::RetryPolicy backoff cooperates.
//   * WeightedFairQueue — deficit round-robin over per-tenant sub-queues.
//     Replaces FIFO draining wherever tenants share a queue (ingestion
//     message queue, gateway request queue). Drain order is a pure
//     function of queue content, weights, and quantum — byte-reproducible
//     regardless of who pops.
//   * AdmissionController — deadline-aware early shedding: a request that
//     cannot meet its deadline at the current backlog is rejected *before*
//     it costs anything downstream. The admission headroom adapts via an
//     AIMD controller on observed p95 latency from hc::obs.
//   * AdaptiveBatcher — batch size as a scheduler decision: dispatch up to
//     B queued items per worker claim, with B a deterministic function of
//     queue depth (deeper queue -> bigger batches, up to a cap) and a
//     max-linger bound for latency-sensitive coalescing.
//
// Everything is clocked on the shared SimClock and, where stochastic, on
// an explicitly seeded Rng — a schedule is a pure function of (workload,
// config, seed), so tests pin drain orders exactly and benches reproduce
// byte-identical artifacts.
//
// Metric family (all under hc.sched.*): `admitted`, `deferred`, `shed`,
// `shed.<reason>` counters; `queue_depth.<component>.<tenant>` gauges;
// `batch_size` histogram; `wait_us` queue-wait histogram; `headroom`
// gauge for the AIMD controller.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace hc::sched {

// ---------------------------------------------------------------------------
// Token buckets
// ---------------------------------------------------------------------------

struct TokenBucketConfig {
  double rate_per_sec = 100.0;  // steady-state refill rate (tokens/second)
  double capacity = 20.0;       // bucket depth (burst allowance)
};

/// Shared spare-capacity pool: tenants that exhaust their own bucket may
/// draw from it, so short bursts ride on idle platform capacity without
/// raising every tenant's steady-state quota.
class BurstPool {
 public:
  BurstPool(TokenBucketConfig config, ClockPtr clock);

  /// Takes `tokens` if available after refill; false otherwise.
  bool try_draw(double tokens);

  /// Tokens currently available (refills first).
  double available();

 private:
  void refill();

  TokenBucketConfig config_;
  ClockPtr clock_;
  double tokens_;
  SimTime last_refill_;
};

enum class Grant {
  kDenied,           // over quota and the shared pool is dry
  kGranted,          // inside the tenant's own quota
  kGrantedFromBurst  // over quota, borrowed from the shared pool
};

std::string_view grant_name(Grant grant);

/// Per-tenant token bucket on the sim clock. Refills lazily from elapsed
/// sim time, so conformance is exact: over any interval [t0, t1] a bucket
/// grants at most capacity + rate * (t1 - t0) tokens.
class TokenBucket {
 public:
  /// `burst` (optional, unowned) is the shared fallback pool.
  TokenBucket(TokenBucketConfig config, ClockPtr clock, BurstPool* burst = nullptr);

  Grant acquire(double tokens = 1.0);
  bool try_acquire(double tokens = 1.0) { return acquire(tokens) != Grant::kDenied; }

  /// Tokens currently available in this bucket (refills first).
  double available();

  const TokenBucketConfig& config() const { return config_; }

 private:
  void refill();

  TokenBucketConfig config_;
  ClockPtr clock_;
  BurstPool* burst_;  // may be null
  double tokens_;
  SimTime last_refill_;
};

// ---------------------------------------------------------------------------
// Weighted fair queue (deficit round-robin)
// ---------------------------------------------------------------------------

/// Deficit round-robin scheduler over per-tenant sub-queues.
///
/// Algorithm (the spec the hand-computed tests pin): active tenants sit in
/// a rotation in first-activation order. The tenant at the front is
/// charged quantum * weight once per visit; while its deficit covers the
/// head item's cost, items pop and the deficit shrinks. When the deficit
/// cannot cover the head, the remainder is *banked* and the tenant rotates
/// to the back; when a sub-queue empties, its deficit resets to zero and
/// it leaves the rotation. Costs larger than quantum * weight therefore
/// accumulate deficit across rounds rather than starving or overserving.
///
/// Not internally synchronized — wrap it under the owning queue's mutex
/// (storage::MessageQueue does). Drain order depends only on (content,
/// weights, quantum), never on time or caller identity.
template <typename Item>
class WeightedFairQueue {
 public:
  explicit WeightedFairQueue(std::uint64_t quantum = 64)
      : quantum_(quantum == 0 ? 1 : quantum) {}

  /// Weight >= 1; a tenant's long-run share is weight / sum(weights).
  /// Unseen tenants default to weight 1 on first push.
  void set_weight(const std::string& tenant, std::uint64_t weight) {
    queues_[tenant].weight = weight == 0 ? 1 : weight;
  }

  void push(const std::string& tenant, Item item, std::uint64_t cost) {
    if (cost == 0) cost = 1;
    SubQueue& q = queues_[tenant];
    q.items.push_back(Entry{std::move(item), cost});
    backlog_cost_ += cost;
    ++depth_;
    if (!q.active) {
      q.active = true;
      q.charged = false;
      rotation_.push_back(tenant);
    }
  }

  std::optional<Item> pop() {
    while (!rotation_.empty()) {
      SubQueue& q = queues_.find(rotation_.front())->second;
      if (!q.charged) {
        q.deficit += quantum_ * q.weight;
        q.charged = true;
      }
      if (q.items.front().cost <= q.deficit) {
        Entry entry = std::move(q.items.front());
        q.items.pop_front();
        q.deficit -= entry.cost;
        backlog_cost_ -= entry.cost;
        --depth_;
        if (q.items.empty()) {
          q.active = false;
          q.charged = false;
          q.deficit = 0;
          rotation_.pop_front();
        }
        return std::move(entry.item);
      }
      // Deficit can't cover the head: bank it and rotate to the next tenant.
      q.charged = false;
      std::string tenant = std::move(rotation_.front());
      rotation_.pop_front();
      rotation_.push_back(std::move(tenant));
    }
    return std::nullopt;
  }

  std::vector<Item> pop_batch(std::size_t max_items) {
    std::vector<Item> batch;
    batch.reserve(std::min(max_items, depth_));
    while (batch.size() < max_items) {
      auto item = pop();
      if (!item) break;
      batch.push_back(std::move(*item));
    }
    return batch;
  }

  bool empty() const { return depth_ == 0; }
  std::size_t depth() const { return depth_; }
  std::size_t tenant_depth(const std::string& tenant) const {
    auto it = queues_.find(tenant);
    return it == queues_.end() ? 0 : it->second.items.size();
  }
  /// Sum of queued item costs — the admission controller's backlog signal.
  std::uint64_t backlog_cost() const { return backlog_cost_; }
  std::uint64_t quantum() const { return quantum_; }

 private:
  struct Entry {
    Item item;
    std::uint64_t cost;
  };
  struct SubQueue {
    std::deque<Entry> items;
    std::uint64_t weight = 1;
    std::uint64_t deficit = 0;
    bool active = false;   // present in the rotation
    bool charged = false;  // quantum granted for the current visit
  };

  std::uint64_t quantum_;
  std::map<std::string, SubQueue> queues_;
  std::deque<std::string> rotation_;  // active tenants, service order
  std::size_t depth_ = 0;
  std::uint64_t backlog_cost_ = 0;
};

// ---------------------------------------------------------------------------
// Deadline-aware admission control
// ---------------------------------------------------------------------------

struct AdmissionConfig {
  /// Cost units the downstream stage serves per second of sim time (the
  /// unit is whatever callers put in request costs — e.g. microseconds of
  /// work, or KB to ingest). Must be > 0.
  double capacity_per_sec = 1'000'000.0;
  /// Shed outright when the predicted queue wait exceeds this, deadline or
  /// not (0 disables the cap).
  SimTime max_predicted_wait = 0;
  /// AIMD feedback: the latency histogram consulted by adapt() and the p95
  /// target. Empty metric or target <= 0 keeps the headroom static.
  std::string latency_metric;
  double target_p95_us = 0.0;
  double headroom = 1.0;      // initial fraction of capacity admitted against
  double min_headroom = 0.1;
  double max_headroom = 1.0;
  double decrease = 0.5;      // multiplicative, on p95 over target
  double increase = 0.05;     // additive, on p95 at/under target
};

/// Predicts each request's completion time from the current backlog and
/// admits only requests that can meet their deadline — overload turns into
/// early, retryable rejections instead of queue growth. The effective
/// capacity is capacity_per_sec * headroom, and the headroom walks an AIMD
/// schedule against observed p95 latency (gradient sign only, the classic
/// additive-increase / multiplicative-decrease step).
class AdmissionController {
 public:
  AdmissionController(AdmissionConfig config, ClockPtr clock,
                      obs::MetricsPtr metrics = nullptr);

  /// kOk and counts `hc.sched.admitted` when the request fits; otherwise a
  /// retryable kUnavailable and `hc.sched.shed` + `hc.sched.shed.<reason>`
  /// (`deadline` when the predicted finish misses the request's deadline,
  /// `overload` when the predicted wait exceeds max_predicted_wait).
  /// `deadline` is absolute sim time (0 = none); `backlog_cost` is the
  /// queued cost ahead of this request.
  Status admit(const std::string& tenant, double cost, SimTime deadline,
               double backlog_cost);

  /// Predicted sim-time wait for a request behind `backlog_cost` units.
  SimTime predicted_wait(double backlog_cost) const;

  /// One AIMD step against the configured latency histogram's p95. No-op
  /// until the histogram has new samples since the last step, so repeated
  /// calls in a quiet period don't creep the headroom. Publishes the
  /// result in the `hc.sched.headroom` gauge.
  void adapt();

  double headroom() const { return headroom_; }
  const AdmissionConfig& config() const { return config_; }

 private:
  Status shed(const char* reason, const std::string& tenant, SimTime deadline);

  AdmissionConfig config_;
  ClockPtr clock_;
  obs::MetricsPtr metrics_;  // may be null
  double headroom_;
  std::uint64_t adapted_sample_count_ = 0;
};

// ---------------------------------------------------------------------------
// Adaptive batching
// ---------------------------------------------------------------------------

struct BatcherConfig {
  std::size_t min_batch = 1;
  std::size_t max_batch = 32;
  /// Sizing aims to split the backlog into about this many dispatches, so
  /// batches grow with queue depth (amortizing per-dispatch overhead, e.g.
  /// the batched-HMAC pass) and shrink as the queue drains (bounding how
  /// long any one claim monopolizes a worker).
  std::size_t target_dispatches = 4;
  /// Latency bound for linger-based coalescers: flush a partial batch once
  /// the oldest member has waited this long.
  SimTime max_linger = 2 * kMillisecond;
};

/// Pure, deterministic batch sizing — no internal state, so every worker
/// count and every rerun computes the same plan for the same queue depth.
class AdaptiveBatcher {
 public:
  explicit AdaptiveBatcher(BatcherConfig config, obs::MetricsPtr metrics = nullptr);

  /// Size of the next dispatch given the current depth:
  /// clamp(ceil(depth / target_dispatches), min_batch, max_batch).
  std::size_t batch_size(std::size_t queue_depth) const;

  /// Partition of `depth` items into consecutive dispatch sizes, applying
  /// batch_size() to the remaining depth each step — batches decay as the
  /// backlog shrinks. Sums exactly to `depth`.
  std::vector<std::size_t> plan(std::size_t depth) const;

  /// Records a dispatched batch size in the `hc.sched.batch_size`
  /// histogram (power-of-two buckets).
  void record(std::size_t batch) const;

  const BatcherConfig& config() const { return config_; }
  SimTime max_linger() const { return config_.max_linger; }

 private:
  BatcherConfig config_;
  obs::MetricsPtr metrics_;  // may be null
};

/// Bucket bounds for the hc.sched.batch_size histogram (1..512, powers of
/// two) — exposed so tests and exporter goldens share them.
const std::vector<double>& batch_size_bounds();

}  // namespace hc::sched
