#include "sched/sched.h"

#include <algorithm>
#include <cmath>

namespace hc::sched {

namespace {

/// Lazy refill shared by TokenBucket and BurstPool: tokens accrued over
/// elapsed sim time, capped at the bucket depth.
double refilled(double tokens, double rate_per_sec, double capacity,
                SimTime last, SimTime now) {
  if (now <= last) return tokens;
  double accrued = rate_per_sec * static_cast<double>(now - last) /
                   static_cast<double>(kSecond);
  return std::min(capacity, tokens + accrued);
}

}  // namespace

std::string_view grant_name(Grant grant) {
  switch (grant) {
    case Grant::kDenied: return "denied";
    case Grant::kGranted: return "granted";
    case Grant::kGrantedFromBurst: return "granted-from-burst";
  }
  return "unknown";
}

// --- BurstPool -------------------------------------------------------------

BurstPool::BurstPool(TokenBucketConfig config, ClockPtr clock)
    : config_(config),
      clock_(std::move(clock)),
      tokens_(config.capacity),
      last_refill_(clock_->now()) {}

void BurstPool::refill() {
  SimTime now = clock_->now();
  tokens_ = refilled(tokens_, config_.rate_per_sec, config_.capacity,
                     last_refill_, now);
  last_refill_ = now;
}

bool BurstPool::try_draw(double tokens) {
  refill();
  if (tokens > tokens_) return false;
  tokens_ -= tokens;
  return true;
}

double BurstPool::available() {
  refill();
  return tokens_;
}

// --- TokenBucket -----------------------------------------------------------

TokenBucket::TokenBucket(TokenBucketConfig config, ClockPtr clock, BurstPool* burst)
    : config_(config),
      clock_(std::move(clock)),
      burst_(burst),
      tokens_(config.capacity),
      last_refill_(clock_->now()) {}

void TokenBucket::refill() {
  SimTime now = clock_->now();
  tokens_ = refilled(tokens_, config_.rate_per_sec, config_.capacity,
                     last_refill_, now);
  last_refill_ = now;
}

Grant TokenBucket::acquire(double tokens) {
  refill();
  if (tokens <= tokens_) {
    tokens_ -= tokens;
    return Grant::kGranted;
  }
  if (burst_ && burst_->try_draw(tokens)) return Grant::kGrantedFromBurst;
  return Grant::kDenied;
}

double TokenBucket::available() {
  refill();
  return tokens_;
}

// --- AdmissionController ---------------------------------------------------

AdmissionController::AdmissionController(AdmissionConfig config, ClockPtr clock,
                                         obs::MetricsPtr metrics)
    : config_(config),
      clock_(std::move(clock)),
      metrics_(std::move(metrics)),
      headroom_(std::clamp(config.headroom, config.min_headroom,
                           config.max_headroom)) {}

SimTime AdmissionController::predicted_wait(double backlog_cost) const {
  double effective = config_.capacity_per_sec * headroom_;
  if (effective <= 0 || backlog_cost <= 0) return 0;
  return static_cast<SimTime>(
      std::ceil(backlog_cost / effective * static_cast<double>(kSecond)));
}

Status AdmissionController::shed(const char* reason, const std::string& tenant,
                                 SimTime deadline) {
  if (metrics_) {
    metrics_->add("hc.sched.shed");
    metrics_->add(std::string("hc.sched.shed.") + reason);
  }
  std::string what = deadline > 0
                         ? "cannot meet deadline at current load"
                         : "predicted wait exceeds the shedding threshold";
  return Status(StatusCode::kUnavailable,
                "request from " + tenant + " shed (" + reason + "): " + what +
                    " — retry with backoff");
}

Status AdmissionController::admit(const std::string& tenant, double cost,
                                  SimTime deadline, double backlog_cost) {
  SimTime wait = predicted_wait(backlog_cost);
  if (config_.max_predicted_wait > 0 && wait > config_.max_predicted_wait) {
    return shed("overload", tenant, /*deadline=*/0);
  }
  if (deadline > 0) {
    // Own service time rides on top of the queue wait.
    SimTime finish = clock_->now() + wait + predicted_wait(cost);
    if (finish > deadline) return shed("deadline", tenant, deadline);
  }
  if (metrics_) metrics_->add("hc.sched.admitted");
  return Status::ok();
}

void AdmissionController::adapt() {
  if (!metrics_ || config_.latency_metric.empty() || config_.target_p95_us <= 0) {
    return;
  }
  const obs::Histogram* latency = metrics_->histogram(config_.latency_metric);
  if (!latency || latency->count == adapted_sample_count_) return;
  adapted_sample_count_ = latency->count;
  if (latency->p95() > config_.target_p95_us) {
    headroom_ = std::max(config_.min_headroom, headroom_ * config_.decrease);
  } else {
    headroom_ = std::min(config_.max_headroom, headroom_ + config_.increase);
  }
  metrics_->set_gauge("hc.sched.headroom", headroom_);
}

// --- AdaptiveBatcher -------------------------------------------------------

const std::vector<double>& batch_size_bounds() {
  static const std::vector<double> bounds{1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  return bounds;
}

AdaptiveBatcher::AdaptiveBatcher(BatcherConfig config, obs::MetricsPtr metrics)
    : config_(config), metrics_(std::move(metrics)) {
  if (config_.min_batch == 0) config_.min_batch = 1;
  if (config_.max_batch < config_.min_batch) config_.max_batch = config_.min_batch;
  if (config_.target_dispatches == 0) config_.target_dispatches = 1;
}

std::size_t AdaptiveBatcher::batch_size(std::size_t queue_depth) const {
  if (queue_depth == 0) return config_.min_batch;
  std::size_t ideal =
      (queue_depth + config_.target_dispatches - 1) / config_.target_dispatches;
  return std::clamp(ideal, config_.min_batch, config_.max_batch);
}

std::vector<std::size_t> AdaptiveBatcher::plan(std::size_t depth) const {
  std::vector<std::size_t> sizes;
  while (depth > 0) {
    std::size_t take = std::min(batch_size(depth), depth);
    sizes.push_back(take);
    depth -= take;
  }
  return sizes;
}

void AdaptiveBatcher::record(std::size_t batch) const {
  if (!metrics_) return;
  metrics_->observe("hc.sched.batch_size", static_cast<double>(batch), "1",
                    &batch_size_bounds());
}

}  // namespace hc::sched
