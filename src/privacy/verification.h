// Anonymization Verification Service (Sections IV.B.1 and IV.C).
//
// "the ingestion service may use another service, 'anonymization
// verification service', in order to verify how good the anonymization on
// the incoming record is. If [it] determines that a claimed anonymized
// record is not properly anonymized, then such a record is dropped, and a
// response is sent back to the sender."
//
// Degree scoring follows the paper's two-part definition:
//   record_score  — independent of other data: fraction of direct
//                   identifiers removed and quasi-identifiers generalized.
//   holistic_k    — with respect to a reference population: size of the
//                   record's equivalence class among previously seen
//                   records (k-anonymity style crowd size).
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "privacy/schema.h"

namespace hc::privacy {

struct PrivacyDegree {
  double record_score = 0.0;   // [0,1]; 1 = no identifying material remains
  std::size_t holistic_k = 0;  // crowd size among the reference population
  bool acceptable = false;     // meets the configured thresholds
  std::string reason;          // populated when unacceptable
};

class AnonymizationVerificationService {
 public:
  /// `min_record_score` and `min_k` are the acceptance thresholds; records
  /// scoring below either are to be dropped by the caller.
  AnonymizationVerificationService(const FieldSchema& schema,
                                   double min_record_score = 0.99,
                                   std::size_t min_k = 2);

  /// Scores a record claimed to be anonymized. Also admits it into the
  /// reference population (so holistic scoring sharpens over time).
  /// Thread-safe: the population update and crowd-size read are one
  /// critical section, so parallel ingestion workers see a consistent
  /// reference population.
  PrivacyDegree verify(const FieldMap& record,
                       const std::vector<std::string>& qi_fields);

  std::size_t population_size() const;

 private:
  /// 1.0 minus penalties for surviving direct identifiers and raw
  /// (ungeneralized) quasi-identifier values.
  double score_record(const FieldMap& record) const;

  FieldSchema schema_;
  double min_record_score_;
  std::size_t min_k_;
  mutable std::mutex mu_;  // guards population_ + population_total_
  std::map<std::string, std::size_t> population_;  // QI signature -> count
  std::size_t population_total_ = 0;
};

}  // namespace hc::privacy
