// Field classification for privacy processing.
//
// Privacy operations are format-agnostic: they work on flat FieldMap
// records (the FHIR module converts resources to/from this shape). A
// FieldSchema labels each field so de-identification and k-anonymity know
// what to strip, generalize, or preserve.
#pragma once

#include <map>
#include <string>

namespace hc::privacy {

enum class FieldClass {
  kDirectIdentifier,  // name, ssn, phone, email, address -> removed
  kQuasiIdentifier,   // age, zip, gender -> generalized
  kSensitive,         // diagnosis, lab values -> kept, l-diversity target
  kClinical,          // other clinical payload -> kept verbatim
};

using FieldMap = std::map<std::string, std::string>;

struct FieldSchema {
  std::map<std::string, FieldClass> classes;

  FieldClass classify(const std::string& field) const {
    auto it = classes.find(field);
    return it == classes.end() ? FieldClass::kClinical : it->second;
  }

  /// The classification used by the synthetic patient generator and the
  /// ingestion pipeline: standard demographic + clinical fields.
  static FieldSchema standard_patient();
};

}  // namespace hc::privacy
