#include "privacy/verification.h"

#include <cctype>

#include "privacy/deid.h"

namespace hc::privacy {

namespace {

std::string signature(const FieldMap& record, const std::vector<std::string>& qi_fields) {
  std::string sig;
  for (const auto& field : qi_fields) {
    auto it = record.find(field);
    sig += (it == record.end() ? std::string("<absent>") : it->second);
    sig += '\x1f';
  }
  return sig;
}

/// A quasi-identifier value counts as generalized if re-generalizing it is
/// a no-op (e.g. "30-34" stays "30-34" but a raw "33" would change).
bool looks_generalized(const std::string& field, const std::string& value) {
  return generalize_quasi_identifier(field, value) == value;
}

}  // namespace

AnonymizationVerificationService::AnonymizationVerificationService(
    const FieldSchema& schema, double min_record_score, std::size_t min_k)
    : schema_(schema), min_record_score_(min_record_score), min_k_(min_k) {}

double AnonymizationVerificationService::score_record(const FieldMap& record) const {
  double penalty = 0.0;
  for (const auto& [field, value] : record) {
    if (value.empty()) continue;
    switch (schema_.classify(field)) {
      case FieldClass::kDirectIdentifier:
        penalty += 0.5;  // a surviving direct identifier is disqualifying
        break;
      case FieldClass::kQuasiIdentifier:
        if (!looks_generalized(field, value)) penalty += 0.2;
        break;
      case FieldClass::kSensitive:
      case FieldClass::kClinical:
        break;
    }
  }
  return penalty >= 1.0 ? 0.0 : 1.0 - penalty;
}

PrivacyDegree AnonymizationVerificationService::verify(
    const FieldMap& record, const std::vector<std::string>& qi_fields) {
  PrivacyDegree degree;
  degree.record_score = score_record(record);

  std::string sig = signature(record, qi_fields);
  std::size_t crowd = 0;
  std::size_t total = 0;
  {
    std::lock_guard lock(mu_);
    crowd = ++population_[sig];
    total = ++population_total_;
  }
  degree.holistic_k = crowd;

  if (degree.record_score < min_record_score_) {
    degree.acceptable = false;
    degree.reason = "record retains identifying material (score " +
                    std::to_string(degree.record_score) + ")";
    return degree;
  }
  if (total >= min_k_ && crowd < min_k_) {
    degree.acceptable = false;
    degree.reason = "equivalence class too small (k=" + std::to_string(crowd) + ")";
    return degree;
  }
  degree.acceptable = true;
  return degree;
}

std::size_t AnonymizationVerificationService::population_size() const {
  std::lock_guard lock(mu_);
  return population_.size();
}

}  // namespace hc::privacy
