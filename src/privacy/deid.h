// De-identification and pseudonymization (Sections II.B and IV.C).
//
// The ingestion pipeline de-identifies every stored record: direct
// identifiers are removed, quasi-identifiers generalized following the
// HIPAA Safe Harbor rules the platform is compliant with (ages over 89
// pooled, dates truncated to year, ZIP codes truncated to 3 digits), and
// the patient identity replaced by a keyed pseudonym. The pseudonym-to-
// identity mapping is held by a separate ReidentificationMap so the Export
// service can do "full export" of re-identified consented data while the
// data lake never stores identities.
#pragma once

#include <array>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "privacy/schema.h"

namespace hc::privacy {

struct DeidentifiedRecord {
  FieldMap fields;        // identifiers removed / generalized
  std::string pseudonym;  // stable keyed handle for the patient
};

/// Stable keyed pseudonyms: HMAC-SHA256(key, patient_id) truncated. The
/// same patient always maps to the same pseudonym under one key, so
/// longitudinal analytics (DELT needs per-patient series) still work on
/// de-identified data.
class Pseudonymizer {
 public:
  explicit Pseudonymizer(Bytes key);

  std::string pseudonym_for(const std::string& patient_id) const;

 private:
  Bytes key_;
};

/// Two-way mapping guarded for the full-export path; kept separate from the
/// data lake per the paper's separation-of-duties argument.
///
/// Thread-safe via sharded locks keyed by pseudonym (exec::shard_by), so
/// parallel ingestion workers recording unrelated patients never contend.
class ReidentificationMap {
 public:
  void record(const std::string& pseudonym, const std::string& patient_id);
  Result<std::string> identity(const std::string& pseudonym) const;
  /// GDPR right-to-forget support: drop a patient's linkage.
  bool forget(const std::string& pseudonym);
  std::size_t size() const;

  static constexpr std::size_t kShardCount = 16;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::string> map;
  };

  Shard& shard_for(const std::string& pseudonym);
  const Shard& shard_for(const std::string& pseudonym) const;

  std::array<Shard, kShardCount> shards_;
};

/// Safe-Harbor-style generalization of one quasi-identifier value. Exposed
/// for tests; de-identify() applies it to every kQuasiIdentifier field.
///   age: numeric, >89 becomes "90+"; otherwise 5-year bands "30-34"
///   zip: first 3 digits + "**"
///   date (YYYY-MM-DD): year only
///   anything else: kept as-is
std::string generalize_quasi_identifier(const std::string& field,
                                        const std::string& value);

/// Applies the schema: removes direct identifiers, generalizes quasi-
/// identifiers, keeps sensitive/clinical fields, and pseudonymizes
/// `id_field` (which must be present). kInvalidArgument if missing.
Result<DeidentifiedRecord> deidentify(const FieldMap& record, const FieldSchema& schema,
                                      const Pseudonymizer& pseudonymizer,
                                      const std::string& id_field = "patient_id");

}  // namespace hc::privacy
