#include "privacy/deid.h"

#include <cctype>
#include <cstdlib>

#include "crypto/hmac.h"
#include "exec/executor.h"

namespace hc::privacy {

FieldSchema FieldSchema::standard_patient() {
  FieldSchema schema;
  schema.classes = {
      {"patient_id", FieldClass::kDirectIdentifier},
      {"name", FieldClass::kDirectIdentifier},
      {"ssn", FieldClass::kDirectIdentifier},
      {"phone", FieldClass::kDirectIdentifier},
      {"email", FieldClass::kDirectIdentifier},
      {"address", FieldClass::kDirectIdentifier},
      {"age", FieldClass::kQuasiIdentifier},
      {"zip", FieldClass::kQuasiIdentifier},
      {"gender", FieldClass::kQuasiIdentifier},
      {"birth_date", FieldClass::kQuasiIdentifier},
      {"diagnosis", FieldClass::kSensitive},
      {"hba1c", FieldClass::kClinical},
      {"medications", FieldClass::kClinical},
  };
  return schema;
}

Pseudonymizer::Pseudonymizer(Bytes key) : key_(std::move(key)) {}

std::string Pseudonymizer::pseudonym_for(const std::string& patient_id) const {
  Bytes tag = crypto::hmac_sha256(key_, to_bytes(patient_id));
  return "pseu-" + hex_encode(tag).substr(0, 16);
}

ReidentificationMap::Shard& ReidentificationMap::shard_for(
    const std::string& pseudonym) {
  return shards_[exec::shard_by(pseudonym, kShardCount)];
}

const ReidentificationMap::Shard& ReidentificationMap::shard_for(
    const std::string& pseudonym) const {
  return shards_[exec::shard_by(pseudonym, kShardCount)];
}

void ReidentificationMap::record(const std::string& pseudonym,
                                 const std::string& patient_id) {
  Shard& shard = shard_for(pseudonym);
  std::lock_guard lock(shard.mu);
  shard.map[pseudonym] = patient_id;
}

Result<std::string> ReidentificationMap::identity(const std::string& pseudonym) const {
  const Shard& shard = shard_for(pseudonym);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(pseudonym);
  if (it == shard.map.end()) {
    return Status(StatusCode::kNotFound, "no identity for " + pseudonym);
  }
  return it->second;
}

bool ReidentificationMap::forget(const std::string& pseudonym) {
  Shard& shard = shard_for(pseudonym);
  std::lock_guard lock(shard.mu);
  return shard.map.erase(pseudonym) > 0;
}

std::size_t ReidentificationMap::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

namespace {

bool is_all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool looks_like_date(const std::string& s) {
  // YYYY-MM-DD
  return s.size() == 10 && s[4] == '-' && s[7] == '-' &&
         is_all_digits(s.substr(0, 4)) && is_all_digits(s.substr(5, 2)) &&
         is_all_digits(s.substr(8, 2));
}

}  // namespace

std::string generalize_quasi_identifier(const std::string& field,
                                        const std::string& value) {
  if (field == "age" && is_all_digits(value)) {
    int age = std::atoi(value.c_str());
    if (age > 89) return "90+";  // HIPAA Safe Harbor pooling
    int lo = (age / 5) * 5;
    return std::to_string(lo) + "-" + std::to_string(lo + 4);
  }
  if (field == "zip" && is_all_digits(value) && value.size() == 5) {
    return value.substr(0, 3) + "**";
  }
  if (looks_like_date(value)) {
    return value.substr(0, 4);  // year only
  }
  return value;
}

Result<DeidentifiedRecord> deidentify(const FieldMap& record, const FieldSchema& schema,
                                      const Pseudonymizer& pseudonymizer,
                                      const std::string& id_field) {
  auto id_it = record.find(id_field);
  if (id_it == record.end()) {
    return Status(StatusCode::kInvalidArgument,
                  "record has no " + id_field + " to pseudonymize");
  }

  DeidentifiedRecord out;
  out.pseudonym = pseudonymizer.pseudonym_for(id_it->second);
  for (const auto& [field, value] : record) {
    switch (schema.classify(field)) {
      case FieldClass::kDirectIdentifier:
        break;  // removed entirely
      case FieldClass::kQuasiIdentifier:
        out.fields[field] = generalize_quasi_identifier(field, value);
        break;
      case FieldClass::kSensitive:
      case FieldClass::kClinical:
        out.fields[field] = value;
        break;
    }
  }
  out.fields["pseudonym"] = out.pseudonym;
  return out;
}

}  // namespace hc::privacy
