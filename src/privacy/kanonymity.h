// k-anonymity via Mondrian multidimensional partitioning, plus l-diversity.
//
// Section IV.C: the "degree of anonymization/privacy has two parts — one
// independent of other data objects and another that is determined
// holistically with respect to other data objects." The holistic part is
// exactly what k-anonymity measures: a record is hidden in a crowd of at
// least k records sharing its quasi-identifier signature. The Export
// service's anonymized export runs records through k_anonymize() before
// they leave the platform.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "privacy/schema.h"

namespace hc::privacy {

struct KAnonymityResult {
  std::vector<FieldMap> records;  // generalized; QI fields become "[lo-hi]"
  std::size_t suppressed = 0;     // records dropped (input smaller than k)
};

/// Generalizes the numeric quasi-identifier fields of `records` until every
/// equivalence class has at least k members (greedy Mondrian: split on the
/// widest normalized dimension at the median while both halves keep >= k).
/// Non-numeric values in a QI field are kInvalidArgument. If fewer than k
/// records exist in total, all are suppressed.
Result<KAnonymityResult> k_anonymize(const std::vector<FieldMap>& records,
                                     const std::vector<std::string>& qi_fields,
                                     std::size_t k);

/// True iff every equivalence class over the (string-equality) QI signature
/// has at least k members. Vacuously true for empty input.
bool is_k_anonymous(const std::vector<FieldMap>& records,
                    const std::vector<std::string>& qi_fields, std::size_t k);

/// Minimum number of distinct `sensitive_field` values in any equivalence
/// class (the "l" in l-diversity). Returns 0 for empty input.
std::size_t l_diversity(const std::vector<FieldMap>& records,
                        const std::vector<std::string>& qi_fields,
                        const std::string& sensitive_field);

/// Average equivalence-class size — a utility metric: smaller classes mean
/// less generalization and more analytic value.
double average_class_size(const std::vector<FieldMap>& records,
                          const std::vector<std::string>& qi_fields);

}  // namespace hc::privacy
