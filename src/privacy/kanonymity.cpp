#include "privacy/kanonymity.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>

namespace hc::privacy {

namespace {

std::string qi_signature(const FieldMap& record,
                         const std::vector<std::string>& qi_fields) {
  std::string sig;
  for (const auto& field : qi_fields) {
    auto it = record.find(field);
    sig += (it == record.end() ? std::string("<absent>") : it->second);
    sig += '\x1f';
  }
  return sig;
}

struct Partition {
  std::vector<std::size_t> rows;
};

std::string format_range(double lo, double hi) {
  auto fmt = [](double v) {
    char buf[32];
    if (v == static_cast<long long>(v)) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof(buf), "%.2f", v);
    }
    return std::string(buf);
  };
  if (lo == hi) return fmt(lo);
  return "[" + fmt(lo) + "-" + fmt(hi) + "]";
}

}  // namespace

Result<KAnonymityResult> k_anonymize(const std::vector<FieldMap>& records,
                                     const std::vector<std::string>& qi_fields,
                                     std::size_t k) {
  if (k == 0) return Status(StatusCode::kInvalidArgument, "k must be positive");

  KAnonymityResult result;
  if (records.size() < k) {
    result.suppressed = records.size();
    return result;
  }

  // Parse QI matrix up front.
  std::vector<std::vector<double>> values(records.size(),
                                          std::vector<double>(qi_fields.size()));
  for (std::size_t r = 0; r < records.size(); ++r) {
    for (std::size_t f = 0; f < qi_fields.size(); ++f) {
      auto it = records[r].find(qi_fields[f]);
      if (it == records[r].end()) {
        return Status(StatusCode::kInvalidArgument,
                      "record missing QI field " + qi_fields[f]);
      }
      char* end = nullptr;
      double v = std::strtod(it->second.c_str(), &end);
      if (end == it->second.c_str() || *end != '\0') {
        return Status(StatusCode::kInvalidArgument,
                      "non-numeric QI value in field " + qi_fields[f] + ": " +
                          it->second);
      }
      values[r][f] = v;
    }
  }

  // Global ranges for normalized-width dimension choice.
  std::vector<double> global_lo(qi_fields.size(), std::numeric_limits<double>::max());
  std::vector<double> global_hi(qi_fields.size(), std::numeric_limits<double>::lowest());
  for (const auto& row : values) {
    for (std::size_t f = 0; f < row.size(); ++f) {
      global_lo[f] = std::min(global_lo[f], row[f]);
      global_hi[f] = std::max(global_hi[f], row[f]);
    }
  }

  result.records = records;

  // Iterative Mondrian with an explicit work stack.
  std::vector<Partition> work;
  Partition all;
  all.rows.resize(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) all.rows[i] = i;
  work.push_back(std::move(all));

  while (!work.empty()) {
    Partition part = std::move(work.back());
    work.pop_back();

    // Try dimensions in order of decreasing normalized width.
    std::vector<std::pair<double, std::size_t>> dims;
    for (std::size_t f = 0; f < qi_fields.size(); ++f) {
      double lo = std::numeric_limits<double>::max();
      double hi = std::numeric_limits<double>::lowest();
      for (auto r : part.rows) {
        lo = std::min(lo, values[r][f]);
        hi = std::max(hi, values[r][f]);
      }
      double span = global_hi[f] > global_lo[f]
                        ? (hi - lo) / (global_hi[f] - global_lo[f])
                        : 0.0;
      dims.emplace_back(span, f);
    }
    std::sort(dims.rbegin(), dims.rend());

    bool split_done = false;
    if (part.rows.size() >= 2 * k) {
      for (const auto& [span, f] : dims) {
        if (span <= 0.0) break;  // all remaining dims constant in partition
        // Median split on dimension f.
        std::vector<std::size_t> sorted = part.rows;
        std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
          return values[a][f] < values[b][f];
        });
        double median = values[sorted[sorted.size() / 2]][f];
        Partition left, right;
        for (auto r : sorted) {
          (values[r][f] < median ? left : right).rows.push_back(r);
        }
        if (left.rows.size() >= k && right.rows.size() >= k) {
          work.push_back(std::move(left));
          work.push_back(std::move(right));
          split_done = true;
          break;
        }
      }
    }
    if (split_done) continue;

    // Finalize: generalize each QI to the partition's range.
    for (std::size_t f = 0; f < qi_fields.size(); ++f) {
      double lo = std::numeric_limits<double>::max();
      double hi = std::numeric_limits<double>::lowest();
      for (auto r : part.rows) {
        lo = std::min(lo, values[r][f]);
        hi = std::max(hi, values[r][f]);
      }
      std::string label = format_range(lo, hi);
      for (auto r : part.rows) result.records[r][qi_fields[f]] = label;
    }
  }

  return result;
}

bool is_k_anonymous(const std::vector<FieldMap>& records,
                    const std::vector<std::string>& qi_fields, std::size_t k) {
  std::map<std::string, std::size_t> classes;
  for (const auto& record : records) classes[qi_signature(record, qi_fields)]++;
  for (const auto& [sig, count] : classes) {
    if (count < k) return false;
  }
  return true;
}

std::size_t l_diversity(const std::vector<FieldMap>& records,
                        const std::vector<std::string>& qi_fields,
                        const std::string& sensitive_field) {
  if (records.empty()) return 0;
  std::map<std::string, std::set<std::string>> classes;
  for (const auto& record : records) {
    auto it = record.find(sensitive_field);
    std::string value = it == record.end() ? std::string("<absent>") : it->second;
    classes[qi_signature(record, qi_fields)].insert(value);
  }
  std::size_t min_l = std::numeric_limits<std::size_t>::max();
  for (const auto& [sig, distinct] : classes) min_l = std::min(min_l, distinct.size());
  return min_l;
}

double average_class_size(const std::vector<FieldMap>& records,
                          const std::vector<std::string>& qi_fields) {
  if (records.empty()) return 0.0;
  std::map<std::string, std::size_t> classes;
  for (const auto& record : records) classes[qi_signature(record, qi_fields)]++;
  return static_cast<double>(records.size()) / static_cast<double>(classes.size());
}

}  // namespace hc::privacy
