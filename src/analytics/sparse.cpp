#include "analytics/sparse.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "analytics/kernels.h"
#include "exec/executor.h"

namespace hc::analytics::sparse {

namespace {

/// Same fixed-block decomposition as kernels.cpp: blocks depend only on
/// `rows`, so the write pattern is worker-count invariant.
void for_row_blocks(std::size_t rows, std::size_t workers,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
  std::size_t blocks = (rows + kernels::kRowBlock - 1) / kernels::kRowBlock;
  exec::parallel_for(blocks, workers, [&](std::size_t block) {
    std::size_t begin = block * kernels::kRowBlock;
    fn(begin, std::min(rows, begin + kernels::kRowBlock));
  });
}

/// One ascending-k dot — the reduction every dense residual cell uses.
inline double dot1(const double* a, const double* b, std::size_t n) {
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum += a[k] * b[k];
  return sum;
}

/// Four independent ascending-k dots sharing one pass over `a` (each sum a
/// single accumulator — bit-identical to dot1, see kernels.cpp).
inline void dot4(const double* a, const double* b0, const double* b1,
                 const double* b2, const double* b3, std::size_t n, double& s0,
                 double& s1, double& s2, double& s3) {
  double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    double av = a[k];
    t0 += av * b0[k];
    t1 += av * b1[k];
    t2 += av * b2[k];
    t3 += av * b3[k];
  }
  s0 = t0;
  s1 = t1;
  s2 = t2;
  s3 = t3;
}

/// Gap walk: drow[k] = (stored value at column k) - mrow[k], i.e. the row
/// of (S - M) with S sparse. Unstored cells compute 0.0 - mrow[k] — the
/// same subtraction the dense kernel performs against S's zero cell, so
/// the bits match even where the result is a signed zero.
inline void diff_row(const std::uint32_t* cols, const double* vals,
                     std::size_t count, const double* mrow, double* drow,
                     std::size_t n) {
  std::size_t s = 0;
  for (std::size_t k = 0; k < n; ++k) {
    double sv = 0.0;
    if (s < count && cols[s] == k) sv = vals[s++];
    drow[k] = sv - mrow[k];
  }
}

void check_u32_range(std::size_t rows, std::size_t cols, std::size_t nnz) {
  constexpr std::size_t kMax = std::numeric_limits<std::uint32_t>::max();
  if (rows > kMax || cols > kMax || nnz > kMax) {
    throw std::invalid_argument("sparse: dimension exceeds uint32 index range");
  }
}

}  // namespace

// --- CsrMatrix ---------------------------------------------------------

CsrMatrix CsrMatrix::from_dense(const Matrix& dense) {
  check_u32_range(dense.rows(), dense.cols(), dense.nnz());
  CsrMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.row_ptr_.reserve(out.rows_ + 1);
  out.col_idx_.reserve(dense.nnz());
  out.values_.reserve(dense.nnz());
  out.row_ptr_.push_back(0);
  for (std::size_t r = 0; r < out.rows_; ++r) {
    const double* row = dense.row(r);
    for (std::size_t c = 0; c < out.cols_; ++c) {
      if (row[c] != 0.0) {
        out.col_idx_.push_back(static_cast<std::uint32_t>(c));
        out.values_.push_back(row[c]);
      }
    }
    out.row_ptr_.push_back(static_cast<std::uint32_t>(out.col_idx_.size()));
  }
  return out;
}

CsrMatrix CsrMatrix::from_dense_masked(const Matrix& values, const Matrix& mask) {
  if (!values.same_shape(mask)) {
    throw std::invalid_argument("CsrMatrix::from_dense_masked: shape mismatch");
  }
  check_u32_range(values.rows(), values.cols(), mask.nnz());
  CsrMatrix out;
  out.rows_ = values.rows();
  out.cols_ = values.cols();
  out.row_ptr_.reserve(out.rows_ + 1);
  out.row_ptr_.push_back(0);
  for (std::size_t r = 0; r < out.rows_; ++r) {
    const double* vrow = values.row(r);
    const double* mrow = mask.row(r);
    for (std::size_t c = 0; c < out.cols_; ++c) {
      if (mrow[c] != 0.0) {
        out.col_idx_.push_back(static_cast<std::uint32_t>(c));
        out.values_.push_back(vrow[c]);
      }
    }
    out.row_ptr_.push_back(static_cast<std::uint32_t>(out.col_idx_.size()));
  }
  return out;
}

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   const std::vector<Triplet>& triplets) {
  check_u32_range(rows, cols, triplets.size());
  for (const Triplet& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      throw std::invalid_argument("CsrMatrix::from_triplets: coordinate out of range");
    }
  }
  // Stable sort by (row, col): ties keep input order, so coalescing a
  // duplicate run sums its values in the order the caller supplied them —
  // the canonical representation is a pure function of the triplet list.
  std::vector<std::uint32_t> order(triplets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<std::uint32_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const Triplet& ta = triplets[a];
    const Triplet& tb = triplets[b];
    if (ta.row != tb.row) return ta.row < tb.row;
    return ta.col < tb.col;
  });
  CsrMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_ptr_.assign(rows + 1, 0);
  out.col_idx_.reserve(triplets.size());
  out.values_.reserve(triplets.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    while (i < order.size() && triplets[order[i]].row == r) {
      std::uint32_t c = triplets[order[i]].col;
      double sum = triplets[order[i]].value;
      ++i;
      while (i < order.size() && triplets[order[i]].row == r &&
             triplets[order[i]].col == c) {
        sum += triplets[order[i]].value;
        ++i;
      }
      // Coalesced entries that sum to 0.0 stay stored: kernels skip stored
      // zeros, so keeping them is numerically free, and dropping them would
      // make the pattern depend on the values.
      out.col_idx_.push_back(c);
      out.values_.push_back(sum);
    }
    out.row_ptr_[r + 1] = static_cast<std::uint32_t>(out.col_idx_.size());
  }
  return out;
}

double CsrMatrix::density() const {
  std::size_t cells = rows_ * cols_;
  if (cells == 0) return 0.0;
  return static_cast<double>(values_.size()) / static_cast<double>(cells);
}

std::size_t CsrMatrix::bytes() const {
  return row_ptr_.capacity() * sizeof(std::uint32_t) +
         col_idx_.capacity() * sizeof(std::uint32_t) +
         values_.capacity() * sizeof(double);
}

Matrix CsrMatrix::to_dense() const {
  Matrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double* orow = out.row(r);
    for (std::uint32_t s = row_ptr_[r]; s < row_ptr_[r + 1]; ++s) {
      orow[col_idx_[s]] = values_[s];
    }
  }
  return out;
}

double CsrMatrix::norm_squared() const {
  double sum = 0.0;
  for (double v : values_) sum += v * v;
  return sum;
}

void CsrMatrix::copy_pattern_from(const CsrMatrix& other) {
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = other.row_ptr_;
  col_idx_ = other.col_idx_;
  values_.resize(other.values_.size());
}

// --- CscMatrix ---------------------------------------------------------

CscMatrix CscMatrix::from_dense(const Matrix& dense) {
  check_u32_range(dense.rows(), dense.cols(), dense.nnz());
  CscMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.col_ptr_.reserve(out.cols_ + 1);
  out.col_ptr_.push_back(0);
  for (std::size_t c = 0; c < out.cols_; ++c) {
    for (std::size_t r = 0; r < out.rows_; ++r) {
      double v = dense(r, c);
      if (v != 0.0) {
        out.row_idx_.push_back(static_cast<std::uint32_t>(r));
        out.values_.push_back(v);
      }
    }
    out.col_ptr_.push_back(static_cast<std::uint32_t>(out.row_idx_.size()));
  }
  return out;
}

CscMatrix CscMatrix::from_csr(const CsrMatrix& csr) {
  CscMatrix out;
  out.rows_ = csr.rows_;
  out.cols_ = csr.cols_;
  std::size_t nnz = csr.values_.size();
  out.col_ptr_.assign(out.cols_ + 1, 0);
  out.row_idx_.resize(nnz);
  out.values_.resize(nnz);
  out.csr_perm_.resize(nnz);
  // Counting sort by column. The row-major CSR walk emits each column's
  // entries in ascending row order, so the CSC comes out canonical.
  for (std::uint32_t c : csr.col_idx_) ++out.col_ptr_[c + 1];
  for (std::size_t c = 0; c < out.cols_; ++c) out.col_ptr_[c + 1] += out.col_ptr_[c];
  std::vector<std::uint32_t> next(out.col_ptr_.begin(), out.col_ptr_.end() - 1);
  for (std::size_t r = 0; r < csr.rows_; ++r) {
    for (std::uint32_t s = csr.row_ptr_[r]; s < csr.row_ptr_[r + 1]; ++s) {
      std::uint32_t slot = next[csr.col_idx_[s]]++;
      out.row_idx_[slot] = static_cast<std::uint32_t>(r);
      out.values_[slot] = csr.values_[s];
      out.csr_perm_[slot] = s;
    }
  }
  return out;
}

void CscMatrix::refill_from_csr(const CsrMatrix& csr) {
  if (csr.rows() != rows_ || csr.cols() != cols_ ||
      csr.nnz() != values_.size() || csr_perm_.size() != values_.size()) {
    throw std::invalid_argument(
        "CscMatrix::refill_from_csr: not built from a CSR with this pattern");
  }
  const double* src = csr.values();
  for (std::size_t s = 0; s < values_.size(); ++s) values_[s] = src[csr_perm_[s]];
}

double CscMatrix::density() const {
  std::size_t cells = rows_ * cols_;
  if (cells == 0) return 0.0;
  return static_cast<double>(values_.size()) / static_cast<double>(cells);
}

std::size_t CscMatrix::bytes() const {
  return col_ptr_.capacity() * sizeof(std::uint32_t) +
         row_idx_.capacity() * sizeof(std::uint32_t) +
         values_.capacity() * sizeof(double) +
         csr_perm_.capacity() * sizeof(std::uint32_t);
}

Matrix CscMatrix::to_dense() const {
  Matrix out(rows_, cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    for (std::uint32_t s = col_ptr_[c]; s < col_ptr_[c + 1]; ++s) {
      out(row_idx_[s], c) = values_[s];
    }
  }
  return out;
}

void build_transpose(const CsrMatrix& a, CsrMatrix& out,
                     std::vector<std::uint32_t>& perm) {
  out.rows_ = a.cols_;
  out.cols_ = a.rows_;
  std::size_t nnz = a.values_.size();
  out.row_ptr_.assign(out.rows_ + 1, 0);
  out.col_idx_.resize(nnz);
  out.values_.resize(nnz);
  perm.resize(nnz);
  for (std::uint32_t c : a.col_idx_) ++out.row_ptr_[c + 1];
  for (std::size_t r = 0; r < out.rows_; ++r) out.row_ptr_[r + 1] += out.row_ptr_[r];
  std::vector<std::uint32_t> next(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (std::size_t r = 0; r < a.rows_; ++r) {
    for (std::uint32_t s = a.row_ptr_[r]; s < a.row_ptr_[r + 1]; ++s) {
      std::uint32_t slot = next[a.col_idx_[s]]++;
      out.col_idx_[slot] = static_cast<std::uint32_t>(r);
      out.values_[slot] = a.values_[s];
      perm[slot] = s;
    }
  }
}

void refill_transpose(const CsrMatrix& a, CsrMatrix& out,
                      const std::vector<std::uint32_t>& perm) {
  if (perm.size() != a.nnz() || perm.size() != out.nnz() ||
      a.rows() != out.cols() || a.cols() != out.rows()) {
    throw std::invalid_argument("sparse::refill_transpose: stale transpose pattern");
  }
  const double* src = a.values();
  double* dst = out.mutable_values();
  for (std::size_t s = 0; s < perm.size(); ++s) dst[s] = src[perm[s]];
}

// --- kernels -----------------------------------------------------------

void multiply_into(const CsrMatrix& a, const Matrix& b, Matrix& out,
                   std::size_t workers) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("sparse::multiply_into: shape mismatch");
  }
  out.resize(a.rows(), b.cols());
  std::size_t width = b.cols();
  for_row_blocks(a.rows(), workers, [&](std::size_t begin, std::size_t end) {
    const std::uint32_t* rp = a.row_ptr();
    const std::uint32_t* ci = a.col_idx();
    const double* vals = a.values();
    const double* bdata = b.row(0);
    double* odata = out.row(0);
    for (std::size_t i = begin; i < end; ++i) {
      double* orow = odata + i * width;
      for (std::size_t j = 0; j < width; ++j) orow[j] = 0.0;
      // Stored columns ascend, so per output cell the axpy additions land
      // in the same ascending-k order (with the same zero-skip) as the
      // dense kernel — bitwise equal to multiply_into(a.to_dense(), b).
      for (std::uint32_t s = rp[i]; s < rp[i + 1]; ++s) {
        double v = vals[s];
        if (v == 0.0) continue;
        const double* brow = bdata + static_cast<std::size_t>(ci[s]) * width;
        for (std::size_t j = 0; j < width; ++j) orow[j] += v * brow[j];
      }
    }
  });
}

void transpose_multiply_into(const CscMatrix& a, const Matrix& b, Matrix& out,
                             std::size_t workers) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("sparse::transpose_multiply_into: shape mismatch");
  }
  out.resize(a.cols(), b.cols());
  std::size_t width = b.cols();
  // Output row j is column j of `a`: the row partition is a column
  // partition of the CSC, each output row owned by one worker — the dense
  // kernel's scatter-free structure without materializing a^T.
  for_row_blocks(a.cols(), workers, [&](std::size_t begin, std::size_t end) {
    const std::uint32_t* cp = a.col_ptr();
    const std::uint32_t* ri = a.row_idx();
    const double* vals = a.values();
    const double* bdata = b.row(0);
    double* odata = out.row(0);
    for (std::size_t j = begin; j < end; ++j) {
      double* orow = odata + j * width;
      for (std::size_t c = 0; c < width; ++c) orow[c] = 0.0;
      for (std::uint32_t s = cp[j]; s < cp[j + 1]; ++s) {
        double v = vals[s];
        if (v == 0.0) continue;
        const double* brow = bdata + static_cast<std::size_t>(ri[s]) * width;
        for (std::size_t c = 0; c < width; ++c) orow[c] += v * brow[c];
      }
    }
  });
}

void residual_into(const CsrMatrix& r, const Matrix& u, const Matrix& v,
                   Matrix& out, std::size_t workers) {
  if (u.cols() != v.cols() || r.rows() != u.rows() || r.cols() != v.rows()) {
    throw std::invalid_argument("sparse::residual_into: shape mismatch");
  }
  out.resize(r.rows(), r.cols());
  std::size_t inner = u.cols();
  std::size_t width = v.rows();
  for_row_blocks(r.rows(), workers, [&](std::size_t begin, std::size_t end) {
    const std::uint32_t* rp = r.row_ptr();
    const std::uint32_t* ci = r.col_idx();
    const double* vals = r.values();
    const double* udata = u.row(0);
    const double* vdata = v.row(0);
    double* odata = out.row(0);
    for (std::size_t i = begin; i < end; ++i) {
      const double* urow = udata + i * inner;
      double* orow = odata + i * width;
      std::uint32_t s = rp[i];
      std::uint32_t send = rp[i + 1];
      // Gap walk supplies r(i, j): stored value or 0.0. Every cell still
      // computes rv - dot, so unstored cells produce the same 0.0 - dot
      // bits (sign of zero included) as the dense kernel.
      auto next_rv = [&](std::size_t j) {
        if (s < send && ci[s] == j) return vals[s++];
        return 0.0;
      };
      std::size_t j = 0;
      for (; j + 4 <= width; j += 4) {
        const double* vrow = vdata + j * inner;
        double s0, s1, s2, s3;
        dot4(urow, vrow, vrow + inner, vrow + 2 * inner, vrow + 3 * inner,
             inner, s0, s1, s2, s3);
        orow[j] = next_rv(j) - s0;
        orow[j + 1] = next_rv(j + 1) - s1;
        orow[j + 2] = next_rv(j + 2) - s2;
        orow[j + 3] = next_rv(j + 3) - s3;
      }
      for (; j < width; ++j) {
        orow[j] = next_rv(j) - dot1(urow, vdata + j * inner, inner);
      }
    }
  });
}

void masked_residual_into(const CsrMatrix& observed, const Matrix& u,
                          const Matrix& v, Matrix& out, std::size_t workers) {
  if (u.cols() != v.cols() || observed.rows() != u.rows() ||
      observed.cols() != v.rows()) {
    throw std::invalid_argument("sparse::masked_residual_into: shape mismatch");
  }
  out.resize(observed.rows(), observed.cols());
  std::size_t inner = u.cols();
  std::size_t width = observed.cols();
  for_row_blocks(observed.rows(), workers, [&](std::size_t begin, std::size_t end) {
    const std::uint32_t* rp = observed.row_ptr();
    const std::uint32_t* ci = observed.col_idx();
    const double* vals = observed.values();
    const double* udata = u.row(0);
    const double* vdata = v.row(0);
    double* odata = out.row(0);
    for (std::size_t i = begin; i < end; ++i) {
      const double* urow = udata + i * inner;
      double* orow = odata + i * width;
      for (std::size_t j = 0; j < width; ++j) orow[j] = 0.0;
      // Only stored cells pay a dot — O(nnz * rank) instead of
      // O(rows * cols * rank). Per cell the dot is the same ascending-k
      // reduction the dense masked kernel uses, so stored cells match
      // bitwise and unstored cells are the same literal 0.0.
      for (std::uint32_t s = rp[i]; s < rp[i + 1]; ++s) {
        std::size_t j = ci[s];
        orow[j] = vals[s] - dot1(urow, vdata + j * inner, inner);
      }
    }
  });
}

void masked_residual_values(const CsrMatrix& observed, const Matrix& u,
                            const Matrix& v, CsrMatrix& out,
                            std::size_t workers) {
  if (u.cols() != v.cols() || observed.rows() != u.rows() ||
      observed.cols() != v.rows()) {
    throw std::invalid_argument("sparse::masked_residual_values: shape mismatch");
  }
  if (out.rows() != observed.rows() || out.cols() != observed.cols() ||
      out.nnz() != observed.nnz()) {
    out.copy_pattern_from(observed);
  }
  std::size_t inner = u.cols();
  for_row_blocks(observed.rows(), workers, [&](std::size_t begin, std::size_t end) {
    const std::uint32_t* rp = observed.row_ptr();
    const std::uint32_t* ci = observed.col_idx();
    const double* vals = observed.values();
    const double* udata = u.row(0);
    const double* vdata = v.row(0);
    double* ovals = out.mutable_values();
    for (std::size_t i = begin; i < end; ++i) {
      const double* urow = udata + i * inner;
      for (std::uint32_t s = rp[i]; s < rp[i + 1]; ++s) {
        ovals[s] = vals[s] -
                   dot1(urow, vdata + static_cast<std::size_t>(ci[s]) * inner, inner);
      }
    }
  });
}

void syrk_residual_into(const CsrMatrix& s, const Matrix& f, Matrix& out,
                        std::size_t workers) {
  if (s.rows() != s.cols() || s.rows() != f.rows()) {
    throw std::invalid_argument("sparse::syrk_residual_into: shape mismatch");
  }
  std::size_t n = s.rows();
  std::size_t inner = f.cols();
  out.resize(n, n);
  for_row_blocks(n, workers, [&](std::size_t begin, std::size_t end) {
    const std::uint32_t* rp = s.row_ptr();
    const std::uint32_t* ci = s.col_idx();
    const double* vals = s.values();
    const double* fdata = f.row(0);
    double* odata = out.row(0);
    for (std::size_t i = begin; i < end; ++i) {
      const double* arow = fdata + i * inner;
      double* orow = odata + i * n;
      // Upper triangle only (mirrored below, a bit copy). Advance the gap
      // walk past the strict lower triangle first.
      std::uint32_t sp = rp[i];
      std::uint32_t send = rp[i + 1];
      while (sp < send && ci[sp] < i) ++sp;
      auto next_sv = [&](std::size_t j) {
        if (sp < send && ci[sp] == j) return vals[sp++];
        return 0.0;
      };
      std::size_t j = i;
      for (; j + 4 <= n; j += 4) {
        const double* brow = fdata + j * inner;
        double s0, s1, s2, s3;
        dot4(arow, brow, brow + inner, brow + 2 * inner, brow + 3 * inner,
             inner, s0, s1, s2, s3);
        orow[j] = next_sv(j) - s0;
        orow[j + 1] = next_sv(j + 1) - s1;
        orow[j + 2] = next_sv(j + 2) - s2;
        orow[j + 3] = next_sv(j + 3) - s3;
      }
      for (; j < n; ++j) {
        orow[j] = next_sv(j) - dot1(arow, fdata + j * inner, inner);
      }
    }
  });
  for_row_blocks(n, workers, [&](std::size_t begin, std::size_t end) {
    double* odata = out.row(0);
    for (std::size_t i = begin; i < end; ++i) {
      double* orow = odata + i * n;
      for (std::size_t j = 0; j < i; ++j) orow[j] = odata[j * n + i];
    }
  });
}

void fused_sub_multiply_add_into(Matrix& grad,
                                 const std::vector<CsrMatrix>& sources,
                                 const Matrix& m, const Matrix& f,
                                 const std::vector<double>& factors,
                                 Matrix& scratch, std::size_t workers) {
  if (factors.size() != sources.size()) {
    throw std::invalid_argument(
        "sparse::fused_sub_multiply_add_into: factors/sources size mismatch");
  }
  for (const CsrMatrix& s : sources) {
    if (s.rows() != m.rows() || s.cols() != m.cols()) {
      throw std::invalid_argument(
          "sparse::fused_sub_multiply_add_into: shape mismatch");
    }
  }
  if (m.cols() != f.rows() || grad.rows() != m.rows() || grad.cols() != f.cols()) {
    throw std::invalid_argument(
        "sparse::fused_sub_multiply_add_into: shape mismatch");
  }
  std::size_t count = sources.size();
  std::size_t inner = m.cols();
  std::size_t width = f.cols();
  scratch.resize(grad.rows(), count * inner);
  for_row_blocks(grad.rows(), workers, [&](std::size_t begin, std::size_t end) {
    const double* fdata = f.row(0);
    const double* mdata = m.row(0);
    const CsrMatrix* srcs = sources.data();
    const double* fac = factors.data();
    double* gdata = grad.row(0);
    double* sdata = scratch.row(0);
    for (std::size_t i = begin; i < end; ++i) {
      const double* mrow = mdata + i * inner;
      double* diff = sdata + i * count * inner;
      for (std::size_t s = 0; s < count; ++s) {
        const CsrMatrix& src = srcs[s];
        std::uint32_t b = src.row_ptr()[i];
        diff_row(src.col_idx() + b, src.values() + b, src.row_ptr()[i + 1] - b,
                 mrow, diff + s * inner, inner);
      }
      // Same shared interleave as the dense kernel — identical bits once
      // the diff rows match (and they do: see diff_row).
      double* grow = gdata + i * width;
      for (std::size_t s = 0; s < count; ++s) {
        kernels::accumulate_scaled_products(grow, diff + s * inner, fdata,
                                            fac[s], inner, width);
      }
    }
  });
}

double inner_product_uv(const CsrMatrix& a, const Matrix& u, const Matrix& v) {
  if (u.cols() != v.cols() || a.rows() != u.rows() || a.cols() != v.rows()) {
    throw std::invalid_argument("sparse::inner_product_uv: shape mismatch");
  }
  std::size_t inner = u.cols();
  const std::uint32_t* rp = a.row_ptr();
  const std::uint32_t* ci = a.col_idx();
  const double* vals = a.values();
  const double* udata = u.row(0);
  const double* vdata = v.row(0);
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* urow = udata + i * inner;
    for (std::uint32_t s = rp[i]; s < rp[i + 1]; ++s) {
      sum += vals[s] *
             dot1(urow, vdata + static_cast<std::size_t>(ci[s]) * inner, inner);
    }
  }
  return sum;
}

double frobenius_distance(const CsrMatrix& s, const Matrix& m) {
  if (s.rows() != m.rows() || s.cols() != m.cols()) {
    throw std::invalid_argument("sparse::frobenius_distance: shape mismatch");
  }
  // Flat ascending walk, one accumulator — the same reduction as
  // Matrix::frobenius_distance on to_dense(); unstored cells contribute
  // (0.0 - m)^2.
  const std::uint32_t* rp = s.row_ptr();
  const std::uint32_t* ci = s.col_idx();
  const double* vals = s.values();
  double sum = 0.0;
  std::size_t width = s.cols();
  for (std::size_t i = 0; i < s.rows(); ++i) {
    const double* mrow = m.row(i);
    std::uint32_t sp = rp[i];
    std::uint32_t send = rp[i + 1];
    for (std::size_t j = 0; j < width; ++j) {
      double sv = 0.0;
      if (sp < send && ci[sp] == j) sv = vals[sp++];
      double d = sv - mrow[j];
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

void masked_gram_apply(const CsrMatrix& pattern, const Matrix& g,
                       const Matrix& p, Matrix& out, std::size_t workers) {
  if (g.cols() != p.cols() || pattern.rows() != p.rows() ||
      pattern.cols() != g.rows()) {
    throw std::invalid_argument("sparse::masked_gram_apply: shape mismatch");
  }
  out.resize(p.rows(), p.cols());
  std::size_t rank = p.cols();
  for_row_blocks(pattern.rows(), workers, [&](std::size_t begin, std::size_t end) {
    const std::uint32_t* rp = pattern.row_ptr();
    const std::uint32_t* ci = pattern.col_idx();
    const double* gdata = g.row(0);
    const double* pdata = p.row(0);
    double* odata = out.row(0);
    for (std::size_t i = begin; i < end; ++i) {
      const double* prow = pdata + i * rank;
      double* orow = odata + i * rank;
      for (std::size_t c = 0; c < rank; ++c) orow[c] = 0.0;
      // out.row(i) = sum_j (p_i . g_j) g_j over stored j ascending; each
      // dot and axpy ascends, so the result is worker-count invariant.
      for (std::uint32_t s = rp[i]; s < rp[i + 1]; ++s) {
        const double* grow = gdata + static_cast<std::size_t>(ci[s]) * rank;
        double coeff = dot1(prow, grow, rank);
        for (std::size_t c = 0; c < rank; ++c) orow[c] += coeff * grow[c];
      }
    }
  });
}

void masked_gram_apply(const CscMatrix& pattern, const Matrix& g,
                       const Matrix& p, Matrix& out, std::size_t workers) {
  if (g.cols() != p.cols() || pattern.cols() != p.rows() ||
      pattern.rows() != g.rows()) {
    throw std::invalid_argument("sparse::masked_gram_apply: shape mismatch");
  }
  out.resize(p.rows(), p.cols());
  std::size_t rank = p.cols();
  for_row_blocks(pattern.cols(), workers, [&](std::size_t begin, std::size_t end) {
    const std::uint32_t* cp = pattern.col_ptr();
    const std::uint32_t* ri = pattern.row_idx();
    const double* gdata = g.row(0);
    const double* pdata = p.row(0);
    double* odata = out.row(0);
    for (std::size_t j = begin; j < end; ++j) {
      const double* prow = pdata + j * rank;
      double* orow = odata + j * rank;
      for (std::size_t c = 0; c < rank; ++c) orow[c] = 0.0;
      for (std::uint32_t s = cp[j]; s < cp[j + 1]; ++s) {
        const double* grow = gdata + static_cast<std::size_t>(ri[s]) * rank;
        double coeff = dot1(prow, grow, rank);
        for (std::size_t c = 0; c < rank; ++c) orow[c] += coeff * grow[c];
      }
    }
  });
}

}  // namespace hc::analytics::sparse
