#include "analytics/jmf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analytics/kernels.h"
#include "analytics/metrics.h"

namespace hc::analytics {

namespace {

void project_nonnegative(Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double* row = m.row(i);
    for (std::size_t k = 0; k < m.cols(); ++k) row[k] = std::max(0.0, row[k]);
  }
}

/// Normalized squared fit error ||S - F F'||_F^2 / n^2 for the weight update.
double similarity_fit_error(const Matrix& similarity, const Matrix& factor) {
  Matrix approx = factor.multiply_transposed(factor);
  double d = similarity.frobenius_distance(approx);
  double n = static_cast<double>(similarity.rows());
  return (d * d) / (n * n);
}

/// alpha_i ∝ exp(-err_i / gamma), normalized to a simplex.
std::vector<double> entropy_weights(const std::vector<double>& errors, double gamma) {
  std::vector<double> weights(errors.size());
  double min_err = *std::min_element(errors.begin(), errors.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    weights[i] = std::exp(-(errors[i] - min_err) / gamma);
    sum += weights[i];
  }
  for (auto& w : weights) w /= sum;
  return weights;
}

/// Gradient contribution of  alpha * ||S - F F'||^2  wrt F:  4 alpha (S - FF')F.
/// Returned as the *ascent* direction on the objective's negative, i.e. the
/// step to ADD for gradient descent.
Matrix similarity_gradient(const Matrix& similarity, const Matrix& factor,
                           double weight) {
  Matrix diff = similarity;  // S - FF'
  diff.add_scaled(factor.multiply_transposed(factor), -1.0);
  Matrix grad = diff.multiply(factor);
  grad.scale(4.0 * weight);
  return grad;
}

/// Serial flat ascending <A, B>_F — for symmetric k x k Grams this is
/// tr(A B), the building block of the Gram-identity objectives.
double frob_inner(const Matrix& a, const Matrix& b) {
  const double* ad = a.data();
  const double* bd = b.data();
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += ad[i] * bd[i];
  return sum;
}

std::size_t newton_ws_bytes(const solver::NewtonWorkspace& ws) {
  return ws.cg.r.allocated_bytes() + ws.cg.z.allocated_bytes() +
         ws.cg.p.allocated_bytes() + ws.cg.hp.allocated_bytes() +
         ws.neg_grad.allocated_bytes() + ws.direction.allocated_bytes() +
         ws.trial.allocated_bytes();
}

std::size_t jmf_workspace_bytes(const JmfWorkspace& ws) {
  return ws.uuT.allocated_bytes() + ws.vvT.allocated_bytes() +
         ws.residual.allocated_bytes() + ws.diff.allocated_bytes() +
         ws.grad_u.allocated_bytes() + ws.grad_v.allocated_bytes() +
         ws.grad_src.allocated_bytes() + ws.factors.capacity() * sizeof(double) +
         ws.utu.allocated_bytes() + ws.vtv.allocated_bytes() +
         ws.obj_gram.allocated_bytes() + ws.rv.allocated_bytes() +
         ws.sim_mul.allocated_bytes() + ws.grad_n.allocated_bytes() +
         ws.h_tmp.allocated_bytes() + ws.h_ptu.allocated_bytes() +
         newton_ws_bytes(ws.newton_u) + newton_ws_bytes(ws.newton_v);
}

std::vector<std::size_t> group_assignments(const Matrix& factor) {
  std::vector<std::size_t> groups(factor.rows());
  for (std::size_t i = 0; i < factor.rows(); ++i) {
    const double* row = factor.row(i);
    std::size_t best = 0;
    for (std::size_t k = 1; k < factor.cols(); ++k) {
      if (row[k] > row[best]) best = k;
    }
    groups[i] = best;
  }
  return groups;
}

}  // namespace

namespace {

/// The seed implementation: naive Matrix kernels, fresh temporaries every
/// epoch. Kept (a) as the wall-clock baseline bench_analytics_kernels and
/// bench_jmf report speedups against and (b) as the reference the kernel
/// path is asserted bit-exact against in analytics_test.
void jmf_epoch_naive(const Matrix& associations,
                     const std::vector<Matrix>& drug_similarities,
                     const std::vector<Matrix>& disease_similarities,
                     const JmfConfig& config, Matrix& u, Matrix& v,
                     JmfResult& result) {
  std::size_t n_drugs = associations.rows();
  std::size_t n_diseases = associations.cols();

  // --- update source weights from current fit errors -----------------
  std::vector<double> drug_errors(drug_similarities.size());
  for (std::size_t i = 0; i < drug_similarities.size(); ++i) {
    drug_errors[i] = similarity_fit_error(drug_similarities[i], u);
  }
  result.drug_source_weights =
      entropy_weights(drug_errors, config.weight_temperature * 0.01);

  std::vector<double> disease_errors(disease_similarities.size());
  for (std::size_t j = 0; j < disease_similarities.size(); ++j) {
    disease_errors[j] = similarity_fit_error(disease_similarities[j], v);
  }
  result.disease_source_weights =
      entropy_weights(disease_errors, config.weight_temperature * 0.01);

  // --- objective ------------------------------------------------------
  Matrix residual = associations;  // R - UV'
  residual.add_scaled(u.multiply_transposed(v), -1.0);
  double objective = std::pow(residual.frobenius_norm(), 2);
  for (std::size_t i = 0; i < drug_similarities.size(); ++i) {
    objective += config.similarity_weight * result.drug_source_weights[i] *
                 drug_errors[i] * static_cast<double>(n_drugs) *
                 static_cast<double>(n_drugs);
  }
  for (std::size_t j = 0; j < disease_similarities.size(); ++j) {
    objective += config.similarity_weight * result.disease_source_weights[j] *
                 disease_errors[j] * static_cast<double>(n_diseases) *
                 static_cast<double>(n_diseases);
  }
  objective += config.regularization *
               (std::pow(u.frobenius_norm(), 2) + std::pow(v.frobenius_norm(), 2));
  result.objective_history.push_back(objective);

  // --- gradient step on U ---------------------------------------------
  Matrix grad_u = residual.multiply(v);  // 2x folded into learning rate
  for (std::size_t i = 0; i < drug_similarities.size(); ++i) {
    grad_u.add_scaled(
        similarity_gradient(drug_similarities[i], u,
                            config.similarity_weight * result.drug_source_weights[i]),
        1.0);
  }
  grad_u.add_scaled(u, -config.regularization);
  u.add_scaled(grad_u, config.learning_rate);
  project_nonnegative(u);

  // --- gradient step on V ---------------------------------------------
  Matrix residual2 = associations;
  residual2.add_scaled(u.multiply_transposed(v), -1.0);
  Matrix grad_v = residual2.transpose().multiply(u);
  for (std::size_t j = 0; j < disease_similarities.size(); ++j) {
    grad_v.add_scaled(
        similarity_gradient(disease_similarities[j], v,
                            config.similarity_weight *
                                result.disease_source_weights[j]),
        1.0);
  }
  grad_v.add_scaled(v, -config.regularization);
  v.add_scaled(grad_v, config.learning_rate);
  project_nonnegative(v);
}

/// The kernel-layer epoch: blocked allocation-free kernels over the warm
/// workspace, row-partitioned across `config.workers`. Performs the same
/// floating-point operations in the same per-cell order as
/// jmf_epoch_naive, with two pure-reuse savings: F F^T is computed once
/// per side per epoch via syrk (the naive path recomputes it per source,
/// twice), and every temporary lives in the workspace. Output is bitwise
/// identical to the naive epoch for any worker count.
void jmf_epoch_fast(const Matrix& associations,
                    const std::vector<Matrix>& drug_similarities,
                    const std::vector<Matrix>& disease_similarities,
                    const JmfConfig& config, Matrix& u, Matrix& v,
                    JmfResult& result, JmfWorkspace& ws) {
  std::size_t n_drugs = associations.rows();
  std::size_t n_diseases = associations.cols();
  std::size_t w = config.workers;

  // --- update source weights from current fit errors -----------------
  // One syrk per side replaces one multiply_transposed per source per use
  // site; the fit-error reduction itself stays serial (bit-exact order).
  kernels::syrk_into(u, ws.uuT, w);
  std::vector<double> drug_errors(drug_similarities.size());
  for (std::size_t i = 0; i < drug_similarities.size(); ++i) {
    double d = drug_similarities[i].frobenius_distance(ws.uuT);
    double n = static_cast<double>(n_drugs);
    drug_errors[i] = (d * d) / (n * n);
  }
  result.drug_source_weights =
      entropy_weights(drug_errors, config.weight_temperature * 0.01);

  kernels::syrk_into(v, ws.vvT, w);
  std::vector<double> disease_errors(disease_similarities.size());
  for (std::size_t j = 0; j < disease_similarities.size(); ++j) {
    double d = disease_similarities[j].frobenius_distance(ws.vvT);
    double n = static_cast<double>(n_diseases);
    disease_errors[j] = (d * d) / (n * n);
  }
  result.disease_source_weights =
      entropy_weights(disease_errors, config.weight_temperature * 0.01);

  // --- objective ------------------------------------------------------
  kernels::residual_into(associations, u, v, ws.residual, w);
  double objective = std::pow(ws.residual.frobenius_norm(), 2);
  for (std::size_t i = 0; i < drug_similarities.size(); ++i) {
    objective += config.similarity_weight * result.drug_source_weights[i] *
                 drug_errors[i] * static_cast<double>(n_drugs) *
                 static_cast<double>(n_drugs);
  }
  for (std::size_t j = 0; j < disease_similarities.size(); ++j) {
    objective += config.similarity_weight * result.disease_source_weights[j] *
                 disease_errors[j] * static_cast<double>(n_diseases) *
                 static_cast<double>(n_diseases);
  }
  objective += config.regularization *
               (std::pow(u.frobenius_norm(), 2) + std::pow(v.frobenius_norm(), 2));
  result.objective_history.push_back(objective);

  // --- gradient step on U ---------------------------------------------
  kernels::multiply_into(ws.residual, v, ws.grad_u, w);
  ws.factors.resize(drug_similarities.size());
  for (std::size_t i = 0; i < drug_similarities.size(); ++i) {
    ws.factors[i] =
        4.0 * config.similarity_weight * result.drug_source_weights[i];
  }
  kernels::fused_sub_multiply_add_into(ws.grad_u, drug_similarities, ws.uuT, u,
                                       ws.factors, ws.grad_src, w);
  kernels::add_scaled_into(ws.grad_u, u, -config.regularization, w);
  kernels::add_scaled_into(u, ws.grad_u, config.learning_rate, w);
  kernels::clamp_nonnegative(u, w);

  // --- gradient step on V ---------------------------------------------
  // Fused (R - U V^T)^T U: the post-update residual exists only inside the
  // kernel; nothing n_drugs x n_diseases is written this half-epoch.
  kernels::residual_transpose_multiply_into(associations, u, v, u, ws.grad_v, w);
  ws.factors.resize(disease_similarities.size());
  for (std::size_t j = 0; j < disease_similarities.size(); ++j) {
    ws.factors[j] =
        4.0 * config.similarity_weight * result.disease_source_weights[j];
  }
  kernels::fused_sub_multiply_add_into(ws.grad_v, disease_similarities, ws.vvT, v,
                                       ws.factors, ws.grad_src, w);
  kernels::add_scaled_into(ws.grad_v, v, -config.regularization, w);
  kernels::add_scaled_into(v, ws.grad_v, config.learning_rate, w);
  kernels::clamp_nonnegative(v, w);
}

/// First-order epoch on the sparse plane. Cell for cell this performs the
/// same floating-point sequence as jmf_epoch_fast (every sparse kernel is
/// bitwise equal to the dense kernel it shadows — see sparse.h), so the
/// whole trajectory is bitwise identical to the dense fast path.
void jmf_epoch_sparse(const JmfSparseInputs& inputs, const JmfConfig& config,
                      Matrix& u, Matrix& v, JmfResult& result,
                      JmfWorkspace& ws) {
  std::size_t n_drugs = inputs.associations.rows();
  std::size_t n_diseases = inputs.associations.cols();
  std::size_t w = config.workers;

  kernels::syrk_into(u, ws.uuT, w);
  std::vector<double> drug_errors(inputs.drug_similarities.size());
  for (std::size_t i = 0; i < inputs.drug_similarities.size(); ++i) {
    double d = sparse::frobenius_distance(inputs.drug_similarities[i], ws.uuT);
    double n = static_cast<double>(n_drugs);
    drug_errors[i] = (d * d) / (n * n);
  }
  result.drug_source_weights =
      entropy_weights(drug_errors, config.weight_temperature * 0.01);

  kernels::syrk_into(v, ws.vvT, w);
  std::vector<double> disease_errors(inputs.disease_similarities.size());
  for (std::size_t j = 0; j < inputs.disease_similarities.size(); ++j) {
    double d = sparse::frobenius_distance(inputs.disease_similarities[j], ws.vvT);
    double n = static_cast<double>(n_diseases);
    disease_errors[j] = (d * d) / (n * n);
  }
  result.disease_source_weights =
      entropy_weights(disease_errors, config.weight_temperature * 0.01);

  sparse::residual_into(inputs.associations, u, v, ws.residual, w);
  double objective = std::pow(ws.residual.frobenius_norm(), 2);
  for (std::size_t i = 0; i < inputs.drug_similarities.size(); ++i) {
    objective += config.similarity_weight * result.drug_source_weights[i] *
                 drug_errors[i] * static_cast<double>(n_drugs) *
                 static_cast<double>(n_drugs);
  }
  for (std::size_t j = 0; j < inputs.disease_similarities.size(); ++j) {
    objective += config.similarity_weight * result.disease_source_weights[j] *
                 disease_errors[j] * static_cast<double>(n_diseases) *
                 static_cast<double>(n_diseases);
  }
  objective += config.regularization *
               (std::pow(u.frobenius_norm(), 2) + std::pow(v.frobenius_norm(), 2));
  result.objective_history.push_back(objective);

  kernels::multiply_into(ws.residual, v, ws.grad_u, w);
  ws.factors.resize(inputs.drug_similarities.size());
  for (std::size_t i = 0; i < inputs.drug_similarities.size(); ++i) {
    ws.factors[i] =
        4.0 * config.similarity_weight * result.drug_source_weights[i];
  }
  sparse::fused_sub_multiply_add_into(ws.grad_u, inputs.drug_similarities,
                                      ws.uuT, u, ws.factors, ws.grad_src, w);
  kernels::add_scaled_into(ws.grad_u, u, -config.regularization, w);
  kernels::add_scaled_into(u, ws.grad_u, config.learning_rate, w);
  kernels::clamp_nonnegative(u, w);

  // The dense fast path fuses this as residual_transpose_multiply_into,
  // which is documented bitwise equal to this two-kernel composition.
  sparse::residual_into(inputs.associations, u, v, ws.residual, w);
  kernels::transpose_multiply_into(ws.residual, u, ws.grad_v, w);
  ws.factors.resize(inputs.disease_similarities.size());
  for (std::size_t j = 0; j < inputs.disease_similarities.size(); ++j) {
    ws.factors[j] =
        4.0 * config.similarity_weight * result.disease_source_weights[j];
  }
  sparse::fused_sub_multiply_add_into(ws.grad_v, inputs.disease_similarities,
                                      ws.vvT, v, ws.factors, ws.grad_src, w);
  kernels::add_scaled_into(ws.grad_v, v, -config.regularization, w);
  kernels::add_scaled_into(v, ws.grad_v, config.learning_rate, w);
  kernels::clamp_nonnegative(v, w);
}

/// Precomputed squared Frobenius norms of the sparse inputs — the constant
/// terms of the Gram-identity objective.
struct JmfGramNorms {
  double r = 0.0;
  std::vector<double> drug;
  std::vector<double> disease;
};

/// Second-order epoch: one damped Gauss-Newton step per block.
///
/// Everything runs through Gram identities — with utu = U^T U, vtv = V^T V
/// (both k x k):
///   ||R - U V^T||^2   = ||R||^2 - 2 <R, U V^T> + tr(utu vtv)
///   ||D - U U^T||^2   = ||D||^2 - 2 <D, U U^T> + tr(utu^2)
/// so an epoch costs O(nnz k + (drugs + diseases) k^2) and the dense
/// drugs x drugs / drugs x diseases products of the first-order path are
/// never formed — the equal-memory catalog headroom in EXPERIMENTS.md F13.
///
/// Block derivatives (weights fixed for the epoch; sum_i alpha_i == 1):
///   g_U  = 2 (U vtv - R V) + 4 mu (U utu) - sum_i 4 mu alpha_i D_i U + 2 lambda U
///   H_U p = 2 p vtv + 4 mu (p utu + U (p^T U)) + 2 lambda p   (Gauss-Newton)
/// and symmetrically for V with R^T U off the CSC mirror.
void jmf_epoch_newton(const JmfSparseInputs& inputs, const JmfGramNorms& norms,
                      const JmfConfig& config, Matrix& u, Matrix& v,
                      JmfResult& result, JmfWorkspace& ws) {
  std::size_t w = config.workers;
  double mu = config.similarity_weight;
  double lambda = config.regularization;
  double nd = static_cast<double>(inputs.associations.rows());
  double nz = static_cast<double>(inputs.associations.cols());

  kernels::transpose_multiply_into(u, u, ws.utu, w);
  kernels::transpose_multiply_into(v, v, ws.vtv, w);

  // --- source weights from Gram-identity fit errors -------------------
  std::vector<double> drug_errors(inputs.drug_similarities.size());
  double tr_uu2 = frob_inner(ws.utu, ws.utu);
  for (std::size_t i = 0; i < inputs.drug_similarities.size(); ++i) {
    double fit = norms.drug[i] -
                 2.0 * sparse::inner_product_uv(inputs.drug_similarities[i], u, u) +
                 tr_uu2;
    drug_errors[i] = fit / (nd * nd);
  }
  result.drug_source_weights =
      entropy_weights(drug_errors, config.weight_temperature * 0.01);

  std::vector<double> disease_errors(inputs.disease_similarities.size());
  double tr_vv2 = frob_inner(ws.vtv, ws.vtv);
  for (std::size_t j = 0; j < inputs.disease_similarities.size(); ++j) {
    double fit =
        norms.disease[j] -
        2.0 * sparse::inner_product_uv(inputs.disease_similarities[j], v, v) +
        tr_vv2;
    disease_errors[j] = fit / (nz * nz);
  }
  result.disease_source_weights =
      entropy_weights(disease_errors, config.weight_temperature * 0.01);

  const std::vector<double>& alpha = result.drug_source_weights;
  const std::vector<double>& beta = result.disease_source_weights;

  // --- objective at (U, V) --------------------------------------------
  double objective = norms.r -
                     2.0 * sparse::inner_product_uv(inputs.associations, u, v) +
                     frob_inner(ws.utu, ws.vtv);
  for (std::size_t i = 0; i < drug_errors.size(); ++i) {
    objective += mu * alpha[i] * drug_errors[i] * nd * nd;
  }
  for (std::size_t j = 0; j < disease_errors.size(); ++j) {
    objective += mu * beta[j] * disease_errors[j] * nz * nz;
  }
  objective += lambda * (std::pow(u.frobenius_norm(), 2) +
                         std::pow(v.frobenius_norm(), 2));
  result.objective_history.push_back(objective);

  solver::NewtonConfig ncfg;
  ncfg.cg.max_iterations = config.cg_iterations;
  ncfg.cg.tolerance = config.cg_tolerance;
  ncfg.project_nonnegative = true;

  // --- U block ---------------------------------------------------------
  // A short run of damped Newton steps with V frozen. R V is hoisted —
  // only U moves inside the block — while U^T U is refreshed per step.
  sparse::multiply_into(inputs.associations, v, ws.rv, w);  // R V
  auto apply_u = [&](const Matrix& p, Matrix& out, std::size_t wk) {
    kernels::multiply_into(p, ws.vtv, out, wk);
    out.scale(2.0);
    kernels::multiply_into(p, ws.utu, ws.h_tmp, wk);
    kernels::add_scaled_into(out, ws.h_tmp, 4.0 * mu, wk);
    kernels::transpose_multiply_into(p, u, ws.h_ptu, wk);
    kernels::multiply_into(u, ws.h_ptu, ws.h_tmp, wk);
    kernels::add_scaled_into(out, ws.h_tmp, 4.0 * mu, wk);
    kernels::add_scaled_into(out, p, 2.0 * lambda, wk);
  };
  // Full objective as a function of U (V and the weights fixed; the
  // disease-side fit terms are epoch-start constants).
  double disease_const = 0.0;
  for (std::size_t j = 0; j < disease_errors.size(); ++j) {
    disease_const += mu * beta[j] * disease_errors[j] * nz * nz;
  }
  double v_reg = lambda * std::pow(v.frobenius_norm(), 2);
  auto objective_u = [&](const Matrix& trial) {
    kernels::transpose_multiply_into(trial, trial, ws.obj_gram, w);
    double o = norms.r -
               2.0 * sparse::inner_product_uv(inputs.associations, trial, v) +
               frob_inner(ws.obj_gram, ws.vtv);
    double tr2 = frob_inner(ws.obj_gram, ws.obj_gram);
    for (std::size_t i = 0; i < drug_errors.size(); ++i) {
      o += mu * alpha[i] *
           (norms.drug[i] -
            2.0 * sparse::inner_product_uv(inputs.drug_similarities[i], trial,
                                           trial) +
            tr2);
    }
    o += disease_const + v_reg +
         lambda * std::pow(trial.frobenius_norm(), 2);
    return o;
  };
  double fx = objective;
  for (std::size_t it = 0; it < config.newton_inner_steps; ++it) {
    if (it > 0) kernels::transpose_multiply_into(u, u, ws.utu, w);
    kernels::multiply_into(u, ws.vtv, ws.grad_n, w);
    ws.grad_n.scale(2.0);
    kernels::add_scaled_into(ws.grad_n, ws.rv, -2.0, w);
    kernels::multiply_into(u, ws.utu, ws.h_tmp, w);
    kernels::add_scaled_into(ws.grad_n, ws.h_tmp, 4.0 * mu, w);
    for (std::size_t i = 0; i < inputs.drug_similarities.size(); ++i) {
      sparse::multiply_into(inputs.drug_similarities[i], u, ws.sim_mul, w);
      kernels::add_scaled_into(ws.grad_n, ws.sim_mul, -4.0 * mu * alpha[i], w);
    }
    kernels::add_scaled_into(ws.grad_n, u, 2.0 * lambda, w);
    auto step = solver::newton_step(apply_u, ws.grad_n, u, objective_u, fx,
                                    ncfg, ws.newton_u, w);
    fx = step.objective;
    if (step.step == 0.0) break;
  }

  // --- V block ---------------------------------------------------------
  kernels::transpose_multiply_into(u, u, ws.utu, w);  // U moved: refresh
  double tr_uu2_new = frob_inner(ws.utu, ws.utu);
  double drug_const = 0.0;
  for (std::size_t i = 0; i < drug_errors.size(); ++i) {
    drug_const +=
        mu * alpha[i] *
        (norms.drug[i] -
         2.0 * sparse::inner_product_uv(inputs.drug_similarities[i], u, u) +
         tr_uu2_new);
  }
  double u_reg = lambda * std::pow(u.frobenius_norm(), 2);

  sparse::transpose_multiply_into(inputs.associations_csc, u, ws.rv, w);  // R^T U
  auto apply_v = [&](const Matrix& p, Matrix& out, std::size_t wk) {
    kernels::multiply_into(p, ws.utu, out, wk);
    out.scale(2.0);
    kernels::multiply_into(p, ws.vtv, ws.h_tmp, wk);
    kernels::add_scaled_into(out, ws.h_tmp, 4.0 * mu, wk);
    kernels::transpose_multiply_into(p, v, ws.h_ptu, wk);
    kernels::multiply_into(v, ws.h_ptu, ws.h_tmp, wk);
    kernels::add_scaled_into(out, ws.h_tmp, 4.0 * mu, wk);
    kernels::add_scaled_into(out, p, 2.0 * lambda, wk);
  };
  auto objective_v = [&](const Matrix& trial) {
    kernels::transpose_multiply_into(trial, trial, ws.obj_gram, w);
    double o = norms.r -
               2.0 * sparse::inner_product_uv(inputs.associations, u, trial) +
               frob_inner(ws.utu, ws.obj_gram);
    double tr2 = frob_inner(ws.obj_gram, ws.obj_gram);
    for (std::size_t j = 0; j < disease_errors.size(); ++j) {
      o += mu * beta[j] *
           (norms.disease[j] -
            2.0 * sparse::inner_product_uv(inputs.disease_similarities[j],
                                           trial, trial) +
            tr2);
    }
    o += drug_const + u_reg + lambda * std::pow(trial.frobenius_norm(), 2);
    return o;
  };
  // fx carried over from the U block is the full objective at (U_new, V)
  // — phi(0) for the first V step.
  for (std::size_t it = 0; it < config.newton_inner_steps; ++it) {
    if (it > 0) kernels::transpose_multiply_into(v, v, ws.vtv, w);
    kernels::multiply_into(v, ws.utu, ws.grad_n, w);
    ws.grad_n.scale(2.0);
    kernels::add_scaled_into(ws.grad_n, ws.rv, -2.0, w);
    kernels::multiply_into(v, ws.vtv, ws.h_tmp, w);
    kernels::add_scaled_into(ws.grad_n, ws.h_tmp, 4.0 * mu, w);
    for (std::size_t j = 0; j < inputs.disease_similarities.size(); ++j) {
      sparse::multiply_into(inputs.disease_similarities[j], v, ws.sim_mul, w);
      kernels::add_scaled_into(ws.grad_n, ws.sim_mul, -4.0 * mu * beta[j], w);
    }
    kernels::add_scaled_into(ws.grad_n, v, 2.0 * lambda, w);
    auto step = solver::newton_step(apply_v, ws.grad_n, v, objective_v, fx,
                                    ncfg, ws.newton_v, w);
    fx = step.objective;
    if (step.step == 0.0) break;
  }
}

}  // namespace

std::size_t JmfSparseInputs::bytes() const {
  std::size_t total = associations.bytes() + associations_csc.bytes();
  for (const auto& d : drug_similarities) total += d.bytes();
  for (const auto& s : disease_similarities) total += s.bytes();
  return total;
}

JmfSparseInputs make_jmf_sparse_inputs(
    const Matrix& associations, const std::vector<Matrix>& drug_similarities,
    const std::vector<Matrix>& disease_similarities) {
  JmfSparseInputs inputs;
  inputs.associations = sparse::CsrMatrix::from_dense(associations);
  inputs.associations_csc = sparse::CscMatrix::from_csr(inputs.associations);
  inputs.drug_similarities.reserve(drug_similarities.size());
  for (const auto& d : drug_similarities) {
    inputs.drug_similarities.push_back(sparse::CsrMatrix::from_dense(d));
  }
  inputs.disease_similarities.reserve(disease_similarities.size());
  for (const auto& s : disease_similarities) {
    inputs.disease_similarities.push_back(sparse::CsrMatrix::from_dense(s));
  }
  return inputs;
}

namespace {

void jmf_notify_epoch(const JmfConfig& config, int epoch, const Matrix& u,
                      const Matrix& v, const JmfResult& result) {
  if (!config.epoch_hook) return;
  config.epoch_hook(JmfEpochView{epoch, u, v, result.drug_source_weights,
                                 result.disease_source_weights,
                                 result.objective_history});
}

/// Shared init for both entries: fresh runs draw the factors from `rng`
/// (the historical consumption order); resumed runs restore the
/// checkpointed state verbatim and draw nothing, so the replayed epochs
/// land bit-identical to an uninterrupted run.
void jmf_init_state(const JmfConfig& config, std::size_t n_drugs,
                    std::size_t n_diseases, std::size_t n_drug_sources,
                    std::size_t n_disease_sources, Rng& rng, Matrix& u,
                    Matrix& v, JmfResult& result) {
  if (config.resume == nullptr) {
    u = Matrix::random(n_drugs, config.rank, rng, 0.0, 0.1);
    v = Matrix::random(n_diseases, config.rank, rng, 0.0, 0.1);
    result.drug_source_weights.assign(n_drug_sources,
                                      1.0 / static_cast<double>(n_drug_sources));
    result.disease_source_weights.assign(
        n_disease_sources, 1.0 / static_cast<double>(n_disease_sources));
    return;
  }
  const JmfResume& r = *config.resume;
  if (r.u.rows() != n_drugs || r.u.cols() != config.rank ||
      r.v.rows() != n_diseases || r.v.cols() != config.rank ||
      r.drug_source_weights.size() != n_drug_sources ||
      r.disease_source_weights.size() != n_disease_sources) {
    throw std::invalid_argument("JMF resume state shape mismatch");
  }
  u = r.u;
  v = r.v;
  result.drug_source_weights = r.drug_source_weights;
  result.disease_source_weights = r.disease_source_weights;
  result.objective_history = r.objective_history;
}

}  // namespace

JmfResult joint_matrix_factorization(const JmfSparseInputs& inputs,
                                     const JmfConfig& config, Rng& rng,
                                     JmfWorkspace* workspace) {
  if (inputs.drug_similarities.empty() || inputs.disease_similarities.empty()) {
    throw std::invalid_argument("JMF needs at least one similarity source per side");
  }
  std::size_t n_drugs = inputs.associations.rows();
  std::size_t n_diseases = inputs.associations.cols();
  for (const auto& d : inputs.drug_similarities) {
    if (d.rows() != n_drugs || d.cols() != n_drugs) {
      throw std::invalid_argument("drug similarity matrix shape mismatch");
    }
  }
  for (const auto& s : inputs.disease_similarities) {
    if (s.rows() != n_diseases || s.cols() != n_diseases) {
      throw std::invalid_argument("disease similarity matrix shape mismatch");
    }
  }

  // Same rng consumption order as the dense entry — identical seeds give
  // identical initial factors, the anchor of the sparse-vs-dense bitwise
  // tests.
  Matrix u, v;
  JmfResult result;
  jmf_init_state(config, n_drugs, n_diseases, inputs.drug_similarities.size(),
                 inputs.disease_similarities.size(), rng, u, v, result);
  const int first_epoch = config.resume ? config.resume->next_epoch : 0;

  JmfWorkspace local_workspace;
  JmfWorkspace& ws = workspace ? *workspace : local_workspace;
  if (config.use_newton_cg) {
    JmfGramNorms norms;
    norms.r = inputs.associations.norm_squared();
    norms.drug.reserve(inputs.drug_similarities.size());
    for (const auto& d : inputs.drug_similarities) {
      norms.drug.push_back(d.norm_squared());
    }
    norms.disease.reserve(inputs.disease_similarities.size());
    for (const auto& s : inputs.disease_similarities) {
      norms.disease.push_back(s.norm_squared());
    }
    for (int epoch = first_epoch; epoch < config.epochs; ++epoch) {
      jmf_epoch_newton(inputs, norms, config, u, v, result, ws);
      jmf_notify_epoch(config, epoch, u, v, result);
    }
  } else {
    for (int epoch = first_epoch; epoch < config.epochs; ++epoch) {
      jmf_epoch_sparse(inputs, config, u, v, result, ws);
      jmf_notify_epoch(config, epoch, u, v, result);
    }
  }

  if (config.materialize_scores) {
    kernels::multiply_transposed_into(u, v, result.scores, config.workers);
  }
  result.drug_groups = group_assignments(u);
  result.disease_groups = group_assignments(v);
  result.peak_workspace_bytes =
      jmf_workspace_bytes(ws) + u.allocated_bytes() + v.allocated_bytes();
  result.factor_u = std::move(u);
  result.factor_v = std::move(v);
  return result;
}

JmfResult joint_matrix_factorization(const Matrix& associations,
                                     const std::vector<Matrix>& drug_similarities,
                                     const std::vector<Matrix>& disease_similarities,
                                     const JmfConfig& config, Rng& rng,
                                     JmfWorkspace* workspace) {
  if (drug_similarities.empty() || disease_similarities.empty()) {
    throw std::invalid_argument("JMF needs at least one similarity source per side");
  }
  if (config.use_sparse || config.use_newton_cg) {
    JmfSparseInputs inputs = make_jmf_sparse_inputs(
        associations, drug_similarities, disease_similarities);
    return joint_matrix_factorization(inputs, config, rng, workspace);
  }
  std::size_t n_drugs = associations.rows();
  std::size_t n_diseases = associations.cols();
  for (const auto& d : drug_similarities) {
    if (d.rows() != n_drugs || d.cols() != n_drugs) {
      throw std::invalid_argument("drug similarity matrix shape mismatch");
    }
  }
  for (const auto& s : disease_similarities) {
    if (s.rows() != n_diseases || s.cols() != n_diseases) {
      throw std::invalid_argument("disease similarity matrix shape mismatch");
    }
  }

  Matrix u, v;
  JmfResult result;
  jmf_init_state(config, n_drugs, n_diseases, drug_similarities.size(),
                 disease_similarities.size(), rng, u, v, result);
  const int first_epoch = config.resume ? config.resume->next_epoch : 0;

  JmfWorkspace local_workspace;
  JmfWorkspace& ws = workspace ? *workspace : local_workspace;
  for (int epoch = first_epoch; epoch < config.epochs; ++epoch) {
    if (config.use_fast_kernels) {
      jmf_epoch_fast(associations, drug_similarities, disease_similarities, config,
                     u, v, result, ws);
    } else {
      jmf_epoch_naive(associations, drug_similarities, disease_similarities, config,
                      u, v, result);
    }
    jmf_notify_epoch(config, epoch, u, v, result);
  }

  if (config.materialize_scores) {
    if (config.use_fast_kernels) {
      kernels::multiply_transposed_into(u, v, result.scores, config.workers);
    } else {
      result.scores = u.multiply_transposed(v);
    }
  }
  result.drug_groups = group_assignments(u);
  result.disease_groups = group_assignments(v);
  result.peak_workspace_bytes =
      jmf_workspace_bytes(ws) + u.allocated_bytes() + v.allocated_bytes();
  result.factor_u = std::move(u);
  result.factor_v = std::move(v);
  return result;
}

DrugDiseaseWorkload make_drug_disease_workload(const WorkloadConfig& config, Rng& rng) {
  DrugDiseaseWorkload workload;
  workload.drug_source_noise = config.drug_source_noise;
  workload.disease_source_noise = config.disease_source_noise;

  // Latent factors with block structure (groups of drugs/diseases).
  Matrix drug_latent(config.drugs, config.latent_rank);
  for (std::size_t i = 0; i < config.drugs; ++i) {
    std::size_t group = i % config.latent_rank;
    for (std::size_t k = 0; k < config.latent_rank; ++k) {
      drug_latent(i, k) = (k == group ? 0.9 : 0.05) + rng.uniform(0.0, 0.1);
    }
  }
  Matrix disease_latent(config.diseases, config.latent_rank);
  for (std::size_t j = 0; j < config.diseases; ++j) {
    std::size_t group = j % config.latent_rank;
    for (std::size_t k = 0; k < config.latent_rank; ++k) {
      disease_latent(j, k) = (k == group ? 0.9 : 0.05) + rng.uniform(0.0, 0.1);
    }
  }

  // Ground-truth associations: high latent affinity -> association, with the
  // threshold picked to hit the requested density approximately.
  Matrix affinity = drug_latent.multiply_transposed(disease_latent);
  std::vector<double> values;
  values.reserve(config.drugs * config.diseases);
  for (std::size_t i = 0; i < config.drugs; ++i) {
    for (std::size_t j = 0; j < config.diseases; ++j) values.push_back(affinity(i, j));
  }
  std::vector<double> sorted = values;
  std::sort(sorted.rbegin(), sorted.rend());
  std::size_t target = static_cast<std::size_t>(
      config.association_density * static_cast<double>(values.size()));
  double threshold = sorted[std::min(target, sorted.size() - 1)];

  workload.truth = Matrix(config.drugs, config.diseases);
  for (std::size_t i = 0; i < config.drugs; ++i) {
    for (std::size_t j = 0; j < config.diseases; ++j) {
      workload.truth(i, j) = affinity(i, j) >= threshold ? 1.0 : 0.0;
    }
  }

  // Hold out a fraction of positives for evaluation.
  workload.observed = workload.truth;
  std::vector<std::pair<std::size_t, std::size_t>> positives;
  for (std::size_t i = 0; i < config.drugs; ++i) {
    for (std::size_t j = 0; j < config.diseases; ++j) {
      if (workload.truth(i, j) == 1.0) positives.emplace_back(i, j);
    }
  }
  rng.shuffle(positives);
  std::size_t held = static_cast<std::size_t>(config.held_out_fraction *
                                              static_cast<double>(positives.size()));
  for (std::size_t h = 0; h < held; ++h) {
    workload.held_out.push_back(positives[h]);
    workload.observed(positives[h].first, positives[h].second) = 0.0;
  }

  // Similarity sources: noisy views of the latent similarity, noisier per
  // source. Clamped to [0,1], symmetrized, unit diagonal.
  auto make_noisy_similarity = [&rng](const Matrix& latent, double noise) {
    Matrix base = latent.multiply_transposed(latent);
    // Normalize to [0,1] by the max.
    double max_value = 0.0;
    for (std::size_t i = 0; i < base.rows(); ++i) {
      for (std::size_t j = 0; j < base.cols(); ++j) {
        max_value = std::max(max_value, base(i, j));
      }
    }
    Matrix sim(base.rows(), base.cols());
    for (std::size_t i = 0; i < base.rows(); ++i) {
      for (std::size_t j = i; j < base.cols(); ++j) {
        double v = base(i, j) / max_value + rng.normal(0.0, noise);
        v = std::clamp(v, 0.0, 1.0);
        sim(i, j) = v;
        sim(j, i) = v;
      }
      sim(i, i) = 1.0;
    }
    return sim;
  };

  for (double noise : config.drug_source_noise) {
    workload.drug_similarities.push_back(make_noisy_similarity(drug_latent, noise));
  }
  for (double noise : config.disease_source_noise) {
    workload.disease_similarities.push_back(
        make_noisy_similarity(disease_latent, noise));
  }
  return workload;
}

double evaluate_held_out_auc(const Matrix& scores, const DrugDiseaseWorkload& workload,
                             Rng& rng) {
  if (workload.held_out.empty()) {
    throw std::invalid_argument("workload has no held-out positives");
  }
  std::vector<double> score_list;
  std::vector<bool> labels;
  for (const auto& [i, j] : workload.held_out) {
    score_list.push_back(scores(i, j));
    labels.push_back(true);
  }
  // Equal number of sampled true negatives.
  std::size_t need = workload.held_out.size();
  std::size_t guard = 0;
  while (need > 0 && guard < 100000) {
    ++guard;
    auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(workload.truth.rows()) - 1));
    auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(workload.truth.cols()) - 1));
    if (workload.truth(i, j) == 0.0) {
      score_list.push_back(scores(i, j));
      labels.push_back(false);
      --need;
    }
  }
  return auc_roc(score_list, labels);
}

}  // namespace hc::analytics
