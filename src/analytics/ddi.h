// Drug-drug interaction prediction, Tiresias-style (Section V.A, [40]).
//
// "Entities of interest for drug-drug interaction prediction are pairs of
// drugs instead of single drugs. Tiresias computes similarities on pairs of
// drugs by combining similarity metrics on individual drugs." For a
// candidate pair (a,b) and each similarity source S, the calibrated
// feature is the best match against the known interacting pairs:
//
//   f_S(a,b) = max over known DDI (k,l) of
//              max( min(S(a,k), S(b,l)), min(S(a,l), S(b,k)) )
//
// A logistic-regression head over these features yields the interaction
// probability. Train/evaluate on synthetic drugs whose ground-truth rule is
// "groups X and Y interact".
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "analytics/matrix.h"
#include "common/rng.h"

namespace hc::analytics {

using DrugPair = std::pair<std::size_t, std::size_t>;

struct DdiConfig {
  int epochs = 300;
  double learning_rate = 0.5;
  double regularization = 1e-4;
  /// Worker threads for per-example feature extraction (the O(pairs *
  /// known-positives * sources) cost that dominates training). Each example
  /// writes its own preallocated slot, so features — and the serial
  /// gradient loop consuming them — are bit-identical for any worker count.
  std::size_t workers = 1;
};

class DdiPredictor {
 public:
  /// `similarities`: one square drug-similarity matrix per source.
  explicit DdiPredictor(std::vector<Matrix> similarities);

  /// Trains the logistic head on labeled pairs.
  void train(const std::vector<DrugPair>& positive_pairs,
             const std::vector<DrugPair>& negative_pairs, const DdiConfig& config);

  /// Interaction probability for a candidate pair.
  double predict(const DrugPair& pair) const;

  /// Pair features against the current known-positive set (exposed for
  /// tests and for the bench's feature ablation).
  std::vector<double> pair_features(const DrugPair& pair) const;

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<Matrix> similarities_;
  std::vector<DrugPair> known_positives_;
  std::vector<double> weights_;  // one per source + bias at the back
};

/// Synthetic DDI benchmark: drugs in latent groups; pairs from designated
/// interacting group pairs are true DDIs.
struct DdiWorkload {
  std::vector<Matrix> similarities;
  std::vector<DrugPair> train_positives;
  std::vector<DrugPair> train_negatives;
  std::vector<DrugPair> test_pairs;
  std::vector<bool> test_labels;
};

DdiWorkload make_ddi_workload(std::size_t drugs, std::size_t groups, Rng& rng);

}  // namespace hc::analytics
