// Analytics model lifecycle management (Section III.A).
//
// "The Analytics platform supports various lifecycle stages of analytics
// models, namely i) data cleaning, ii) initial model generation iii) model
// testing iv) model deployment and v) model update."
//
// ModelRegistry stores versioned model artifacts and enforces the legal
// stage machine:
//
//   DataCleaning -> Generation -> Testing -> Deployed
//                        ^            |
//                        +--- update--+   (new version restarts at Generation)
//
// Deployment is gated: a version must be explicitly approved (the
// compliance sign-off) before Testing -> Deployed is allowed, matching the
// platform's change-management posture. Only approved+deployed models are
// eligible for push to enhanced clients (Section II.C).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/log.h"
#include "common/status.h"

namespace hc::analytics {

enum class ModelStage { kDataCleaning, kGeneration, kTesting, kDeployed, kRetired };

std::string_view model_stage_name(ModelStage stage);

struct ModelVersion {
  std::string name;
  std::uint32_t version = 1;
  Bytes artifact;
  ModelStage stage = ModelStage::kDataCleaning;
  bool approved = false;
  std::string approver;
  std::map<std::string, double> metrics;  // recorded during Testing
};

class ModelRegistry {
 public:
  explicit ModelRegistry(LogPtr log = nullptr);

  /// Registers version 1 of a model at the DataCleaning stage.
  Result<std::uint32_t> create(const std::string& name, Bytes artifact);

  /// Starts a new version (model update path); it restarts at Generation
  /// with the new artifact. kNotFound if the model was never created.
  Result<std::uint32_t> update(const std::string& name, Bytes artifact);

  /// Advances a version along the stage machine. Illegal jumps are
  /// kFailedPrecondition; Testing -> Deployed additionally requires prior
  /// approval. Deploying a version retires any previously deployed one.
  Status advance(const std::string& name, std::uint32_t version, ModelStage to);

  /// Records an evaluation metric (only meaningful during Testing).
  Status record_metric(const std::string& name, std::uint32_t version,
                       const std::string& metric, double value);

  /// Compliance sign-off required before deployment.
  Status approve(const std::string& name, std::uint32_t version,
                 const std::string& approver);

  Result<ModelVersion> get(const std::string& name, std::uint32_t version) const;

  /// The currently deployed version of a model, if any.
  Result<ModelVersion> deployed(const std::string& name) const;

  std::uint32_t latest_version(const std::string& name) const;

 private:
  ModelVersion* find(const std::string& name, std::uint32_t version);
  const ModelVersion* find(const std::string& name, std::uint32_t version) const;

  LogPtr log_;
  std::map<std::string, std::vector<ModelVersion>> models_;
};

}  // namespace hc::analytics
