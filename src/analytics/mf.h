// Matrix factorization and the Guilt-by-Association baseline (Section V.A).
//
// "We have used collaborative filtering techniques such as matrix
// factorization [39] for inferring drug and disease similarities." Plain MF
// is also the single-source baseline the JMF experiments compare against,
// alongside the GBA approach [33] the paper cites as prior art.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analytics/matrix.h"
#include "analytics/solver/newton.h"
#include "analytics/sparse.h"
#include "common/rng.h"

namespace hc::analytics {

/// Epoch-boundary snapshot handed to MfConfig::epoch_hook. References are
/// valid only during the call (copy to checkpoint).
struct MfEpochView {
  int epoch = 0;  // 0-based index of the epoch that just completed
  const Matrix& u;
  const Matrix& v;
  const std::vector<double>& objective_history;
};

/// May throw to abort the fit exactly at an epoch boundary (crash harness).
using MfEpochHook = std::function<void(const MfEpochView&)>;

/// Checkpointed solver state; resuming replays the remaining epochs to the
/// byte-identical final model (the factor-init rng draws are skipped).
struct MfResume {
  int next_epoch = 0;
  Matrix u, v;
  std::vector<double> objective_history;
};

struct MfConfig {
  std::size_t rank = 10;
  double learning_rate = 0.05;
  double regularization = 0.02;
  int epochs = 200;
  /// Worker threads for the epoch-loop kernels. Results are bit-identical
  /// for any worker count (see kernels.h rule 2).
  std::size_t workers = 1;
  /// Sparse compute plane: the observed/mask pair is consumed as one CSR
  /// (pattern = mask, values = observed) and the epoch loop touches only
  /// stored cells — O(nnz rank) per epoch and nothing rows x cols in the
  /// workspace. Bitwise identical to the dense path: the dense kernels
  /// skip unobserved (zero-residual) cells anyway.
  bool use_sparse = false;
  /// Second-order path: per epoch one projected Gauss-Newton step per
  /// factor with a truncated-CG inner solve over the masked Gram operator.
  /// Implies the sparse plane; byte-reproducible across worker counts, not
  /// bitwise against gradient descent (different algorithm). Fills
  /// MfModel::objective_history.
  bool use_newton_cg = false;
  std::size_t cg_iterations = 25;
  double cg_tolerance = 1e-2;
  /// Epoch-boundary callback (checkpointing, crash injection). Null = off.
  MfEpochHook epoch_hook;
  /// Resume from a checkpointed state (see MfResume). Must outlive the call.
  const MfResume* resume = nullptr;
};

struct MfModel {
  Matrix u;  // rows x rank
  Matrix v;  // cols x rank
  /// Masked SSE + regularization per epoch — filled by the use_newton_cg
  /// path (the first-order paths never evaluate the objective).
  std::vector<double> objective_history;
  /// Resident bytes of workspace + factors at the end of the solve
  /// (workspaces never shrink, so end == peak).
  std::size_t peak_workspace_bytes = 0;

  double predict(std::size_t row, std::size_t col) const;
  /// Full completed matrix U V^T.
  Matrix scores() const { return u.multiply_transposed(v); }
};

/// Reusable buffers for factorize(); pass the same instance across calls to
/// keep epoch loops allocation-free after warm-up.
struct MfWorkspace {
  Matrix residual;
  Matrix grad_u;
  Matrix grad_v;
  // Sparse-plane scratch: the residual over the observed pattern and its
  // CSC mirror (structure built once per solve, values refilled per epoch).
  sparse::CsrMatrix residual_sparse;
  sparse::CscMatrix residual_csc;
  solver::NewtonWorkspace newton_u, newton_v;
};

/// Factorizes `observed` over cells where mask(r,c) != 0 using full-batch
/// gradient descent with non-negativity projection. Throws on shape
/// mismatch.
MfModel factorize(const Matrix& observed, const Matrix& mask, const MfConfig& config,
                  Rng& rng, MfWorkspace* workspace = nullptr);

/// Sparse-plane entry: `observed` is the masked pairing built by
/// sparse::CsrMatrix::from_dense_masked (pattern = observed cells, stored
/// values may be 0.0). The dense entry converts and delegates here when
/// config.use_sparse or config.use_newton_cg is set.
MfModel factorize(const sparse::CsrMatrix& observed, const MfConfig& config,
                  Rng& rng, MfWorkspace* workspace = nullptr);

/// Guilt by Association [33]: score(i, j) = sum_k sim(i, k) * R(k, j)
/// normalized by total similarity — a drug inherits the diseases of the
/// drugs it resembles.
Matrix guilt_by_association(const Matrix& associations, const Matrix& entity_similarity);

}  // namespace hc::analytics
