// Matrix factorization and the Guilt-by-Association baseline (Section V.A).
//
// "We have used collaborative filtering techniques such as matrix
// factorization [39] for inferring drug and disease similarities." Plain MF
// is also the single-source baseline the JMF experiments compare against,
// alongside the GBA approach [33] the paper cites as prior art.
#pragma once

#include <cstdint>
#include <vector>

#include "analytics/matrix.h"
#include "common/rng.h"

namespace hc::analytics {

struct MfConfig {
  std::size_t rank = 10;
  double learning_rate = 0.05;
  double regularization = 0.02;
  int epochs = 200;
  /// Worker threads for the epoch-loop kernels. Results are bit-identical
  /// for any worker count (see kernels.h rule 2).
  std::size_t workers = 1;
};

struct MfModel {
  Matrix u;  // rows x rank
  Matrix v;  // cols x rank

  double predict(std::size_t row, std::size_t col) const;
  /// Full completed matrix U V^T.
  Matrix scores() const { return u.multiply_transposed(v); }
};

/// Reusable buffers for factorize(); pass the same instance across calls to
/// keep epoch loops allocation-free after warm-up.
struct MfWorkspace {
  Matrix residual;
  Matrix grad_u;
  Matrix grad_v;
};

/// Factorizes `observed` over cells where mask(r,c) != 0 using full-batch
/// gradient descent with non-negativity projection. Throws on shape
/// mismatch.
MfModel factorize(const Matrix& observed, const Matrix& mask, const MfConfig& config,
                  Rng& rng, MfWorkspace* workspace = nullptr);

/// Guilt by Association [33]: score(i, j) = sum_k sim(i, k) * R(k, j)
/// normalized by total similarity — a drug inherits the diseases of the
/// drugs it resembles.
Matrix guilt_by_association(const Matrix& associations, const Matrix& entity_similarity);

}  // namespace hc::analytics
