#include "analytics/lifecycle.h"

namespace hc::analytics {

std::string_view model_stage_name(ModelStage stage) {
  switch (stage) {
    case ModelStage::kDataCleaning: return "data-cleaning";
    case ModelStage::kGeneration: return "generation";
    case ModelStage::kTesting: return "testing";
    case ModelStage::kDeployed: return "deployed";
    case ModelStage::kRetired: return "retired";
  }
  return "unknown";
}

namespace {

bool legal_transition(ModelStage from, ModelStage to) {
  switch (from) {
    case ModelStage::kDataCleaning: return to == ModelStage::kGeneration;
    case ModelStage::kGeneration: return to == ModelStage::kTesting;
    case ModelStage::kTesting:
      return to == ModelStage::kDeployed || to == ModelStage::kGeneration;
    case ModelStage::kDeployed: return to == ModelStage::kRetired;
    case ModelStage::kRetired: return false;
  }
  return false;
}

}  // namespace

ModelRegistry::ModelRegistry(LogPtr log) : log_(std::move(log)) {}

Result<std::uint32_t> ModelRegistry::create(const std::string& name, Bytes artifact) {
  if (models_.contains(name)) {
    return Status(StatusCode::kAlreadyExists,
                  "model exists, use update(): " + name);
  }
  ModelVersion v;
  v.name = name;
  v.version = 1;
  v.artifact = std::move(artifact);
  models_[name].push_back(std::move(v));
  if (log_) log_->audit("model-registry", "model_created", name + " v1");
  return 1u;
}

Result<std::uint32_t> ModelRegistry::update(const std::string& name, Bytes artifact) {
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status(StatusCode::kNotFound, "no model named " + name);
  }
  ModelVersion v;
  v.name = name;
  v.version = static_cast<std::uint32_t>(it->second.size()) + 1;
  v.artifact = std::move(artifact);
  v.stage = ModelStage::kGeneration;  // update path: cleaning already done
  it->second.push_back(std::move(v));
  std::uint32_t version = it->second.back().version;
  if (log_) {
    log_->audit("model-registry", "model_updated",
                name + " v" + std::to_string(version));
  }
  return version;
}

ModelVersion* ModelRegistry::find(const std::string& name, std::uint32_t version) {
  auto it = models_.find(name);
  if (it == models_.end() || version == 0 || version > it->second.size()) return nullptr;
  return &it->second[version - 1];
}

const ModelVersion* ModelRegistry::find(const std::string& name,
                                        std::uint32_t version) const {
  auto it = models_.find(name);
  if (it == models_.end() || version == 0 || version > it->second.size()) return nullptr;
  return &it->second[version - 1];
}

Status ModelRegistry::advance(const std::string& name, std::uint32_t version,
                              ModelStage to) {
  ModelVersion* model = find(name, version);
  if (!model) return Status(StatusCode::kNotFound, "no such model version");
  if (!legal_transition(model->stage, to)) {
    return Status(StatusCode::kFailedPrecondition,
                  std::string("illegal stage transition ") +
                      std::string(model_stage_name(model->stage)) + " -> " +
                      std::string(model_stage_name(to)));
  }
  if (to == ModelStage::kDeployed && !model->approved) {
    return Status(StatusCode::kPermissionDenied,
                  "deployment requires compliance approval");
  }
  if (to == ModelStage::kDeployed) {
    // Retire any previously deployed version of this model.
    for (auto& other : models_[name]) {
      if (other.version != version && other.stage == ModelStage::kDeployed) {
        other.stage = ModelStage::kRetired;
      }
    }
  }
  model->stage = to;
  if (log_) {
    log_->audit("model-registry", "stage_advanced",
                name + " v" + std::to_string(version) + " -> " +
                    std::string(model_stage_name(to)));
  }
  return Status::ok();
}

Status ModelRegistry::record_metric(const std::string& name, std::uint32_t version,
                                    const std::string& metric, double value) {
  ModelVersion* model = find(name, version);
  if (!model) return Status(StatusCode::kNotFound, "no such model version");
  if (model->stage != ModelStage::kTesting) {
    return Status(StatusCode::kFailedPrecondition,
                  "metrics are recorded during testing");
  }
  model->metrics[metric] = value;
  return Status::ok();
}

Status ModelRegistry::approve(const std::string& name, std::uint32_t version,
                              const std::string& approver) {
  ModelVersion* model = find(name, version);
  if (!model) return Status(StatusCode::kNotFound, "no such model version");
  if (model->stage != ModelStage::kTesting) {
    return Status(StatusCode::kFailedPrecondition,
                  "approval happens at the testing stage");
  }
  model->approved = true;
  model->approver = approver;
  if (log_) {
    log_->audit("model-registry", "model_approved",
                name + " v" + std::to_string(version) + " by " + approver);
  }
  return Status::ok();
}

Result<ModelVersion> ModelRegistry::get(const std::string& name,
                                        std::uint32_t version) const {
  const ModelVersion* model = find(name, version);
  if (!model) return Status(StatusCode::kNotFound, "no such model version");
  return *model;
}

Result<ModelVersion> ModelRegistry::deployed(const std::string& name) const {
  auto it = models_.find(name);
  if (it == models_.end()) return Status(StatusCode::kNotFound, "no model named " + name);
  for (const auto& version : it->second) {
    if (version.stage == ModelStage::kDeployed) return version;
  }
  return Status(StatusCode::kNotFound, "no deployed version of " + name);
}

std::uint32_t ModelRegistry::latest_version(const std::string& name) const {
  auto it = models_.find(name);
  return it == models_.end() ? 0 : static_cast<std::uint32_t>(it->second.size());
}

}  // namespace hc::analytics
