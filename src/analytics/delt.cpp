#include "analytics/delt.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "analytics/metrics.h"
#include "exec/executor.h"

namespace {

/// Patients per parallel task in the (alpha, gamma) pass. Fixed so the work
/// decomposition is worker-count invariant; sized so a task amortizes
/// dispatch over a few thousand measurement rows.
constexpr std::size_t kPatientGrain = 64;

}  // namespace

namespace hc::analytics {

DeltModel fit_delt(const EmrDataset& dataset, const DeltConfig& config) {
  std::size_t n_patients = dataset.patients.size();
  std::size_t n_drugs = dataset.drug_count;
  if (n_patients == 0 || n_drugs == 0) {
    throw std::invalid_argument("fit_delt: empty dataset");
  }

  DeltModel model;
  model.drug_effects.assign(n_drugs, 0.0);
  model.patient_baselines.assign(n_patients, 0.0);
  model.patient_drifts.assign(n_patients, 0.0);

  // Flattened measurement table + per-drug exposure index.
  struct Row {
    std::size_t patient;
    double time;
    double value;
    const std::vector<std::uint32_t>* exposures;
  };
  std::vector<Row> rows;
  // First row of each patient in the flattened table; lets the (alpha,
  // gamma) pass address any patient without walking its predecessors.
  std::vector<std::size_t> patient_row_start(n_patients, 0);
  for (std::size_t p = 0; p < n_patients; ++p) {
    patient_row_start[p] = rows.size();
    for (const auto& m : dataset.patients[p].measurements) {
      rows.push_back(Row{p, m.time, m.value, &m.exposures});
    }
  }
  if (rows.empty()) throw std::invalid_argument("fit_delt: no measurements");

  std::vector<std::vector<std::size_t>> rows_of_drug(n_drugs);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::uint32_t d : *rows[r].exposures) rows_of_drug[d].push_back(r);
  }

  // drug_sum[r] = sum_d beta_d x_rd, maintained incrementally.
  std::vector<double> drug_sum(rows.size(), 0.0);

  // Initialize baselines at per-patient means (or a global mean).
  double global_mean =
      std::accumulate(rows.begin(), rows.end(), 0.0,
                      [](double acc, const Row& r) { return acc + r.value; }) /
      static_cast<double>(rows.size());
  for (std::size_t p = 0; p < n_patients; ++p) {
    model.patient_baselines[p] = global_mean;
  }

  for (int iteration = 0; iteration < config.iterations; ++iteration) {
    // --- per-patient (alpha_i, gamma_i) given beta ----------------------
    if (config.model_baseline || config.model_drift) {
      // Each patient's 2-parameter solve touches only its own row range and
      // writes only its own (alpha, gamma) slot; the within-patient sums
      // run serially, so the result is bit-identical for any worker count.
      exec::parallel_for(
          n_patients, config.workers,
          [&](std::size_t p) {
        std::size_t row_index = patient_row_start[p];
        const auto& measurements = dataset.patients[p].measurements;
        std::size_t count = measurements.size();
        double sy = 0, st = 0, stt = 0, sty = 0;
        for (std::size_t j = 0; j < count; ++j) {
          const Row& row = rows[row_index + j];
          double target = row.value - drug_sum[row_index + j];
          sy += target;
          st += row.time;
          stt += row.time * row.time;
          sty += row.time * target;
        }
        double n = static_cast<double>(count);
        if (config.model_baseline && config.model_drift) {
          double det = n * stt - st * st;
          if (std::abs(det) > 1e-12) {
            model.patient_baselines[p] = (stt * sy - st * sty) / det;
            model.patient_drifts[p] = (n * sty - st * sy) / det;
          } else {
            model.patient_baselines[p] = sy / n;
            model.patient_drifts[p] = 0.0;
          }
        } else if (config.model_baseline) {
          model.patient_baselines[p] = sy / n;
          model.patient_drifts[p] = 0.0;
        } else if (config.model_drift) {
          model.patient_baselines[p] = global_mean;
          if (stt > 1e-12) {
            model.patient_drifts[p] = (sty - global_mean * st) / stt;
          }
        }
          },
          kPatientGrain);
    } else {
      for (std::size_t p = 0; p < n_patients; ++p) {
        model.patient_baselines[p] = global_mean;
        model.patient_drifts[p] = 0.0;
      }
    }

    // --- coordinate descent on beta given (alpha, gamma) ----------------
    for (std::size_t d = 0; d < n_drugs; ++d) {
      const auto& drug_rows = rows_of_drug[d];
      if (drug_rows.empty()) continue;
      double numerator = 0.0;
      for (std::size_t r : drug_rows) {
        const Row& row = rows[r];
        double other = drug_sum[r] - model.drug_effects[d];
        double residual = row.value - model.patient_baselines[row.patient] -
                          model.patient_drifts[row.patient] * row.time - other;
        numerator += residual;
      }
      double new_beta =
          numerator / (static_cast<double>(drug_rows.size()) + config.ridge);
      double delta = new_beta - model.drug_effects[d];
      if (delta != 0.0) {
        for (std::size_t r : drug_rows) drug_sum[r] += delta;
        model.drug_effects[d] = new_beta;
      }
    }

    // --- objective -------------------------------------------------------
    double sse = 0.0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const Row& row = rows[r];
      double predicted = model.patient_baselines[row.patient] +
                         model.patient_drifts[row.patient] * row.time + drug_sum[r];
      double e = row.value - predicted;
      sse += e * e;
    }
    model.objective_history.push_back(sse);
  }
  return model;
}

std::vector<double> marginal_correlation_effects(const EmrDataset& dataset) {
  std::size_t n_drugs = dataset.drug_count;
  std::vector<double> exposed_sum(n_drugs, 0.0);
  std::vector<std::size_t> exposed_count(n_drugs, 0);
  double total_sum = 0.0;
  std::size_t total_count = 0;

  for (const auto& patient : dataset.patients) {
    for (const auto& m : patient.measurements) {
      total_sum += m.value;
      ++total_count;
      for (std::uint32_t d : m.exposures) {
        exposed_sum[d] += m.value;
        ++exposed_count[d];
      }
    }
  }
  if (total_count == 0) return std::vector<double>(n_drugs, 0.0);

  std::vector<double> effects(n_drugs, 0.0);
  for (std::size_t d = 0; d < n_drugs; ++d) {
    if (exposed_count[d] == 0) continue;
    double exposed_mean = exposed_sum[d] / static_cast<double>(exposed_count[d]);
    double unexposed_sum = total_sum - exposed_sum[d];
    std::size_t unexposed_count = total_count - exposed_count[d];
    double unexposed_mean = unexposed_count > 0
                                ? unexposed_sum / static_cast<double>(unexposed_count)
                                : exposed_mean;
    effects[d] = exposed_mean - unexposed_mean;
  }
  return effects;
}

RecoveryMetrics score_recovery(const std::vector<double>& estimated_effects,
                               const EmrDataset& dataset) {
  if (estimated_effects.size() != dataset.drug_count) {
    throw std::invalid_argument("score_recovery: effect vector size mismatch");
  }
  RecoveryMetrics metrics;

  // Lowering drugs should have the most negative estimates: rank by -beta.
  std::vector<double> scores(estimated_effects.size());
  std::vector<bool> labels(estimated_effects.size());
  std::size_t planted = 0;
  for (std::size_t d = 0; d < estimated_effects.size(); ++d) {
    scores[d] = -estimated_effects[d];
    labels[d] = dataset.is_planted[d];
    planted += dataset.is_planted[d] ? 1 : 0;
  }
  metrics.auc = auc_roc(scores, labels);
  metrics.precision_at_n = precision_at_k(scores, labels, planted);

  if (planted > 0) {
    double sum = 0.0;
    for (std::size_t d = 0; d < estimated_effects.size(); ++d) {
      if (!dataset.is_planted[d]) continue;
      double e = estimated_effects[d] - dataset.true_effects[d];
      sum += e * e;
    }
    metrics.effect_rmse = std::sqrt(sum / static_cast<double>(planted));
  }
  return metrics;
}

}  // namespace hc::analytics
