#include "analytics/delt.h"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "analytics/metrics.h"
#include "analytics/solver/cg.h"
#include "analytics/sparse.h"
#include "exec/executor.h"

namespace {

/// Patients per parallel task in the (alpha, gamma) pass. Fixed so the work
/// decomposition is worker-count invariant; sized so a task amortizes
/// dispatch over a few thousand measurement rows.
constexpr std::size_t kPatientGrain = 64;

}  // namespace

namespace hc::analytics {

DeltModel fit_delt(const EmrDataset& dataset, const DeltConfig& config) {
  std::size_t n_patients = dataset.patients.size();
  std::size_t n_drugs = dataset.drug_count;
  if (n_patients == 0 || n_drugs == 0) {
    throw std::invalid_argument("fit_delt: empty dataset");
  }

  DeltModel model;
  model.drug_effects.assign(n_drugs, 0.0);
  model.patient_baselines.assign(n_patients, 0.0);
  model.patient_drifts.assign(n_patients, 0.0);

  // Flattened measurement table + per-drug exposure index.
  struct Row {
    std::size_t patient;
    double time;
    double value;
    const std::vector<std::uint32_t>* exposures;
  };
  std::vector<Row> rows;
  // First row of each patient in the flattened table; lets the (alpha,
  // gamma) pass address any patient without walking its predecessors.
  std::vector<std::size_t> patient_row_start(n_patients, 0);
  for (std::size_t p = 0; p < n_patients; ++p) {
    patient_row_start[p] = rows.size();
    for (const auto& m : dataset.patients[p].measurements) {
      rows.push_back(Row{p, m.time, m.value, &m.exposures});
    }
  }
  if (rows.empty()) throw std::invalid_argument("fit_delt: no measurements");

  std::vector<std::vector<std::size_t>> rows_of_drug(n_drugs);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::uint32_t d : *rows[r].exposures) rows_of_drug[d].push_back(r);
  }

  // drug_sum[r] = sum_d beta_d x_rd, maintained incrementally.
  std::vector<double> drug_sum(rows.size(), 0.0);

  // Initialize baselines at per-patient means (or a global mean).
  double global_mean =
      std::accumulate(rows.begin(), rows.end(), 0.0,
                      [](double acc, const Row& r) { return acc + r.value; }) /
      static_cast<double>(rows.size());
  for (std::size_t p = 0; p < n_patients; ++p) {
    model.patient_baselines[p] = global_mean;
  }

  // Resume from a checkpointed iteration boundary: restore every vector the
  // loop carries across iterations — including drug_sum verbatim, whose
  // incrementally-accumulated bits a recomputation would not reproduce.
  int first_iteration = 0;
  if (config.resume != nullptr) {
    const DeltResume& res = *config.resume;
    if (res.drug_effects.size() != n_drugs ||
        res.patient_baselines.size() != n_patients ||
        res.patient_drifts.size() != n_patients ||
        res.drug_sum.size() != rows.size()) {
      throw std::invalid_argument("fit_delt: resume state shape mismatch");
    }
    model.drug_effects = res.drug_effects;
    model.patient_baselines = res.patient_baselines;
    model.patient_drifts = res.patient_drifts;
    model.objective_history = res.objective_history;
    drug_sum = res.drug_sum;
    first_iteration = res.next_iteration;
  }

  auto notify_iteration = [&](int iteration) {
    if (!config.epoch_hook) return;
    config.epoch_hook(DeltEpochView{iteration, model.drug_effects,
                                    model.patient_baselines,
                                    model.patient_drifts, drug_sum,
                                    model.objective_history});
  };

  // Bytes resident in the shared fit state: flattened table, exposure
  // index, model vectors. Capacity-based, matching Matrix::allocated_bytes,
  // and nothing here shrinks mid-fit — end == peak.
  auto shared_bytes = [&]() {
    std::size_t b = rows.capacity() * sizeof(Row) +
                    patient_row_start.capacity() * sizeof(std::size_t) +
                    drug_sum.capacity() * sizeof(double) +
                    rows_of_drug.capacity() * sizeof(std::vector<std::size_t>);
    for (const auto& idx : rows_of_drug) b += idx.capacity() * sizeof(std::size_t);
    b += model.drug_effects.capacity() * sizeof(double) +
         model.patient_baselines.capacity() * sizeof(double) +
         model.patient_drifts.capacity() * sizeof(double);
    return b;
  };

  if (config.use_newton_cg) {
    if (first_iteration > 0) {
      // The single Newton solve had already completed when the checkpoint
      // was taken — the restored state is the final model.
      model.peak_workspace_bytes = shared_bytes();
      return model;
    }
    // The model is linear in theta = [alpha | gamma | beta], so the
    // alternating fit's fixed point is the solution of one ridge
    // least-squares system:
    //   (X^T X + Lambda) theta = X^T y,   Lambda = ridge on the beta block.
    // A single Jacobi-preconditioned truncated-CG solve replaces all
    // config.iterations alternating sweeps; objective_history gets the one
    // converged SSE.
    bool has_a = config.model_baseline;
    bool has_g = config.model_drift;
    std::size_t a_off = 0, g_off = 0, dim = 0;
    if (has_a) { a_off = dim; dim += n_patients; }
    if (has_g) { g_off = dim; dim += n_patients; }
    std::size_t b_off = dim;
    dim += n_drugs;
    // Baseline off pins alpha at the global mean: fold it into y.
    double y_shift = has_a ? 0.0 : global_mean;

    // X p for the current CG direction, then the X^T (X p) reduction. Both
    // passes partition disjoint output slots with serial inner sums, so the
    // operator is worker-count invariant (the CG determinism contract).
    std::vector<double> xp(rows.size(), 0.0);
    auto apply = [&](const Matrix& p, Matrix& out, std::size_t wk) {
      out.resize(dim, 1);
      const double* pd = p.data();
      double* od = out.data();
      exec::parallel_for(
          n_patients, wk,
          [&](std::size_t pat) {
            std::size_t start = patient_row_start[pat];
            std::size_t count = dataset.patients[pat].measurements.size();
            for (std::size_t j = 0; j < count; ++j) {
              const Row& row = rows[start + j];
              double s = 0.0;
              if (has_a) s += pd[a_off + pat];
              if (has_g) s += pd[g_off + pat] * row.time;
              for (std::uint32_t d : *row.exposures) s += pd[b_off + d];
              xp[start + j] = s;
            }
          },
          kPatientGrain);
      if (has_a || has_g) {
        exec::parallel_for(
            n_patients, wk,
            [&](std::size_t pat) {
              std::size_t start = patient_row_start[pat];
              std::size_t count = dataset.patients[pat].measurements.size();
              double sa = 0.0, sg = 0.0;
              for (std::size_t j = 0; j < count; ++j) {
                sa += xp[start + j];
                sg += rows[start + j].time * xp[start + j];
              }
              if (has_a) od[a_off + pat] = sa;
              if (has_g) od[g_off + pat] = sg;
            },
            kPatientGrain);
      }
      exec::parallel_for(
          n_drugs, wk,
          [&](std::size_t d) {
            double s = 0.0;
            for (std::size_t r : rows_of_drug[d]) s += xp[r];
            od[b_off + d] = s + config.ridge * pd[b_off + d];
          },
          kPatientGrain);
    };

    Matrix b(dim, 1);
    Matrix jacobi(dim, 1);
    double* bd = b.data();
    double* jd = jacobi.data();
    for (std::size_t pat = 0; pat < n_patients; ++pat) {
      std::size_t start = patient_row_start[pat];
      std::size_t count = dataset.patients[pat].measurements.size();
      double sy = 0.0, sty = 0.0, stt = 0.0;
      for (std::size_t j = 0; j < count; ++j) {
        const Row& row = rows[start + j];
        double y = row.value - y_shift;
        sy += y;
        sty += row.time * y;
        stt += row.time * row.time;
      }
      if (has_a) {
        bd[a_off + pat] = sy;
        jd[a_off + pat] = count > 0 ? static_cast<double>(count) : 1.0;
      }
      if (has_g) {
        bd[g_off + pat] = sty;
        jd[g_off + pat] = stt > 0.0 ? stt : 1.0;
      }
    }
    for (std::size_t d = 0; d < n_drugs; ++d) {
      double sy = 0.0;
      for (std::size_t r : rows_of_drug[d]) sy += rows[r].value - y_shift;
      bd[b_off + d] = sy;
      jd[b_off + d] = static_cast<double>(rows_of_drug[d].size()) + config.ridge;
      if (jd[b_off + d] <= 0.0) jd[b_off + d] = 1.0;
    }

    Matrix theta;
    solver::CgConfig cg_cfg;
    cg_cfg.max_iterations = config.cg_iterations;
    cg_cfg.tolerance = config.cg_tolerance;
    solver::CgWorkspace cg_ws;
    solver::conjugate_gradient(apply, b, theta, cg_cfg, cg_ws, config.workers,
                               &jacobi);

    const double* td = theta.data();
    for (std::size_t pat = 0; pat < n_patients; ++pat) {
      model.patient_baselines[pat] = has_a ? td[a_off + pat] : global_mean;
      model.patient_drifts[pat] = has_g ? td[g_off + pat] : 0.0;
    }
    for (std::size_t d = 0; d < n_drugs; ++d) {
      model.drug_effects[d] = td[b_off + d];
    }
    for (std::size_t r = 0; r < rows.size(); ++r) {
      double s = 0.0;
      for (std::uint32_t d : *rows[r].exposures) s += model.drug_effects[d];
      drug_sum[r] = s;
    }
    double sse = 0.0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const Row& row = rows[r];
      double predicted = model.patient_baselines[row.patient] +
                         model.patient_drifts[row.patient] * row.time + drug_sum[r];
      double e = row.value - predicted;
      sse += e * e;
    }
    model.objective_history.push_back(sse);
    notify_iteration(0);
    model.peak_workspace_bytes =
        shared_bytes() + xp.capacity() * sizeof(double) + b.allocated_bytes() +
        jacobi.allocated_bytes() + theta.allocated_bytes() +
        cg_ws.r.allocated_bytes() + cg_ws.z.allocated_bytes() +
        cg_ws.p.allocated_bytes() + cg_ws.hp.allocated_bytes();
    return model;
  }

  // Compressed exposure matrix for the sparse beta sweep. The CSC column
  // for drug d lists the same measurement rows as rows_of_drug[d] in the
  // same ascending order, so the fit below is bitwise identical either way.
  sparse::CsrMatrix exposure_csr;
  sparse::CscMatrix exposure_csc;
  if (config.use_sparse) {
    std::vector<sparse::Triplet> triplets;
    std::size_t total = 0;
    for (const Row& row : rows) total += row.exposures->size();
    triplets.reserve(total);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (std::uint32_t d : *rows[r].exposures) {
        triplets.push_back(
            sparse::Triplet{static_cast<std::uint32_t>(r), d, 1.0});
      }
    }
    exposure_csr = sparse::CsrMatrix::from_triplets(rows.size(), n_drugs, triplets);
    exposure_csc = sparse::CscMatrix::from_csr(exposure_csr);
  }

  for (int iteration = first_iteration; iteration < config.iterations; ++iteration) {
    // --- per-patient (alpha_i, gamma_i) given beta ----------------------
    if (config.model_baseline || config.model_drift) {
      // Each patient's 2-parameter solve touches only its own row range and
      // writes only its own (alpha, gamma) slot; the within-patient sums
      // run serially, so the result is bit-identical for any worker count.
      exec::parallel_for(
          n_patients, config.workers,
          [&](std::size_t p) {
        std::size_t row_index = patient_row_start[p];
        const auto& measurements = dataset.patients[p].measurements;
        std::size_t count = measurements.size();
        double sy = 0, st = 0, stt = 0, sty = 0;
        for (std::size_t j = 0; j < count; ++j) {
          const Row& row = rows[row_index + j];
          double target = row.value - drug_sum[row_index + j];
          sy += target;
          st += row.time;
          stt += row.time * row.time;
          sty += row.time * target;
        }
        double n = static_cast<double>(count);
        if (config.model_baseline && config.model_drift) {
          double det = n * stt - st * st;
          if (std::abs(det) > 1e-12) {
            model.patient_baselines[p] = (stt * sy - st * sty) / det;
            model.patient_drifts[p] = (n * sty - st * sy) / det;
          } else {
            model.patient_baselines[p] = sy / n;
            model.patient_drifts[p] = 0.0;
          }
        } else if (config.model_baseline) {
          model.patient_baselines[p] = sy / n;
          model.patient_drifts[p] = 0.0;
        } else if (config.model_drift) {
          model.patient_baselines[p] = global_mean;
          if (stt > 1e-12) {
            model.patient_drifts[p] = (sty - global_mean * st) / stt;
          }
        }
          },
          kPatientGrain);
    } else {
      for (std::size_t p = 0; p < n_patients; ++p) {
        model.patient_baselines[p] = global_mean;
        model.patient_drifts[p] = 0.0;
      }
    }

    // --- coordinate descent on beta given (alpha, gamma) ----------------
    // Generic over the row-list source: the default path reads the per-drug
    // index vectors, the sparse path reads exposure CSC columns.
    auto beta_sweep = [&](auto&& row_list) {
      for (std::size_t d = 0; d < n_drugs; ++d) {
        auto [drug_rows, count] = row_list(d);
        if (count == 0) continue;
        double numerator = 0.0;
        for (std::size_t s = 0; s < count; ++s) {
          std::size_t r = static_cast<std::size_t>(drug_rows[s]);
          const Row& row = rows[r];
          double other = drug_sum[r] - model.drug_effects[d];
          double residual = row.value - model.patient_baselines[row.patient] -
                            model.patient_drifts[row.patient] * row.time - other;
          numerator += residual;
        }
        double new_beta =
            numerator / (static_cast<double>(count) + config.ridge);
        double delta = new_beta - model.drug_effects[d];
        if (delta != 0.0) {
          for (std::size_t s = 0; s < count; ++s) {
            drug_sum[static_cast<std::size_t>(drug_rows[s])] += delta;
          }
          model.drug_effects[d] = new_beta;
        }
      }
    };
    if (config.use_sparse) {
      beta_sweep([&](std::size_t d) {
        const std::uint32_t* cp = exposure_csc.col_ptr();
        return std::make_pair(exposure_csc.row_idx() + cp[d],
                              static_cast<std::size_t>(cp[d + 1] - cp[d]));
      });
    } else {
      beta_sweep([&](std::size_t d) {
        return std::make_pair(rows_of_drug[d].data(), rows_of_drug[d].size());
      });
    }

    // --- objective -------------------------------------------------------
    double sse = 0.0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const Row& row = rows[r];
      double predicted = model.patient_baselines[row.patient] +
                         model.patient_drifts[row.patient] * row.time + drug_sum[r];
      double e = row.value - predicted;
      sse += e * e;
    }
    model.objective_history.push_back(sse);
    notify_iteration(iteration);
  }
  model.peak_workspace_bytes =
      shared_bytes() + exposure_csr.bytes() + exposure_csc.bytes();
  return model;
}

std::vector<double> marginal_correlation_effects(const EmrDataset& dataset) {
  std::size_t n_drugs = dataset.drug_count;
  std::vector<double> exposed_sum(n_drugs, 0.0);
  std::vector<std::size_t> exposed_count(n_drugs, 0);
  double total_sum = 0.0;
  std::size_t total_count = 0;

  for (const auto& patient : dataset.patients) {
    for (const auto& m : patient.measurements) {
      total_sum += m.value;
      ++total_count;
      for (std::uint32_t d : m.exposures) {
        exposed_sum[d] += m.value;
        ++exposed_count[d];
      }
    }
  }
  if (total_count == 0) return std::vector<double>(n_drugs, 0.0);

  std::vector<double> effects(n_drugs, 0.0);
  for (std::size_t d = 0; d < n_drugs; ++d) {
    if (exposed_count[d] == 0) continue;
    double exposed_mean = exposed_sum[d] / static_cast<double>(exposed_count[d]);
    double unexposed_sum = total_sum - exposed_sum[d];
    std::size_t unexposed_count = total_count - exposed_count[d];
    double unexposed_mean = unexposed_count > 0
                                ? unexposed_sum / static_cast<double>(unexposed_count)
                                : exposed_mean;
    effects[d] = exposed_mean - unexposed_mean;
  }
  return effects;
}

RecoveryMetrics score_recovery(const std::vector<double>& estimated_effects,
                               const EmrDataset& dataset) {
  if (estimated_effects.size() != dataset.drug_count) {
    throw std::invalid_argument("score_recovery: effect vector size mismatch");
  }
  RecoveryMetrics metrics;

  // Lowering drugs should have the most negative estimates: rank by -beta.
  std::vector<double> scores(estimated_effects.size());
  std::vector<bool> labels(estimated_effects.size());
  std::size_t planted = 0;
  for (std::size_t d = 0; d < estimated_effects.size(); ++d) {
    scores[d] = -estimated_effects[d];
    labels[d] = dataset.is_planted[d];
    planted += dataset.is_planted[d] ? 1 : 0;
  }
  metrics.auc = auc_roc(scores, labels);
  metrics.precision_at_n = precision_at_k(scores, labels, planted);

  if (planted > 0) {
    double sum = 0.0;
    for (std::size_t d = 0; d < estimated_effects.size(); ++d) {
      if (!dataset.is_planted[d]) continue;
      double e = estimated_effects[d] - dataset.true_effects[d];
      sum += e * e;
    }
    metrics.effect_rmse = std::sqrt(sum / static_cast<double>(planted));
  }
  return metrics;
}

}  // namespace hc::analytics
