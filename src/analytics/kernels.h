// Optimized numeric kernels for the analytics compute plane.
//
// The bioinformatics applications (JMF, DELT, MF, DDI) are the repo's only
// real wall-clock CPU work; this layer replaces the naive triple-loop
// Matrix methods on their hot paths with cache-blocked, row-partitioned,
// allocation-free variants. Three design rules, in order:
//
//   1. *Bit-identical.* Every kernel performs the same floating-point
//      operations in the same order as the naive Matrix method it
//      replaces: per output cell, the k-reduction runs ascending into a
//      single accumulator (or accumulates row-axpy style with k
//      ascending, matching Matrix::multiply's zero-skip). Blocking only
//      reorders *independent* cells, never one cell's reduction, so
//      results are bitwise equal to the seed implementation.
//   2. *Deterministic parallelism.* Work is partitioned over contiguous
//      blocks of output rows; each cell is computed wholly by one worker
//      in rule-1 order, and no two workers write the same cell. Results
//      are therefore bit-identical across 1/2/4/8 workers.
//   3. *Allocation-free.* Every kernel writes into a caller-owned
//      destination (resized in place; a no-op once warm). Solvers keep the
//      destinations in a per-solver Workspace so epoch loops allocate
//      zero matrices after the first epoch.
//
// Reductions that feed back into solver state (Frobenius norms/distances,
// fit errors) intentionally stay serial: a parallel reduction would change
// summation order and break rule 1 for a part that is O(n^2) against the
// kernels' O(n^2 k).
#pragma once

#include <cstddef>
#include <vector>

#include "analytics/matrix.h"

namespace hc::analytics::kernels {

/// Rows per parallel task. Fixed (not derived from the worker count) so
/// the work decomposition — and with it every write pattern — is the same
/// no matter how many workers execute it.
inline constexpr std::size_t kRowBlock = 16;
/// Column tile for the dot-product kernels (multiply_transposed, syrk):
/// keeps the active slice of B's rows resident across an output-row block.
inline constexpr std::size_t kColBlock = 64;

/// out = a * b. Same axpy formulation as Matrix::multiply, including the
/// skip of zero a(i,k) entries (mask-heavy residuals are common).
void multiply_into(const Matrix& a, const Matrix& b, Matrix& out,
                   std::size_t workers = 1);

/// out = a * b^T (dot products of rows; both operands walk contiguously).
void multiply_transposed_into(const Matrix& a, const Matrix& b, Matrix& out,
                              std::size_t workers = 1);

/// out = a^T * b without materializing a^T. Matches
/// a.transpose().multiply(b) bitwise (k ascending, zero-skip on a(k,j)).
void transpose_multiply_into(const Matrix& a, const Matrix& b, Matrix& out,
                             std::size_t workers = 1);

/// out = a^T, block-tiled.
void transpose_into(const Matrix& a, Matrix& out);

/// Symmetric rank-k: out = f * f^T. Computes only the upper triangle
/// (halving the flops of multiply_transposed_into(f, f, ...)) and mirrors
/// it in a second parallel pass; mirroring copies bits, so the result is
/// bitwise equal to the full computation.
void syrk_into(const Matrix& f, Matrix& out, std::size_t workers = 1);

/// out = s - m, elementwise.
void sub_into(const Matrix& s, const Matrix& m, Matrix& out,
              std::size_t workers = 1);

/// Fused residual: out = r - u * v^T in one pass, no u*v^T temporary.
/// Bitwise equal to {tmp = u.multiply_transposed(v); out = r;
/// out.add_scaled(tmp, -1.0)} — IEEE a + (-1.0)*d == a - d.
void residual_into(const Matrix& r, const Matrix& u, const Matrix& v, Matrix& out,
                   std::size_t workers = 1);

/// Fused masked residual for plain MF: out(i,j) = observed(i,j) - dot(u.row(i),
/// v.row(j)) where mask(i,j) != 0, else 0. Bitwise equal to the seed loop
/// {Matrix residual(rows, cols); if (mask) residual = observed - predict}.
void masked_residual_into(const Matrix& observed, const Matrix& mask, const Matrix& u,
                          const Matrix& v, Matrix& out, std::size_t workers = 1);

/// Fused symmetric residual: out = s - f * f^T, upper triangle + mirror.
/// Precondition: s is bitwise symmetric (true of every similarity matrix) —
/// the mirror pass copies out(j, i) into out(i, j), which equals
/// s(i, j) - dot(i, j) only when s(i, j) == s(j, i).
void syrk_residual_into(const Matrix& s, const Matrix& f, Matrix& out,
                        std::size_t workers = 1);

/// Fused similarity-gradient contribution: grad += factor * ((s - m) * f)
/// with no materialized s-m or product matrix. Each output row's product
/// accumulates into scratch.row(i) (rows of scratch are owned by the same
/// worker as rows of grad, so writes stay disjoint). Bitwise equal to
/// {sub_into; multiply_into; add_scaled_into} composed.
void sub_multiply_add_into(Matrix& grad, const Matrix& s, const Matrix& m,
                           const Matrix& f, double factor, Matrix& scratch,
                           std::size_t workers = 1);

/// Multi-source form of sub_multiply_add_into: for each source s (in
/// ascending order), grad += factors[s] * ((sources[s] - m) * f), fused
/// into one sweep so m's rows and f's rows are loaded once per (i, k)
/// instead of once per source. Per grad cell the per-source additions
/// land in ascending s order and each source's row product accumulates
/// ascending-k with the same zero-skip, so the result is bitwise equal to
/// calling sub_multiply_add_into once per source in order. Requires
/// factors.size() == sources.size(); scratch holds one accumulator row
/// per (output row, fused source).
void fused_sub_multiply_add_into(Matrix& grad, const std::vector<Matrix>& sources,
                                 const Matrix& m, const Matrix& f,
                                 const std::vector<double>& factors,
                                 Matrix& scratch, std::size_t workers = 1);

/// Fused out = (r - u * v^T)^T * f with no materialized residual or
/// transpose. Bitwise equal to {residual_into(r, u, v, tmp);
/// transpose_multiply_into(tmp, f, out)} — each residual cell is the same
/// ascending-k dot subtracted from r, consumed in the same ascending-row
/// axpy order with the same zero-skip.
void residual_transpose_multiply_into(const Matrix& r, const Matrix& u,
                                      const Matrix& v, const Matrix& f, Matrix& out,
                                      std::size_t workers = 1);

/// Building block shared by the dense and sparse fused gradient kernels:
/// grow[j] += factor * (ascending-k dot of drow against column j of f),
/// for j in [0, width), with the zero-skip on drow[k] and the adaptive
/// 8/4/2/1-cell accumulator interleave. Per output cell the reduction is a
/// single ascending-k accumulator, so any caller that feeds the same diff
/// row gets the same bits regardless of how the row was produced (dense
/// subtraction or CSR-gap walk).
void accumulate_scaled_products(double* grow, const double* drow,
                                const double* fdata, double factor,
                                std::size_t inner, std::size_t width);

/// dst += factor * src over a row partition (the elementwise epilogue of
/// the gradient updates). Bitwise equal to Matrix::add_scaled.
void add_scaled_into(Matrix& dst, const Matrix& src, double factor,
                     std::size_t workers = 1);

/// max(0, x) projection over a row partition (bitwise equal to the
/// serial loop — each cell is independent).
void clamp_nonnegative(Matrix& m, std::size_t workers = 1);

}  // namespace hc::analytics::kernels
