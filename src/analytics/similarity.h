// Entity similarity computation (Section V.A).
//
// "The techniques that we use for calculations like drug repositioning
// include determining quantitative similarities of entities such as drugs
// and diseases. Drug similarities can be calculated by multiple methods
// such as similarity in chemical structure [PubChem fingerprints], drug
// targets [DrugBank], and side effects [SIDER]." Structure/target/
// side-effect profiles are binary fingerprints here — Tanimoto applies to
// all three; real-valued profiles (phenotype vectors) use cosine.
#pragma once

#include <cstdint>
#include <vector>

#include "analytics/matrix.h"

namespace hc::analytics {

using Fingerprint = std::vector<std::uint8_t>;  // 0/1 per feature bit

/// Tanimoto (Jaccard on bits): |a & b| / |a | b|. 1.0 when both empty.
double tanimoto(const Fingerprint& a, const Fingerprint& b);

/// Cosine similarity of real vectors; 0 when either is all-zero.
double cosine(const std::vector<double>& a, const std::vector<double>& b);

/// Pairwise Tanimoto similarity matrix (symmetric, unit diagonal).
/// Parallel over rows: the owner of row i writes sim(i, j) and its mirror
/// sim(j, i) for all j > i, so every cell has exactly one writer and the
/// result is bit-identical for any worker count.
Matrix similarity_matrix(const std::vector<Fingerprint>& fingerprints,
                         std::size_t workers = 1);

/// Pairwise cosine similarity matrix for real profiles (same row-ownership
/// parallelization as similarity_matrix).
Matrix cosine_similarity_matrix(const std::vector<std::vector<double>>& profiles,
                                std::size_t workers = 1);

}  // namespace hc::analytics
