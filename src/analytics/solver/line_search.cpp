#include "analytics/solver/line_search.h"

namespace hc::analytics::solver {

LineSearchResult backtracking_armijo(const std::function<double(double)>& phi,
                                     double phi0, double slope,
                                     const LineSearchConfig& config) {
  LineSearchResult result;
  if (!(slope < 0.0)) return result;  // not a descent direction (or NaN)
  double t = config.initial_step;
  for (std::size_t k = 0; k <= config.max_backtracks; ++k) {
    double value = phi(t);
    ++result.evaluations;
    if (value <= phi0 + config.c1 * t * slope) {
      result.step = t;
      result.accepted = true;
      return result;
    }
    t *= config.shrink;
  }
  return result;
}

}  // namespace hc::analytics::solver
