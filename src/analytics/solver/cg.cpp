#include "analytics/solver/cg.h"

#include <cmath>
#include <stdexcept>

#include "analytics/kernels.h"

namespace hc::analytics::solver {

namespace {

/// Serial flat ascending dot — the deterministic reduction (see header).
double flat_dot(const Matrix& a, const Matrix& b) {
  const double* ad = a.data();
  const double* bd = b.data();
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += ad[i] * bd[i];
  return sum;
}

/// z = r / jacobi elementwise, or a bit copy for the identity.
void apply_precond(const Matrix& r, const Matrix* jacobi, Matrix& z) {
  z.resize(r.rows(), r.cols());
  const double* rd = r.data();
  double* zd = z.data();
  if (jacobi == nullptr) {
    for (std::size_t i = 0; i < r.size(); ++i) zd[i] = rd[i];
    return;
  }
  const double* jd = jacobi->data();
  for (std::size_t i = 0; i < r.size(); ++i) zd[i] = rd[i] / jd[i];
}

}  // namespace

CgResult conjugate_gradient(const ApplyFn& apply_h, const Matrix& b, Matrix& x,
                            const CgConfig& config, CgWorkspace& ws,
                            std::size_t workers, const Matrix* jacobi) {
  if (jacobi != nullptr && !jacobi->same_shape(b)) {
    throw std::invalid_argument("solver::conjugate_gradient: jacobi shape mismatch");
  }
  CgResult result;
  x.resize(b.rows(), b.cols());
  x.fill(0.0);
  double bnorm = std::sqrt(flat_dot(b, b));
  if (bnorm == 0.0) return result;

  // x = 0, so r starts as b (bit copy) and the first z is M^{-1} b.
  ws.r.resize(b.rows(), b.cols());
  const double* bd = b.data();
  double* rd = ws.r.data();
  for (std::size_t i = 0; i < b.size(); ++i) rd[i] = bd[i];
  apply_precond(ws.r, jacobi, ws.z);
  ws.p.resize(b.rows(), b.cols());
  const double* zd = ws.z.data();
  double* pd = ws.p.data();
  for (std::size_t i = 0; i < b.size(); ++i) pd[i] = zd[i];
  double rz = flat_dot(ws.r, ws.z);
  result.residual_norm = bnorm;

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    apply_h(ws.p, ws.hp, workers);
    double php = flat_dot(ws.p, ws.hp);
    if (php <= 0.0) {
      result.negative_curvature = true;
      if (iter == 0) {
        // No progress yet: return the preconditioned steepest-descent
        // direction so the outer line search still has a descent step.
        double* xd = x.data();
        const double* pdc = ws.p.data();
        for (std::size_t i = 0; i < x.size(); ++i) xd[i] = pdc[i];
      }
      return result;
    }
    double alpha = rz / php;
    kernels::add_scaled_into(x, ws.p, alpha, workers);
    kernels::add_scaled_into(ws.r, ws.hp, -alpha, workers);
    result.iterations = iter + 1;
    result.residual_norm = std::sqrt(flat_dot(ws.r, ws.r));
    if (result.residual_norm <= config.tolerance * bnorm) break;
    apply_precond(ws.r, jacobi, ws.z);
    double rz_next = flat_dot(ws.r, ws.z);
    double beta = rz_next / rz;
    rz = rz_next;
    const double* zd2 = ws.z.data();
    double* pd2 = ws.p.data();
    for (std::size_t i = 0; i < b.size(); ++i) pd2[i] = zd2[i] + beta * pd2[i];
  }
  return result;
}

}  // namespace hc::analytics::solver
