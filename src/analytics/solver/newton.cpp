#include "analytics/solver/newton.h"

#include "analytics/kernels.h"

namespace hc::analytics::solver {

namespace {

double flat_dot(const Matrix& a, const Matrix& b) {
  const double* ad = a.data();
  const double* bd = b.data();
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += ad[i] * bd[i];
  return sum;
}

}  // namespace

NewtonStepResult newton_step(const ApplyFn& apply_h, const Matrix& grad,
                             Matrix& x,
                             const std::function<double(const Matrix&)>& objective,
                             double fx, const NewtonConfig& config,
                             NewtonWorkspace& ws, std::size_t workers,
                             const Matrix* jacobi) {
  NewtonStepResult result;
  result.objective = fx;

  ws.neg_grad.resize(grad.rows(), grad.cols());
  const double* gd = grad.data();
  double* nd = ws.neg_grad.data();
  for (std::size_t i = 0; i < grad.size(); ++i) nd[i] = -gd[i];

  // Two-metric projection (Bertsekas): with the nonnegativity projection
  // on, coordinates sitting on the bound whose gradient points outward
  // would be clamped straight back — solving the Newton system over them
  // only corrupts the free coordinates' step and can stall the whole
  // block at the boundary. Freeze them: zero their right-hand side and
  // make the operator the identity there. b is zero on the active set and
  // the wrapped operator preserves that, so every CG iterate stays
  // exactly zero on it and the returned direction lives on the free
  // subspace.
  const ApplyFn* apply = &apply_h;
  ApplyFn masked_apply;
  if (config.project_nonnegative) {
    ws.active.resize(grad.rows(), grad.cols());
    const double* xd0 = x.data();
    double* md = ws.active.data();
    for (std::size_t i = 0; i < grad.size(); ++i) {
      bool frozen = xd0[i] == 0.0 && gd[i] > 0.0;
      md[i] = frozen ? 0.0 : 1.0;
      if (frozen) nd[i] = 0.0;
    }
    masked_apply = [&](const Matrix& p, Matrix& out, std::size_t wk) {
      apply_h(p, out, wk);
      const double* mask = ws.active.data();
      const double* pd = p.data();
      double* od = out.data();
      for (std::size_t i = 0; i < out.size(); ++i) {
        od[i] = mask[i] != 0.0 ? od[i] : pd[i];
      }
    };
    apply = &masked_apply;
  }

  CgResult cg = conjugate_gradient(*apply, ws.neg_grad, ws.direction,
                                   config.cg, ws.cg, workers, jacobi);
  result.cg_iterations = cg.iterations;

  // CG on an SPD Gauss-Newton system returns a descent direction; the
  // slope check still guards the truncated/negative-curvature exits.
  double slope = flat_dot(grad, ws.direction);
  if (!(slope < 0.0)) {
    result.gradient_fallback = true;
    double* dd = ws.direction.data();
    const double* ngd = ws.neg_grad.data();
    for (std::size_t i = 0; i < ws.direction.size(); ++i) dd[i] = ngd[i];
    // neg_grad is already restricted to the free set when projecting, so
    // this is the (projected-)gradient slope, not -||g||^2 over all
    // coordinates.
    slope = flat_dot(grad, ws.direction);
    if (!(slope < 0.0)) return result;  // zero (free) gradient: converged
  }

  double last_value = fx;
  auto phi = [&](double t) {
    ws.trial.resize(x.rows(), x.cols());
    const double* xd = x.data();
    const double* dd = ws.direction.data();
    double* td = ws.trial.data();
    for (std::size_t i = 0; i < x.size(); ++i) td[i] = xd[i] + t * dd[i];
    if (config.project_nonnegative) kernels::clamp_nonnegative(ws.trial, workers);
    last_value = objective(ws.trial);
    return last_value;
  };
  LineSearchResult ls = backtracking_armijo(phi, fx, slope, config.line_search);
  if (!ls.accepted) return result;

  // The search stops on the evaluation it accepts, so ws.trial holds
  // Proj(x + t d) and last_value its objective — adopt both verbatim.
  result.step = ls.step;
  result.objective = last_value;
  double* xd = x.data();
  const double* td = ws.trial.data();
  for (std::size_t i = 0; i < x.size(); ++i) xd[i] = td[i];
  return result;
}

}  // namespace hc::analytics::solver
