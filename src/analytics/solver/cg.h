// Truncated (preconditioned) conjugate gradient on a caller-supplied
// linear operator — the inner solve of the Newton-CG second-order path.
//
// The unknown is a Matrix treated as a flat vector (the factor blocks the
// solvers update are matrices). Determinism contract, matching the kernel
// rules: every inner product is a serial flat ascending reduction, every
// axpy is either serial or a rule-2 row-partitioned kernel, and the
// operator callback is required to be worker-count invariant (all sparse/
// dense kernels in this repo are). A CG solve is therefore byte-identical
// across 1/2/4/8 workers and across reruns.
//
// The schedule is fixed, not adaptive-by-wall-clock: max_iterations and
// the relative tolerance fully determine the iteration count from the
// arithmetic alone, so histories are reproducible artifacts.
#pragma once

#include <cstddef>
#include <functional>

#include "analytics/matrix.h"

namespace hc::analytics::solver {

/// Applies the system operator: out = H * p. Must be worker-count
/// invariant (use the kernels:: / sparse:: building blocks).
using ApplyFn =
    std::function<void(const Matrix& p, Matrix& out, std::size_t workers)>;

struct CgConfig {
  /// Truncation cap — Newton-CG needs few inner iterations; the outer
  /// loop corrects what the inexact solve leaves behind.
  std::size_t max_iterations = 25;
  /// Stop when ||r|| <= tolerance * ||b|| (Eisenstat-Walker style loose
  /// forcing term; the default suits an inexact Newton outer loop).
  double tolerance = 1e-2;
};

struct CgResult {
  std::size_t iterations = 0;
  /// The operator exposed non-positive curvature along a search direction.
  /// On the first iteration the solve falls back to x = M^{-1} b (the
  /// preconditioned steepest-descent direction); later iterations return
  /// the progress made so far — both standard truncated-Newton behavior.
  bool negative_curvature = false;
  /// ||b - H x|| at exit.
  double residual_norm = 0.0;
};

/// Caller-owned scratch; resized in place on first use (rule 3).
struct CgWorkspace {
  Matrix r;   // residual b - H x
  Matrix z;   // preconditioned residual
  Matrix p;   // search direction
  Matrix hp;  // H * p
};

/// Solves H x = b from x = 0. `jacobi`, if non-null, is an elementwise
/// diagonal preconditioner (same shape as b, strictly positive entries):
/// z = r / jacobi. Pass nullptr for the identity.
CgResult conjugate_gradient(const ApplyFn& apply_h, const Matrix& b, Matrix& x,
                            const CgConfig& config, CgWorkspace& ws,
                            std::size_t workers, const Matrix* jacobi = nullptr);

}  // namespace hc::analytics::solver
