// Backtracking Armijo line search — the globalization step of Newton-CG.
//
// Deterministic by construction: the trial steps are the fixed geometric
// sequence initial_step * shrink^k, the acceptance test is pure FP
// arithmetic on the caller's objective, and nothing depends on wall clock
// or thread interleaving.
#pragma once

#include <cstddef>
#include <functional>

namespace hc::analytics::solver {

struct LineSearchConfig {
  double initial_step = 1.0;  // Newton steps want t = 1 first
  double shrink = 0.5;        // geometric backtracking factor
  double c1 = 1e-4;           // Armijo sufficient-decrease constant
  std::size_t max_backtracks = 30;
};

struct LineSearchResult {
  /// Accepted step, or 0.0 when no trial satisfied the Armijo condition
  /// (caller keeps the current iterate).
  double step = 0.0;
  std::size_t evaluations = 0;
  bool accepted = false;
};

/// Finds the first t in {initial_step * shrink^k} with
///   phi(t) <= phi0 + c1 * t * slope.
/// `phi` evaluates the objective at step t along the caller's direction;
/// `phi0` is phi(0); `slope` is the directional derivative at 0 and must
/// be negative (a non-descent slope returns not-accepted immediately —
/// the caller falls back to the gradient direction before calling).
LineSearchResult backtracking_armijo(const std::function<double(double)>& phi,
                                     double phi0, double slope,
                                     const LineSearchConfig& config);

}  // namespace hc::analytics::solver
