// One damped (Gauss-)Newton step on a factor block — the outer loop of
// the second-order solvers.
//
// The alternating solvers (JMF, MF) call newton_step once per block per
// epoch: CG approximately solves H d = -g, backtracking Armijo picks the
// damping, and the block is (optionally) projected onto the nonnegative
// orthant. DELT's joint least-squares fit uses conjugate_gradient
// directly (its system is linear — no line search needed).
//
// Determinism: inherits CG's contract (serial dots, rule-2 kernels,
// worker-invariant operator) plus a fixed backtracking schedule, so a
// whole Newton trajectory is byte-reproducible across worker counts.
#pragma once

#include <cstddef>
#include <functional>

#include "analytics/matrix.h"
#include "analytics/solver/cg.h"
#include "analytics/solver/line_search.h"

namespace hc::analytics::solver {

struct NewtonConfig {
  CgConfig cg;
  LineSearchConfig line_search;
  /// Project trial points (and the accepted iterate) onto x >= 0 — the
  /// factor solvers keep their blocks nonnegative. Also switches the step
  /// to two-metric projection: coordinates pinned at the bound whose
  /// gradient pushes them outward (x_i == 0, g_i > 0) are frozen out of
  /// the CG system, so the Newton direction lives on the free subspace
  /// and clamping cannot destroy its descent property.
  bool project_nonnegative = false;
};

struct NewtonStepResult {
  /// Accepted damping, 0.0 if the line search rejected every trial (the
  /// block is left unchanged).
  double step = 0.0;
  /// Objective at the accepted iterate (== the input `fx` when step == 0);
  /// callers push this into their history without re-evaluating.
  double objective = 0.0;
  std::size_t cg_iterations = 0;
  /// CG returned a non-descent direction and the step fell back to -g.
  bool gradient_fallback = false;
};

/// Caller-owned scratch for one block (rule 3: resized in place, zero
/// allocations once warm).
struct NewtonWorkspace {
  CgWorkspace cg;
  Matrix neg_grad;   // CG right-hand side
  Matrix direction;  // CG solution d
  Matrix trial;      // x + t d (projected), the line-search evaluation point
  Matrix active;     // free-set mask (1 free / 0 active) when projecting
};

/// Performs x <- Proj(x + t d), d ~= -H^{-1} grad, t from Armijo.
///  - apply_h: the (Gauss-)Newton Hessian operator for this block at the
///    current point; must be worker-count invariant.
///  - objective: full objective as a function of this block (other blocks
///    fixed); evaluated at projected trial points.
///  - fx: objective at the current x (phi(0) — callers have it already).
///  - jacobi: optional elementwise diagonal preconditioner for CG.
NewtonStepResult newton_step(const ApplyFn& apply_h, const Matrix& grad,
                             Matrix& x,
                             const std::function<double(const Matrix&)>& objective,
                             double fx, const NewtonConfig& config,
                             NewtonWorkspace& ws, std::size_t workers,
                             const Matrix* jacobi = nullptr);

}  // namespace hc::analytics::solver
