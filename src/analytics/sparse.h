// Sparse compute plane for the analytics layer.
//
// The bioinformatics inputs (drug fingerprints, target-protein sets,
// patient-condition and association matrices) are naturally >95% sparse;
// this module adds compressed-row/compressed-column storage and the sparse
// counterparts of the dense kernels in kernels.h so JMF/DELT/MF can hold
// 10-100x larger catalogs at equal memory. The sparse kernels obey the same
// three rules as the dense layer, with rule 1's reference being the dense
// kernel they shadow:
//
//   1. *Bit-identical vs a defined reference path.* Every dense kernel in
//      kernels.h already skips exactly-zero operand cells in its k
//      reductions. A CSR/CSC walk visits the same surviving (index, value)
//      pairs in the same ascending order, so per output cell the sparse
//      kernel performs the identical FP-operation sequence: results are
//      bitwise equal to the dense kernel applied to to_dense() of the
//      operand. (Stored explicit zeros — possible via from_triplets — are
//      skipped by the axpy-style kernels for the same reason.)
//   2. *Deterministic parallelism.* Work is partitioned over contiguous
//      kernels::kRowBlock blocks of *output* rows; no two workers write
//      the same cell, so results are bit-identical across 1/2/4/8 workers.
//      Kernels that would need scatter writes under a row partition (A^T·B
//      from a CSR) instead take the CSC form, whose columns are the output
//      rows — the transpose is never materialized.
//   3. *Allocation-free.* Dense destinations are resized in place (a no-op
//      once warm); sparse destinations reuse a caller-owned pattern and
//      overwrite only the value array.
//
// Canonical ordering: both formats store, per compressed axis, strictly
// ascending minor indices with no duplicates. from_triplets canonicalizes
// arbitrary input into that form (stable sort + duplicate coalescing in
// input order) and rejects out-of-range coordinates; every constructor
// yields the same representation for the same logical matrix, so byte
// comparisons of (ptr, idx, values) are meaningful.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analytics/matrix.h"

namespace hc::analytics::sparse {

/// One (row, col, value) coordinate for from_triplets.
struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;
};

class CscMatrix;

/// Compressed sparse row: per row, ascending column indices.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Stores exactly the nonzero cells of `dense` (row-major walk order).
  static CsrMatrix from_dense(const Matrix& dense);
  /// Pattern = cells where mask(r,c) != 0; stored value = values(r,c)
  /// (which may be 0.0). This is the MF observed/mask pairing: the kernel
  /// that consumes it is bitwise equal to the dense masked kernel.
  static CsrMatrix from_dense_masked(const Matrix& values, const Matrix& mask);
  /// Canonicalizes arbitrary triplets: stable-sorts by (row, col), sums
  /// duplicate coordinates in input order, and keeps the summed entry even
  /// if it is 0.0 (kernels skip stored zeros, so the result is numerically
  /// indistinguishable). Throws std::invalid_argument on any out-of-range
  /// coordinate — reject cleanly, never truncate.
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 const std::vector<Triplet>& triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }
  double density() const;
  /// Bytes resident in the three arrays (capacity, matching
  /// Matrix::allocated_bytes so equal-memory comparisons are apples to
  /// apples).
  std::size_t bytes() const;

  const std::uint32_t* row_ptr() const { return row_ptr_.data(); }
  const std::uint32_t* col_idx() const { return col_idx_.data(); }
  const double* values() const { return values_.data(); }
  double* mutable_values() { return values_.data(); }

  Matrix to_dense() const;
  /// Sum of squared stored values (serial ascending — deterministic).
  double norm_squared() const;

  /// Adopts `other`'s shape and pattern; values are resized to match and
  /// left unspecified. The sparse-destination kernels call this lazily so
  /// steady-state epochs only overwrite the value array (rule 3).
  void copy_pattern_from(const CsrMatrix& other);

  friend bool operator==(const CsrMatrix&, const CsrMatrix&) = default;

 private:
  friend class CscMatrix;
  friend void build_transpose(const CsrMatrix& a, CsrMatrix& out,
                              std::vector<std::uint32_t>& perm);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> row_ptr_;  // rows + 1 entries
  std::vector<std::uint32_t> col_idx_;  // nnz entries, ascending per row
  std::vector<double> values_;          // nnz entries
};

/// Compressed sparse column: per column, ascending row indices. Built from
/// a CsrMatrix it remembers the slot permutation, so a solver that updates
/// the CSR's values each epoch can refill the CSC in O(nnz) without
/// rebuilding structure.
class CscMatrix {
 public:
  CscMatrix() = default;

  static CscMatrix from_dense(const Matrix& dense);
  /// Transposes structure + values; remembers the csr->csc slot map.
  static CscMatrix from_csr(const CsrMatrix& csr);

  /// Overwrites values from a CSR with the identical pattern this CSC was
  /// built from (O(nnz), no allocation). Throws if this CSC was not built
  /// by from_csr or the nnz count changed.
  void refill_from_csr(const CsrMatrix& csr);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }
  double density() const;
  std::size_t bytes() const;

  const std::uint32_t* col_ptr() const { return col_ptr_.data(); }
  const std::uint32_t* row_idx() const { return row_idx_.data(); }
  const double* values() const { return values_.data(); }

  Matrix to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> col_ptr_;  // cols + 1 entries
  std::vector<std::uint32_t> row_idx_;  // nnz entries, ascending per column
  std::vector<double> values_;
  std::vector<std::uint32_t> csr_perm_;  // csc slot -> csr slot (from_csr)
};

/// Builds `out` = a^T as a CsrMatrix and fills `perm` so that
/// out.values[s] == a.values[perm[s]]. refill_transpose re-applies the map
/// after a's values change (pattern must be unchanged).
void build_transpose(const CsrMatrix& a, CsrMatrix& out,
                     std::vector<std::uint32_t>& perm);
void refill_transpose(const CsrMatrix& a, CsrMatrix& out,
                      const std::vector<std::uint32_t>& perm);

// --- kernels -----------------------------------------------------------
// Every `workers` parameter follows kernels.h rule 2 (fixed kRowBlock
// partition of output rows; results bit-identical for any worker count).

/// out = a * b (SpMM into dense). Reference: kernels::multiply_into on
/// a.to_dense() — same ascending-k axpy with the same zero skip.
void multiply_into(const CsrMatrix& a, const Matrix& b, Matrix& out,
                   std::size_t workers = 1);

/// out = a^T * b without materializing the transpose: a arrives in CSC
/// form, whose columns are the output rows. Reference:
/// kernels::transpose_multiply_into on a.to_dense().
void transpose_multiply_into(const CscMatrix& a, const Matrix& b, Matrix& out,
                             std::size_t workers = 1);

/// Fused dense residual out = r - u * v^T with r sparse. Reference:
/// kernels::residual_into on r.to_dense(): unstored cells compute
/// 0.0 - dot (not -dot — the bits differ for a +/-0 result).
void residual_into(const CsrMatrix& r, const Matrix& u, const Matrix& v,
                   Matrix& out, std::size_t workers = 1);

/// Masked residual, dense destination: out(i,j) = value - dot(u_i, v_j) at
/// stored cells, 0 elsewhere. Only stored cells pay a dot — O(nnz * rank).
/// Reference: kernels::masked_residual_into with mask == the pattern
/// (i.e. a CsrMatrix built by from_dense_masked).
void masked_residual_into(const CsrMatrix& observed, const Matrix& u,
                          const Matrix& v, Matrix& out, std::size_t workers = 1);

/// Masked residual, sparse destination: same arithmetic, but the residual
/// values land in `out`'s value array over `observed`'s pattern (copied on
/// first use, reused after). Nothing rows x cols is ever written — the
/// epoch-loop form for catalogs whose dense residual would not fit.
void masked_residual_values(const CsrMatrix& observed, const Matrix& u,
                            const Matrix& v, CsrMatrix& out,
                            std::size_t workers = 1);

/// Fused symmetric residual out = s - f * f^T, upper triangle + bit-copy
/// mirror. Precondition: s bitwise symmetric. Reference:
/// kernels::syrk_residual_into on s.to_dense().
void syrk_residual_into(const CsrMatrix& s, const Matrix& f, Matrix& out,
                        std::size_t workers = 1);

/// Sparse-source form of kernels::fused_sub_multiply_add_into: for each
/// source s ascending, grad += factors[s] * ((sources[s] - m) * f). Diff
/// rows are materialized into scratch by a CSR gap walk (0.0 - m for
/// unstored cells — identical bits to the dense subtraction), then fed to
/// the shared accumulate_scaled_products interleave. Bitwise equal to the
/// dense kernel on to_dense() sources.
void fused_sub_multiply_add_into(Matrix& grad,
                                 const std::vector<CsrMatrix>& sources,
                                 const Matrix& m, const Matrix& f,
                                 const std::vector<double>& factors,
                                 Matrix& scratch, std::size_t workers = 1);

/// sum over stored cells of a(i,j) * dot(u.row(i), v.row(j)) — the
/// <A, U V^T> inner product the Gram-identity objectives use. Serial,
/// ascending (row, col, k): deterministic, O(nnz * rank).
double inner_product_uv(const CsrMatrix& a, const Matrix& u, const Matrix& v);

/// ||s - m||_F over the full dense shape, with s sparse. Reference:
/// Matrix::frobenius_distance(s.to_dense(), m) — same flat ascending
/// reduction, unstored cells contributing (0.0 - m[i])^2.
double frobenius_distance(const CsrMatrix& s, const Matrix& m);

/// Gauss-Newton Hessian application for masked factorization (MF):
/// out.row(i) = sum over stored j in row i of (p.row(i) . g.row(j)) *
/// g.row(j). Row-partitioned over out rows; per row the j walk ascends in
/// stored order and each axpy ascends in c — deterministic. O(nnz * rank).
void masked_gram_apply(const CsrMatrix& pattern, const Matrix& g,
                       const Matrix& p, Matrix& out, std::size_t workers = 1);

/// Same operator for the transposed side: out.row(j) accumulates over
/// stored i in column j of `pattern` (CSC), i.e. the V-side Hessian.
void masked_gram_apply(const CscMatrix& pattern, const Matrix& g,
                       const Matrix& p, Matrix& out, std::size_t workers = 1);

}  // namespace hc::analytics::sparse
