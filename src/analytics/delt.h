// DELT — Drug Effects on Laboratory Tests (Section V.B, Figs 10-11;
// Ghalwash, Li, Zhang & Hu, CIKM 2017 [46]).
//
// Extended Self-Controlled Case Series model over longitudinal lab values:
//
//   y_ij = alpha_i + gamma_i * t_ij + sum_d beta_d * x_ijd + eps
//
//   alpha_i  patient-specific baseline ("since there is a range of standard
//            values ... the value alpha_i is patient-specific and learned
//            from the data")
//   gamma_i  patient-specific time drift absorbing aging/comorbidity
//            confounders (Fig 11)
//   beta_d   the global effect of drug d on the lab value — the signal of
//            interest; strongly negative beta on HbA1c = repositioning
//            candidate for blood-sugar control
//
// Fit by alternating ridge least squares: coordinate descent on beta given
// (alpha, gamma), closed-form per-patient 2-parameter regression given
// beta. The paper's contributions map to config flags so the ablation
// bench can switch them off: model_baseline=false collapses alpha_i to a
// global mean; model_drift=false forces gamma_i = 0.
//
// The comparator marginal_correlation_effects() is the prior-art approach:
// per-drug mean difference between exposed and unexposed measurements,
// pooled across patients — exactly what co-medication and comorbidity
// confounders defeat.
#pragma once

#include <functional>
#include <vector>

#include "analytics/emr.h"

namespace hc::analytics {

/// Fit state at an iteration boundary, as seen by DeltConfig::epoch_hook.
/// `drug_sum` is the incrementally-maintained per-row sum_d beta_d x_rd —
/// checkpointing must carry it verbatim (recomputing it from beta gives
/// different floating-point bits, breaking byte-identical resume).
/// References are valid only during the call.
struct DeltEpochView {
  int iteration = 0;  // 0-based iteration that just completed
  const std::vector<double>& drug_effects;
  const std::vector<double>& patient_baselines;
  const std::vector<double>& patient_drifts;
  const std::vector<double>& drug_sum;
  const std::vector<double>& objective_history;
};

/// May throw to abort the fit exactly at an iteration boundary.
using DeltEpochHook = std::function<void(const DeltEpochView&)>;

/// Checkpointed fit state; resuming replays the remaining iterations to the
/// byte-identical final model. On the use_newton_cg path (a single solve),
/// next_iteration > 0 means the solve already completed and the restored
/// state IS the final model.
struct DeltResume {
  int next_iteration = 0;
  std::vector<double> drug_effects;
  std::vector<double> patient_baselines;
  std::vector<double> patient_drifts;
  std::vector<double> drug_sum;
  std::vector<double> objective_history;
};

struct DeltConfig {
  int iterations = 25;
  double ridge = 1.0;
  bool model_baseline = true;  // ablation: per-patient alpha_i
  bool model_drift = true;     // ablation: per-patient gamma_i
  /// Worker threads for the per-patient (alpha, gamma) solves. Each patient
  /// is solved wholly by one worker with its sums accumulated serially, so
  /// results are bit-identical for any worker count. The beta coordinate
  /// descent and the SSE reduction stay serial by design — parallelizing
  /// them would reorder summation.
  std::size_t workers = 1;
  /// Drives the beta coordinate descent off a compressed exposure matrix
  /// (rows x drugs CSC built through sparse::CsrMatrix::from_triplets)
  /// instead of per-drug index vectors. The CSC column walk visits the
  /// same rows in the same ascending order, so the fit is bitwise
  /// identical to the default path.
  bool use_sparse = false;
  /// Second-order path: the alternating fit is replaced by ONE truncated-CG
  /// solve of the joint ridge least-squares system over
  /// theta = [alpha | gamma | beta] (blocks gated by model_baseline /
  /// model_drift, ridge on beta only) with a Jacobi preconditioner. The
  /// model is linear, so a single Newton step is exact up to the CG
  /// tolerance: objective_history gets a single entry whose SSE matches the
  /// coordinate-descent path's converged value. Byte-reproducible across
  /// worker counts and reruns.
  bool use_newton_cg = false;
  std::size_t cg_iterations = 200;
  double cg_tolerance = 1e-10;
  /// Iteration-boundary callback (checkpointing, crash injection).
  DeltEpochHook epoch_hook;
  /// Resume from a checkpointed state (see DeltResume). Must outlive the call.
  const DeltResume* resume = nullptr;
};

struct DeltModel {
  std::vector<double> drug_effects;        // beta per drug
  std::vector<double> patient_baselines;   // alpha per patient
  std::vector<double> patient_drifts;      // gamma per patient
  std::vector<double> objective_history;   // SSE per iteration
  /// Resident bytes of the fit's working state (flattened row table,
  /// exposure index, scratch vectors) at exit — end == peak, nothing
  /// shrinks mid-fit.
  std::size_t peak_workspace_bytes = 0;
};

DeltModel fit_delt(const EmrDataset& dataset, const DeltConfig& config);

/// Prior-art baseline: per-drug (mean exposed value - mean unexposed value)
/// with no per-patient modeling.
std::vector<double> marginal_correlation_effects(const EmrDataset& dataset);

struct RecoveryMetrics {
  double auc = 0.0;            // ranking -beta against planted ground truth
  double precision_at_n = 0.0; // n = number of planted drugs
  double effect_rmse = 0.0;    // beta vs true effect over planted drugs
};

/// Scores how well estimated effects recover the planted lowering drugs.
RecoveryMetrics score_recovery(const std::vector<double>& estimated_effects,
                               const EmrDataset& dataset);

}  // namespace hc::analytics
