#include "analytics/emr.h"

#include <algorithm>
#include <map>
#include <set>

namespace hc::analytics {

EmrDataset make_emr_dataset(const EmrConfig& config, Rng& rng) {
  EmrDataset dataset;
  dataset.drug_count = config.drugs;
  dataset.true_effects.assign(config.drugs, 0.0);
  dataset.is_planted.assign(config.drugs, false);
  dataset.is_confounded.assign(config.drugs, false);

  // Plant the effective drugs first, then mark a disjoint confounded set.
  std::vector<std::uint32_t> drug_ids(config.drugs);
  for (std::uint32_t d = 0; d < config.drugs; ++d) drug_ids[d] = d;
  rng.shuffle(drug_ids);

  for (std::size_t i = 0; i < config.planted_drugs && i < drug_ids.size(); ++i) {
    std::uint32_t d = drug_ids[i];
    dataset.is_planted[d] = true;
    dataset.true_effects[d] = config.effect_mean + rng.normal(0.0, config.effect_sd);
  }
  for (std::size_t i = config.planted_drugs;
       i < config.planted_drugs + config.confounded_drugs && i < drug_ids.size(); ++i) {
    dataset.is_confounded[drug_ids[i]] = true;
  }

  std::vector<std::uint32_t> confounded_pool;
  for (std::uint32_t d = 0; d < config.drugs; ++d) {
    if (dataset.is_confounded[d]) confounded_pool.push_back(d);
  }

  dataset.patients.reserve(config.patients);
  for (std::size_t p = 0; p < config.patients; ++p) {
    EmrPatient patient;
    patient.pseudonym = "pseu-emr-" + std::to_string(p);
    patient.comorbid = rng.bernoulli(config.comorbidity_probability);
    patient.true_baseline =
        rng.normal(config.baseline_mean, config.baseline_sd) +
        (patient.comorbid ? config.comorbidity_baseline_shift : 0.0);
    patient.true_drift = rng.normal(config.drift_mean, config.drift_sd);

    // Medication list: random drugs. HEALTHY (non-comorbid, lower-baseline)
    // patients preferentially take the confounded set — so those innocent
    // drugs' exposed measurements skew low and marginal correlation
    // mistakes them for HbA1c-lowering drugs. Patient-specific baselines
    // absorb the skew, which is exactly DELT's contribution.
    std::set<std::uint32_t> med_list;
    std::size_t meds = 1 + static_cast<std::size_t>(rng.uniform_int(
                               0, static_cast<std::int64_t>(
                                      config.medications_per_patient * 2 - 1)));
    meds = std::min(meds, config.drugs);  // can't exceed the formulary
    while (med_list.size() < meds) {
      if (!patient.comorbid && !confounded_pool.empty() && rng.bernoulli(0.5)) {
        med_list.insert(confounded_pool[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(confounded_pool.size()) - 1))]);
      } else {
        med_list.insert(static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(config.drugs) - 1)));
      }
    }

    // Each prescription starts at some visit and persists afterwards —
    // exposure therefore correlates with time, which is exactly why the
    // paper adds the t_ij drift term (Fig 11): aging raises HbA1c over the
    // same late visits where exposure concentrates, masking true lowering
    // effects unless drift is modeled.
    std::map<std::uint32_t, int> start_of;
    for (std::uint32_t d : med_list) {
      start_of[d] =
          static_cast<int>(rng.uniform_int(0, config.measurements_per_patient - 1));
    }

    for (int j = 0; j < config.measurements_per_patient; ++j) {
      EmrMeasurement m;
      m.time = static_cast<double>(j) + rng.uniform(0.0, 0.3);
      double effect_sum = 0.0;
      for (std::uint32_t d : med_list) {
        if (j >= start_of[d] && rng.bernoulli(config.exposure_probability)) {
          m.exposures.push_back(d);
          effect_sum += dataset.true_effects[d];
        }
      }
      std::sort(m.exposures.begin(), m.exposures.end());
      m.value = patient.true_baseline + patient.true_drift * m.time + effect_sum +
                rng.normal(0.0, config.noise_sd);
      patient.measurements.push_back(std::move(m));
    }
    dataset.patients.push_back(std::move(patient));
  }
  return dataset;
}

void CohortStats::merge(const CohortStats& other) {
  patients += other.patients;
  comorbid += other.comorbid;
  measurements += other.measurements;
  value_sum_micro += other.value_sum_micro;
  baseline_sum_micro += other.baseline_sum_micro;
  exposure_events += other.exposure_events;
}

double CohortStats::mean_value() const {
  if (measurements == 0) return 0.0;
  return static_cast<double>(value_sum_micro) / 1e6 /
         static_cast<double>(measurements);
}

std::int64_t to_micro(double value) {
  const double scaled = value * 1e6;
  return static_cast<std::int64_t>(scaled < 0.0 ? scaled - 0.5 : scaled + 0.5);
}

CohortStats patient_stats(const EmrPatient& patient) {
  CohortStats stats;
  stats.patients = 1;
  stats.comorbid = patient.comorbid ? 1 : 0;
  stats.baseline_sum_micro = to_micro(patient.true_baseline);
  for (const EmrMeasurement& m : patient.measurements) {
    ++stats.measurements;
    stats.value_sum_micro += to_micro(m.value);
    stats.exposure_events += static_cast<std::int64_t>(m.exposures.size());
  }
  return stats;
}

CohortStats cohort_stats(const std::vector<const EmrPatient*>& patients) {
  CohortStats stats;
  for (const EmrPatient* patient : patients) {
    if (patient != nullptr) stats.merge(patient_stats(*patient));
  }
  return stats;
}

}  // namespace hc::analytics
