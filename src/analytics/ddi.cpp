#include "analytics/ddi.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "exec/executor.h"

namespace hc::analytics {

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

DdiPredictor::DdiPredictor(std::vector<Matrix> similarities)
    : similarities_(std::move(similarities)) {
  if (similarities_.empty()) {
    throw std::invalid_argument("DdiPredictor needs at least one similarity source");
  }
  weights_.assign(similarities_.size() + 1, 0.0);  // + bias
}

std::vector<double> DdiPredictor::pair_features(const DrugPair& pair) const {
  std::vector<double> features(similarities_.size(), 0.0);
  for (std::size_t s = 0; s < similarities_.size(); ++s) {
    const Matrix& sim = similarities_[s];
    double best = 0.0;
    for (const auto& [k, l] : known_positives_) {
      // Skip self-matching when the candidate IS a known pair (training).
      if ((k == pair.first && l == pair.second) ||
          (k == pair.second && l == pair.first)) {
        continue;
      }
      double direct = std::min(sim(pair.first, k), sim(pair.second, l));
      double crossed = std::min(sim(pair.first, l), sim(pair.second, k));
      best = std::max(best, std::max(direct, crossed));
    }
    features[s] = best;
  }
  return features;
}

void DdiPredictor::train(const std::vector<DrugPair>& positive_pairs,
                         const std::vector<DrugPair>& negative_pairs,
                         const DdiConfig& config) {
  known_positives_ = positive_pairs;

  struct Example {
    std::vector<double> features;
    double label;
  };
  std::size_t n_positive = positive_pairs.size();
  std::vector<Example> examples(n_positive + negative_pairs.size());
  if (examples.empty()) throw std::invalid_argument("DdiPredictor::train: no examples");
  // Feature extraction is the dominant cost (every example scans every
  // known positive per source); each example fills only its own slot, so
  // the fan-out is deterministic.
  exec::parallel_for(
      examples.size(), config.workers,
      [&](std::size_t i) {
        const DrugPair& pair =
            i < n_positive ? positive_pairs[i] : negative_pairs[i - n_positive];
        examples[i] = Example{pair_features(pair), i < n_positive ? 1.0 : 0.0};
      },
      /*grain=*/16);

  std::size_t n_features = similarities_.size();
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::vector<double> gradient(n_features + 1, 0.0);
    for (const auto& example : examples) {
      double z = weights_[n_features];  // bias
      for (std::size_t f = 0; f < n_features; ++f) {
        z += weights_[f] * example.features[f];
      }
      double error = sigmoid(z) - example.label;
      for (std::size_t f = 0; f < n_features; ++f) {
        gradient[f] += error * example.features[f];
      }
      gradient[n_features] += error;
    }
    double scale = config.learning_rate / static_cast<double>(examples.size());
    for (std::size_t f = 0; f <= n_features; ++f) {
      weights_[f] -= scale * gradient[f] + config.regularization * weights_[f];
    }
  }
}

double DdiPredictor::predict(const DrugPair& pair) const {
  auto features = pair_features(pair);
  double z = weights_.back();
  for (std::size_t f = 0; f < features.size(); ++f) z += weights_[f] * features[f];
  return sigmoid(z);
}

DdiWorkload make_ddi_workload(std::size_t drugs, std::size_t groups, Rng& rng) {
  if (groups < 4) throw std::invalid_argument("make_ddi_workload: need >= 4 groups");
  DdiWorkload workload;

  // Latent group per drug; similarity = high within group, noise across.
  std::vector<std::size_t> group_of(drugs);
  for (std::size_t d = 0; d < drugs; ++d) {
    group_of[d] = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(groups) - 1));
  }
  auto make_similarity = [&](double noise) {
    Matrix sim(drugs, drugs);
    for (std::size_t i = 0; i < drugs; ++i) {
      sim(i, i) = 1.0;
      for (std::size_t j = i + 1; j < drugs; ++j) {
        double base = group_of[i] == group_of[j] ? 0.8 : 0.1;
        double v = std::clamp(base + rng.normal(0.0, noise), 0.0, 1.0);
        sim(i, j) = v;
        sim(j, i) = v;
      }
    }
    return sim;
  };
  workload.similarities.push_back(make_similarity(0.05));  // "structure"
  workload.similarities.push_back(make_similarity(0.15));  // "targets"
  workload.similarities.push_back(make_similarity(0.30));  // "side effects"

  // Ground truth: group pairs (0,1) and (2,3) interact.
  auto interacts = [&](std::size_t a, std::size_t b) {
    auto ga = group_of[a], gb = group_of[b];
    if (ga > gb) std::swap(ga, gb);
    return (ga == 0 && gb == 1) || (ga == 2 && gb == 3);
  };

  std::vector<DrugPair> positives, negatives;
  for (std::size_t a = 0; a < drugs; ++a) {
    for (std::size_t b = a + 1; b < drugs; ++b) {
      (interacts(a, b) ? positives : negatives).emplace_back(a, b);
    }
  }
  rng.shuffle(positives);
  rng.shuffle(negatives);

  // 60/40 train/test on positives; balanced negatives.
  std::size_t train_pos = positives.size() * 6 / 10;
  workload.train_positives.assign(positives.begin(),
                                  positives.begin() + static_cast<std::ptrdiff_t>(train_pos));
  std::size_t train_neg = std::min(negatives.size(), workload.train_positives.size() * 2);
  workload.train_negatives.assign(negatives.begin(),
                                  negatives.begin() + static_cast<std::ptrdiff_t>(train_neg));

  for (std::size_t i = train_pos; i < positives.size(); ++i) {
    workload.test_pairs.push_back(positives[i]);
    workload.test_labels.push_back(true);
  }
  std::size_t test_neg = std::min(negatives.size() - train_neg,
                                  positives.size() - train_pos);
  for (std::size_t i = train_neg; i < train_neg + test_neg; ++i) {
    workload.test_pairs.push_back(negatives[i]);
    workload.test_labels.push_back(false);
  }
  return workload;
}

}  // namespace hc::analytics
