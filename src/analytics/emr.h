// Synthetic EMR generator for DELT (Section V.B).
//
// DESIGN.md substitution: the paper evaluates DELT on Explorys/Truven
// MarketScan EMR data we cannot ship. This generator produces longitudinal
// HbA1c series with exactly the structure DELT models:
//   - patient-specific baselines alpha_i ("extremely diverse HbA1c level
//     profiles ... because of their age, gender, and ethnicity"),
//   - per-patient time drift gamma_i ("aging and comorbidities", Fig 11),
//   - joint exposure to multiple co-medications,
//   - a small set of *planted* drugs with real HbA1c-lowering effects, and
//   - a comorbidity confounder: comorbid patients run higher baselines,
//     while a set of innocent drugs is taken preferentially by the
//     *healthy* (low-baseline) population — so those drugs' exposed
//     measurements skew low and marginal correlation reports them as
//     false-positive "lowering" signals. Patient-specific baselines absorb
//     the skew, which is DELT's contribution.
// Ground truth is retained so recovery can be scored.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace hc::analytics {

struct EmrConfig {
  std::size_t patients = 2000;
  std::size_t drugs = 150;
  std::size_t planted_drugs = 10;      // true HbA1c-lowering drugs
  double effect_mean = -0.6;           // mean planted effect (HbA1c %)
  double effect_sd = 0.2;
  int measurements_per_patient = 8;
  std::size_t medications_per_patient = 4;  // average med-list size
  double exposure_probability = 0.75;  // med active at a given measurement
  double baseline_mean = 6.0;
  double baseline_sd = 0.8;
  double drift_mean = 0.08;            // HbA1c/interval from aging
  double drift_sd = 0.05;
  double noise_sd = 0.25;
  double comorbidity_probability = 0.4;
  double comorbidity_baseline_shift = 1.2;
  std::size_t confounded_drugs = 8;    // innocent drugs tied to comorbidity
};

struct EmrMeasurement {
  double time = 0.0;                      // intervals since first visit
  double value = 0.0;                     // HbA1c %
  std::vector<std::uint32_t> exposures;   // drug ids active at this visit
};

struct EmrPatient {
  std::string pseudonym;
  bool comorbid = false;
  double true_baseline = 0.0;
  double true_drift = 0.0;
  std::vector<EmrMeasurement> measurements;
};

struct EmrDataset {
  std::vector<EmrPatient> patients;
  std::size_t drug_count = 0;
  std::vector<double> true_effects;  // per drug; 0 for inert drugs
  std::vector<bool> is_planted;      // per drug
  std::vector<bool> is_confounded;   // per drug (innocent but comorbidity-linked)
};

EmrDataset make_emr_dataset(const EmrConfig& config, Rng& rng);

/// Cohort aggregate over EMR patients in *fixed-point micro-units*
/// (1e-6 of an HbA1c %). Integer accumulators make the reduction
/// associative and commutative, so a cross-shard scatter-gather reduces
/// to the bitwise-identical result in any grouping — the property that
/// keeps analytics aggregates placement-invariant across 1/2/4/8
/// shard-hosts (doubles would drift with summation order).
struct CohortStats {
  std::int64_t patients = 0;
  std::int64_t comorbid = 0;
  std::int64_t measurements = 0;
  std::int64_t value_sum_micro = 0;     // sum of HbA1c values, micro-units
  std::int64_t baseline_sum_micro = 0;  // sum of true baselines, micro-units
  std::int64_t exposure_events = 0;     // drug-active-at-visit count

  /// Merge another shard's partial (the scatter-gather reduce_fn).
  void merge(const CohortStats& other);

  /// Mean HbA1c across measurements, back in doubles for reporting.
  double mean_value() const;

  friend bool operator==(const CohortStats&, const CohortStats&) = default;
};

/// Rounds a double to fixed-point micro-units (ties away from zero).
std::int64_t to_micro(double value);

/// CohortStats over one patient (the per-record map step).
CohortStats patient_stats(const EmrPatient& patient);

/// CohortStats over a set of patients — what one shard-host computes for
/// its slice in the scatter-gather path.
CohortStats cohort_stats(const std::vector<const EmrPatient*>& patients);

}  // namespace hc::analytics
