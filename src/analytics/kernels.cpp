#include "analytics/kernels.h"

#include <algorithm>
#include <stdexcept>

#include "exec/executor.h"

namespace hc::analytics::kernels {

namespace {

/// Runs fn(row_begin, row_end) over fixed kRowBlock-sized row blocks. The
/// decomposition depends only on `rows`, never on `workers`, so the write
/// pattern (and the arithmetic inside each block) is worker-count
/// invariant; parallel_for only changes which thread executes a block.
void for_row_blocks(std::size_t rows, std::size_t workers,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
  std::size_t blocks = (rows + kRowBlock - 1) / kRowBlock;
  exec::parallel_for(blocks, workers, [&](std::size_t block) {
    std::size_t begin = block * kRowBlock;
    fn(begin, std::min(rows, begin + kRowBlock));
  });
}

/// One ascending-k dot product — the exact reduction Matrix methods use.
inline double dot1(const double* a, const double* b, std::size_t n) {
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum += a[k] * b[k];
  return sum;
}

/// Four independent ascending-k dot products sharing one pass over `a`.
/// Each sum is still a single accumulator reduced in ascending k order, so
/// every cell is bit-identical to dot1; interleaving four cells only breaks
/// the FP-add latency chain that serializes a lone short dot (the factor
/// ranks here are ~10, so a solo dot is latency-bound, not flop-bound).
inline void dot4(const double* a, const double* b0, const double* b1,
                 const double* b2, const double* b3, std::size_t n, double& s0,
                 double& s1, double& s2, double& s3) {
  double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    double av = a[k];
    t0 += av * b0[k];
    t1 += av * b1[k];
    t2 += av * b2[k];
    t3 += av * b3[k];
  }
  s0 = t0;
  s1 = t1;
  s2 = t2;
  s3 = t3;
}

}  // namespace

void multiply_into(const Matrix& a, const Matrix& b, Matrix& out,
                   std::size_t workers) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("kernels::multiply_into: shape mismatch");
  }
  out.resize(a.rows(), b.cols());
  std::size_t inner = a.cols();
  std::size_t width = b.cols();
  // Per output cell both branches accumulate the identical sequence
  // (ascending k, skipping zero a(i, k)) into a single accumulator, so
  // they produce the same bits as Matrix::multiply's axpy loop; the
  // narrow-B branch just keeps the accumulators in registers (B's rows
  // are L1-resident for the factor widths the solvers use) instead of
  // read-modify-writing the output row per k.
  if (width <= 32) {
    for_row_blocks(a.rows(), workers, [&](std::size_t begin, std::size_t end) {
      // Raw pointers/strides in locals: loads through the std::function
      // capture cannot be hoisted out of the k-loops (the compiler cannot
      // prove the output stores don't alias the Matrix structs), locals
      // provably don't alias anything.
      const double* adata = a.row(0);
      const double* bdata = b.row(0);
      double* odata = out.row(0);
      for (std::size_t i = begin; i < end; ++i) {
        const double* arow = adata + i * inner;
        double* orow = odata + i * width;
        std::size_t j = 0;
        for (; j + 4 <= width; j += 4) {
          double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
          for (std::size_t k = 0; k < inner; ++k) {
            double v = arow[k];
            if (v == 0.0) continue;
            const double* brow = bdata + k * width + j;
            a0 += v * brow[0];
            a1 += v * brow[1];
            a2 += v * brow[2];
            a3 += v * brow[3];
          }
          orow[j] = a0;
          orow[j + 1] = a1;
          orow[j + 2] = a2;
          orow[j + 3] = a3;
        }
        for (; j < width; ++j) {
          double acc = 0.0;
          for (std::size_t k = 0; k < inner; ++k) {
            double v = arow[k];
            if (v != 0.0) acc += v * bdata[k * width + j];
          }
          orow[j] = acc;
        }
      }
    });
    return;
  }
  for_row_blocks(a.rows(), workers, [&](std::size_t begin, std::size_t end) {
    const double* adata = a.row(0);
    const double* bdata = b.row(0);
    double* odata = out.row(0);
    for (std::size_t i = begin; i < end; ++i) {
      const double* arow = adata + i * inner;
      double* orow = odata + i * width;
      for (std::size_t j = 0; j < width; ++j) orow[j] = 0.0;
      for (std::size_t k = 0; k < inner; ++k) {
        double v = arow[k];
        if (v == 0.0) continue;
        const double* brow = bdata + k * width;
        for (std::size_t j = 0; j < width; ++j) orow[j] += v * brow[j];
      }
    }
  });
}

void multiply_transposed_into(const Matrix& a, const Matrix& b, Matrix& out,
                              std::size_t workers) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("kernels::multiply_transposed_into: shape mismatch");
  }
  out.resize(a.rows(), b.rows());
  std::size_t inner = a.cols();
  std::size_t width = b.rows();
  for_row_blocks(a.rows(), workers, [&](std::size_t begin, std::size_t end) {
    // j-tiling keeps a kColBlock slice of B's rows hot across the whole
    // row block; cells are computed four dots at a time (see dot4).
    const double* adata = a.row(0);
    const double* bdata = b.row(0);
    double* odata = out.row(0);
    for (std::size_t j0 = 0; j0 < width; j0 += kColBlock) {
      std::size_t j1 = std::min(width, j0 + kColBlock);
      for (std::size_t i = begin; i < end; ++i) {
        const double* arow = adata + i * inner;
        double* orow = odata + i * width;
        std::size_t j = j0;
        for (; j + 4 <= j1; j += 4) {
          const double* brow = bdata + j * inner;
          dot4(arow, brow, brow + inner, brow + 2 * inner, brow + 3 * inner,
               inner, orow[j], orow[j + 1], orow[j + 2], orow[j + 3]);
        }
        for (; j < j1; ++j) orow[j] = dot1(arow, bdata + j * inner, inner);
      }
    }
  });
}

void transpose_multiply_into(const Matrix& a, const Matrix& b, Matrix& out,
                             std::size_t workers) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("kernels::transpose_multiply_into: shape mismatch");
  }
  out.resize(a.cols(), b.cols());
  std::size_t depth = a.rows();
  std::size_t width = b.cols();
  std::size_t across = a.cols();
  for_row_blocks(across, workers, [&](std::size_t begin, std::size_t end) {
    const double* adata = a.row(0);
    const double* bdata = b.row(0);
    double* odata = out.row(0);
    for (std::size_t j = begin; j < end; ++j) {
      double* orow = odata + j * width;
      for (std::size_t c = 0; c < width; ++c) orow[c] = 0.0;
    }
    // One streaming pass over A and B; out(j, :) accumulates with k
    // ascending and the same zero-skip a.transpose().multiply(b) applies.
    for (std::size_t k = 0; k < depth; ++k) {
      const double* arow = adata + k * across;
      const double* brow = bdata + k * width;
      for (std::size_t j = begin; j < end; ++j) {
        double v = arow[j];
        if (v == 0.0) continue;
        double* orow = odata + j * width;
        for (std::size_t c = 0; c < width; ++c) orow[c] += v * brow[c];
      }
    }
  });
}

void transpose_into(const Matrix& a, Matrix& out) {
  out.resize(a.cols(), a.rows());
  constexpr std::size_t kTile = 32;
  for (std::size_t r0 = 0; r0 < a.rows(); r0 += kTile) {
    std::size_t r1 = std::min(a.rows(), r0 + kTile);
    for (std::size_t c0 = 0; c0 < a.cols(); c0 += kTile) {
      std::size_t c1 = std::min(a.cols(), c0 + kTile);
      for (std::size_t r = r0; r < r1; ++r) {
        for (std::size_t c = c0; c < c1; ++c) out(c, r) = a(r, c);
      }
    }
  }
}

void syrk_into(const Matrix& f, Matrix& out, std::size_t workers) {
  std::size_t n = f.rows();
  std::size_t inner = f.cols();
  out.resize(n, n);
  // Pass 1: upper triangle (j >= i), four dots at a time per cell row.
  for_row_blocks(n, workers, [&](std::size_t begin, std::size_t end) {
    const double* fdata = f.row(0);
    double* odata = out.row(0);
    for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
      std::size_t j1 = std::min(n, j0 + kColBlock);
      for (std::size_t i = begin; i < end; ++i) {
        if (j1 <= i) continue;
        const double* arow = fdata + i * inner;
        double* orow = odata + i * n;
        std::size_t j = std::max(i, j0);
        for (; j + 4 <= j1; j += 4) {
          const double* brow = fdata + j * inner;
          dot4(arow, brow, brow + inner, brow + 2 * inner, brow + 3 * inner,
               inner, orow[j], orow[j + 1], orow[j + 2], orow[j + 3]);
        }
        for (; j < j1; ++j) orow[j] = dot1(arow, fdata + j * inner, inner);
      }
    }
  });
  // Pass 2 (after the implicit barrier): mirror the strict lower triangle.
  // A bit copy, so out stays bitwise equal to the full computation.
  for_row_blocks(n, workers, [&](std::size_t begin, std::size_t end) {
    double* odata = out.row(0);
    for (std::size_t i = begin; i < end; ++i) {
      double* orow = odata + i * n;
      for (std::size_t j = 0; j < i; ++j) orow[j] = odata[j * n + i];
    }
  });
}

void sub_into(const Matrix& s, const Matrix& m, Matrix& out, std::size_t workers) {
  if (!s.same_shape(m)) {
    throw std::invalid_argument("kernels::sub_into: shape mismatch");
  }
  out.resize(s.rows(), s.cols());
  std::size_t width = s.cols();
  for_row_blocks(s.rows(), workers, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const double* srow = s.row(i);
      const double* mrow = m.row(i);
      double* orow = out.row(i);
      for (std::size_t j = 0; j < width; ++j) orow[j] = srow[j] - mrow[j];
    }
  });
}

void residual_into(const Matrix& r, const Matrix& u, const Matrix& v, Matrix& out,
                   std::size_t workers) {
  if (u.cols() != v.cols() || r.rows() != u.rows() || r.cols() != v.rows()) {
    throw std::invalid_argument("kernels::residual_into: shape mismatch");
  }
  out.resize(r.rows(), r.cols());
  std::size_t inner = u.cols();
  std::size_t width = v.rows();
  for_row_blocks(r.rows(), workers, [&](std::size_t begin, std::size_t end) {
    const double* udata = u.row(0);
    const double* vdata = v.row(0);
    const double* rdata = r.row(0);
    double* odata = out.row(0);
    for (std::size_t j0 = 0; j0 < width; j0 += kColBlock) {
      std::size_t j1 = std::min(width, j0 + kColBlock);
      for (std::size_t i = begin; i < end; ++i) {
        const double* urow = udata + i * inner;
        const double* rrow = rdata + i * width;
        double* orow = odata + i * width;
        std::size_t j = j0;
        for (; j + 4 <= j1; j += 4) {
          const double* vrow = vdata + j * inner;
          double s0, s1, s2, s3;
          dot4(urow, vrow, vrow + inner, vrow + 2 * inner, vrow + 3 * inner,
               inner, s0, s1, s2, s3);
          orow[j] = rrow[j] - s0;
          orow[j + 1] = rrow[j + 1] - s1;
          orow[j + 2] = rrow[j + 2] - s2;
          orow[j + 3] = rrow[j + 3] - s3;
        }
        for (; j < j1; ++j) {
          orow[j] = rrow[j] - dot1(urow, vdata + j * inner, inner);
        }
      }
    }
  });
}

void masked_residual_into(const Matrix& observed, const Matrix& mask, const Matrix& u,
                          const Matrix& v, Matrix& out, std::size_t workers) {
  if (!observed.same_shape(mask) || u.cols() != v.cols() ||
      observed.rows() != u.rows() || observed.cols() != v.rows()) {
    throw std::invalid_argument("kernels::masked_residual_into: shape mismatch");
  }
  out.resize(observed.rows(), observed.cols());
  std::size_t inner = u.cols();
  std::size_t width = observed.cols();
  for_row_blocks(observed.rows(), workers, [&](std::size_t begin, std::size_t end) {
    const double* obs_data = observed.row(0);
    const double* mdata = mask.row(0);
    const double* udata = u.row(0);
    const double* vdata = v.row(0);
    double* odata = out.row(0);
    for (std::size_t j0 = 0; j0 < width; j0 += kColBlock) {
      std::size_t j1 = std::min(width, j0 + kColBlock);
      for (std::size_t i = begin; i < end; ++i) {
        const double* orow = obs_data + i * width;
        const double* mrow = mdata + i * width;
        const double* urow = udata + i * inner;
        double* rrow = odata + i * width;
        std::size_t j = j0;
        for (; j + 4 <= j1; j += 4) {
          if (mrow[j] == 0.0 || mrow[j + 1] == 0.0 || mrow[j + 2] == 0.0 ||
              mrow[j + 3] == 0.0) {
            for (std::size_t jj = j; jj < j + 4; ++jj) {
              rrow[jj] = mrow[jj] == 0.0
                             ? 0.0
                             : orow[jj] - dot1(urow, vdata + jj * inner, inner);
            }
            continue;
          }
          const double* vrow = vdata + j * inner;
          double s0, s1, s2, s3;
          dot4(urow, vrow, vrow + inner, vrow + 2 * inner, vrow + 3 * inner,
               inner, s0, s1, s2, s3);
          rrow[j] = orow[j] - s0;
          rrow[j + 1] = orow[j + 1] - s1;
          rrow[j + 2] = orow[j + 2] - s2;
          rrow[j + 3] = orow[j + 3] - s3;
        }
        for (; j < j1; ++j) {
          rrow[j] = mrow[j] == 0.0
                        ? 0.0
                        : orow[j] - dot1(urow, vdata + j * inner, inner);
        }
      }
    }
  });
}

void syrk_residual_into(const Matrix& s, const Matrix& f, Matrix& out,
                        std::size_t workers) {
  if (s.rows() != s.cols() || s.rows() != f.rows()) {
    throw std::invalid_argument("kernels::syrk_residual_into: shape mismatch");
  }
  std::size_t n = s.rows();
  std::size_t inner = f.cols();
  out.resize(n, n);
  for_row_blocks(n, workers, [&](std::size_t begin, std::size_t end) {
    const double* fdata = f.row(0);
    const double* sdata = s.row(0);
    double* odata = out.row(0);
    for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
      std::size_t j1 = std::min(n, j0 + kColBlock);
      for (std::size_t i = begin; i < end; ++i) {
        if (j1 <= i) continue;
        const double* arow = fdata + i * inner;
        const double* srow = sdata + i * n;
        double* orow = odata + i * n;
        std::size_t j = std::max(i, j0);
        for (; j + 4 <= j1; j += 4) {
          const double* brow = fdata + j * inner;
          double s0, s1, s2, s3;
          dot4(arow, brow, brow + inner, brow + 2 * inner, brow + 3 * inner,
               inner, s0, s1, s2, s3);
          orow[j] = srow[j] - s0;
          orow[j + 1] = srow[j + 1] - s1;
          orow[j + 2] = srow[j + 2] - s2;
          orow[j + 3] = srow[j + 3] - s3;
        }
        for (; j < j1; ++j) {
          orow[j] = srow[j] - dot1(arow, fdata + j * inner, inner);
        }
      }
    }
  });
  for_row_blocks(n, workers, [&](std::size_t begin, std::size_t end) {
    double* odata = out.row(0);
    for (std::size_t i = begin; i < end; ++i) {
      double* orow = odata + i * n;
      for (std::size_t j = 0; j < i; ++j) orow[j] = odata[j * n + i];
    }
  });
}

void sub_multiply_add_into(Matrix& grad, const Matrix& s, const Matrix& m,
                           const Matrix& f, double factor, Matrix& scratch,
                           std::size_t workers) {
  if (!s.same_shape(m) || s.cols() != f.rows() || grad.rows() != s.rows() ||
      grad.cols() != f.cols()) {
    throw std::invalid_argument("kernels::sub_multiply_add_into: shape mismatch");
  }
  scratch.resize(grad.rows(), grad.cols());
  std::size_t inner = s.cols();
  std::size_t width = f.cols();
  for_row_blocks(grad.rows(), workers, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const double* srow = s.row(i);
      const double* mrow = m.row(i);
      double* acc = scratch.row(i);  // row product, L1-resident
      for (std::size_t j = 0; j < width; ++j) acc[j] = 0.0;
      for (std::size_t k = 0; k < inner; ++k) {
        double v = srow[k] - mrow[k];
        if (v == 0.0) continue;
        const double* frow = f.row(k);
        for (std::size_t j = 0; j < width; ++j) acc[j] += v * frow[j];
      }
      double* grow = grad.row(i);
      for (std::size_t j = 0; j < width; ++j) grow[j] += factor * acc[j];
    }
  });
}

void fused_sub_multiply_add_into(Matrix& grad, const std::vector<Matrix>& sources,
                                 const Matrix& m, const Matrix& f,
                                 const std::vector<double>& factors,
                                 Matrix& scratch, std::size_t workers) {
  if (factors.size() != sources.size()) {
    throw std::invalid_argument(
        "kernels::fused_sub_multiply_add_into: factors/sources size mismatch");
  }
  for (const Matrix& s : sources) {
    if (!s.same_shape(m)) {
      throw std::invalid_argument(
          "kernels::fused_sub_multiply_add_into: shape mismatch");
    }
  }
  if (m.cols() != f.rows() || grad.rows() != m.rows() || grad.cols() != f.cols()) {
    throw std::invalid_argument(
        "kernels::fused_sub_multiply_add_into: shape mismatch");
  }
  // Per row: materialize each source's diff row (s - m) once into the
  // scratch row — the subtractions are the same values the sequential
  // kernels compute — then form each gradient cell as a register-resident
  // ascending-k dot over the diff row, with the same skip of zero diffs
  // that the axpy formulation applies. Per grad cell, sources still apply
  // in ascending s order, so bits match the sequential-call composition.
  std::size_t count = sources.size();
  std::size_t inner = m.cols();
  std::size_t width = f.cols();
  scratch.resize(grad.rows(), count * inner);
  for_row_blocks(grad.rows(), workers, [&](std::size_t begin, std::size_t end) {
    // Locals for every pointer the inner loops touch — see multiply_into.
    const double* fdata = f.row(0);
    const double* mdata = m.row(0);
    const Matrix* srcs = sources.data();
    const double* fac = factors.data();
    double* gdata = grad.row(0);
    double* sdata = scratch.row(0);
    for (std::size_t i = begin; i < end; ++i) {
      const double* mrow = mdata + i * inner;
      double* diff = sdata + i * count * inner;
      for (std::size_t s = 0; s < count; ++s) {
        const double* srow = srcs[s].row(i);
        double* drow = diff + s * inner;
        for (std::size_t k = 0; k < inner; ++k) drow[k] = srow[k] - mrow[k];
      }
      double* grow = gdata + i * width;
      for (std::size_t s = 0; s < count; ++s) {
        accumulate_scaled_products(grow, diff + s * inner, fdata, fac[s], inner,
                                   width);
      }
    }
  });
}

void accumulate_scaled_products(double* grow, const double* drow,
                                const double* fdata, double factor,
                                std::size_t inner, std::size_t width) {
  // Adaptive 8/4/2/1-cell interleave: eight accumulator chains are what it
  // takes to saturate the FP add ports against the long (inner ~ n)
  // reduction; narrower groups mop up the remainder.
  std::size_t j = 0;
  for (; j + 8 <= width; j += 8) {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    double a4 = 0.0, a5 = 0.0, a6 = 0.0, a7 = 0.0;
    for (std::size_t k = 0; k < inner; ++k) {
      double v = drow[k];
      if (v == 0.0) continue;
      const double* frow = fdata + k * width + j;
      a0 += v * frow[0];
      a1 += v * frow[1];
      a2 += v * frow[2];
      a3 += v * frow[3];
      a4 += v * frow[4];
      a5 += v * frow[5];
      a6 += v * frow[6];
      a7 += v * frow[7];
    }
    grow[j] += factor * a0;
    grow[j + 1] += factor * a1;
    grow[j + 2] += factor * a2;
    grow[j + 3] += factor * a3;
    grow[j + 4] += factor * a4;
    grow[j + 5] += factor * a5;
    grow[j + 6] += factor * a6;
    grow[j + 7] += factor * a7;
  }
  if (j + 4 <= width) {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t k = 0; k < inner; ++k) {
      double v = drow[k];
      if (v == 0.0) continue;
      const double* frow = fdata + k * width + j;
      a0 += v * frow[0];
      a1 += v * frow[1];
      a2 += v * frow[2];
      a3 += v * frow[3];
    }
    grow[j] += factor * a0;
    grow[j + 1] += factor * a1;
    grow[j + 2] += factor * a2;
    grow[j + 3] += factor * a3;
    j += 4;
  }
  if (j + 2 <= width) {
    double a0 = 0.0, a1 = 0.0;
    for (std::size_t k = 0; k < inner; ++k) {
      double v = drow[k];
      if (v == 0.0) continue;
      const double* frow = fdata + k * width + j;
      a0 += v * frow[0];
      a1 += v * frow[1];
    }
    grow[j] += factor * a0;
    grow[j + 1] += factor * a1;
    j += 2;
  }
  if (j < width) {
    double acc = 0.0;
    for (std::size_t k = 0; k < inner; ++k) {
      double v = drow[k];
      if (v != 0.0) acc += v * fdata[k * width + j];
    }
    grow[j] += factor * acc;
  }
}

void residual_transpose_multiply_into(const Matrix& r, const Matrix& u,
                                      const Matrix& v, const Matrix& f, Matrix& out,
                                      std::size_t workers) {
  if (u.cols() != v.cols() || r.rows() != u.rows() || r.cols() != v.rows() ||
      f.rows() != r.rows()) {
    throw std::invalid_argument(
        "kernels::residual_transpose_multiply_into: shape mismatch");
  }
  out.resize(r.cols(), f.cols());
  std::size_t depth = r.rows();
  std::size_t rank = u.cols();
  std::size_t width = f.cols();
  std::size_t cols = r.cols();
  for_row_blocks(cols, workers, [&](std::size_t begin, std::size_t end) {
    const double* udata = u.row(0);
    const double* rdata = r.row(0);
    const double* fdata = f.row(0);
    const double* vdata = v.row(0);
    double* odata = out.row(0);
    for (std::size_t j = begin; j < end; ++j) {
      double* orow = odata + j * width;
      for (std::size_t c = 0; c < width; ++c) orow[c] = 0.0;
    }
    for (std::size_t k = 0; k < depth; ++k) {
      const double* urow = udata + k * rank;
      const double* rrow = rdata + k * cols;
      const double* frow = fdata + k * width;
      // Residual dots four output rows at a time; the axpys that consume
      // them land on distinct out rows, so their relative order is free.
      auto axpy = [&](std::size_t j, double val) {
        if (val == 0.0) return;
        double* orow = odata + j * width;
        for (std::size_t c = 0; c < width; ++c) orow[c] += val * frow[c];
      };
      std::size_t j = begin;
      for (; j + 4 <= end; j += 4) {
        const double* vrow = vdata + j * rank;
        double d0, d1, d2, d3;
        dot4(urow, vrow, vrow + rank, vrow + 2 * rank, vrow + 3 * rank, rank,
             d0, d1, d2, d3);
        axpy(j, rrow[j] - d0);
        axpy(j + 1, rrow[j + 1] - d1);
        axpy(j + 2, rrow[j + 2] - d2);
        axpy(j + 3, rrow[j + 3] - d3);
      }
      for (; j < end; ++j) {
        axpy(j, rrow[j] - dot1(urow, vdata + j * rank, rank));
      }
    }
  });
}

void add_scaled_into(Matrix& dst, const Matrix& src, double factor,
                     std::size_t workers) {
  if (!dst.same_shape(src)) {
    throw std::invalid_argument("kernels::add_scaled_into: shape mismatch");
  }
  std::size_t width = dst.cols();
  for_row_blocks(dst.rows(), workers, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      double* drow = dst.row(i);
      const double* srow = src.row(i);
      for (std::size_t j = 0; j < width; ++j) drow[j] += factor * srow[j];
    }
  });
}

void clamp_nonnegative(Matrix& m, std::size_t workers) {
  std::size_t width = m.cols();
  for_row_blocks(m.rows(), workers, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      double* row = m.row(i);
      for (std::size_t j = 0; j < width; ++j) row[j] = std::max(0.0, row[j]);
    }
  });
}

}  // namespace hc::analytics::kernels
