#include "analytics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hc::analytics {

namespace {

std::vector<std::size_t> rank_descending(const std::vector<double>& scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  return order;
}

/// Average ranks (1-based) with ties shared.
std::vector<double> fractional_ranks(const std::vector<double>& values) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(values.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && values[order[j + 1]] == values[order[i]]) ++j;
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double auc_roc(const std::vector<double>& scores, const std::vector<bool>& labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("auc_roc: size mismatch");
  }
  std::size_t positives = 0;
  for (bool label : labels) positives += label ? 1 : 0;
  std::size_t negatives = labels.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  // Rank-sum (Mann-Whitney) with tie correction via fractional ranks.
  auto ranks = fractional_ranks(scores);
  double positive_rank_sum = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i]) positive_rank_sum += ranks[i];
  }
  double u = positive_rank_sum -
             static_cast<double>(positives) * (static_cast<double>(positives) + 1) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

double auc_pr(const std::vector<double>& scores, const std::vector<bool>& labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("auc_pr: size mismatch");
  }
  std::size_t positives = 0;
  for (bool label : labels) positives += label ? 1 : 0;
  if (positives == 0) return 0.0;

  auto order = rank_descending(scores);
  double area = 0.0;
  double prev_recall = 0.0;
  std::size_t tp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    // A block of tied scores is one threshold: all its items enter the
    // ranking together, so precision/recall only exist at the block's end.
    // Walking item-by-item here would make the result depend on how
    // stable_sort happened to order positives within the tie.
    std::size_t j = i;
    std::size_t block_tp = 0;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) {
      if (labels[order[j]]) ++block_tp;
      ++j;
    }
    if (block_tp > 0) {
      tp += block_tp;
      double recall = static_cast<double>(tp) / static_cast<double>(positives);
      double precision = static_cast<double>(tp) / static_cast<double>(j);
      area += (recall - prev_recall) * precision;
      prev_recall = recall;
    }
    i = j;
  }
  return area;
}

double precision_at_k(const std::vector<double>& scores, const std::vector<bool>& labels,
                      std::size_t k) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("precision_at_k: size mismatch");
  }
  if (k == 0) return 0.0;
  auto order = rank_descending(scores);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < std::min(k, order.size()); ++i) {
    hits += labels[order[i]] ? 1 : 0;
  }
  // Divide by the requested k, not the candidate count: asked for k
  // results, anything short of that is a miss.
  return static_cast<double>(hits) / static_cast<double>(k);
}

double rmse(const std::vector<double>& predicted, const std::vector<double>& actual) {
  if (predicted.size() != actual.size() || predicted.empty()) {
    throw std::invalid_argument("rmse: size mismatch or empty");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    double d = predicted[i] - actual[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(predicted.size()));
}

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) {
    throw std::invalid_argument("spearman: need equal sizes >= 2");
  }
  auto ra = fractional_ranks(a);
  auto rb = fractional_ranks(b);
  double mean = (static_cast<double>(a.size()) + 1.0) / 2.0;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double da = ra[i] - mean, db = rb[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace hc::analytics
