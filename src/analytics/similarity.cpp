#include "analytics/similarity.h"

#include <cmath>
#include <stdexcept>

#include "exec/executor.h"

namespace hc::analytics {

double tanimoto(const Fingerprint& a, const Fingerprint& b) {
  if (a.size() != b.size()) throw std::invalid_argument("tanimoto: size mismatch");
  std::size_t intersection = 0, uni = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    bool ai = a[i] != 0, bi = b[i] != 0;
    intersection += (ai && bi) ? 1 : 0;
    uni += (ai || bi) ? 1 : 0;
  }
  if (uni == 0) return 1.0;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

double cosine(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("cosine: size mismatch");
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

Matrix similarity_matrix(const std::vector<Fingerprint>& fingerprints,
                         std::size_t workers) {
  std::size_t n = fingerprints.size();
  Matrix sim(n, n);
  exec::parallel_for(
      n, workers,
      [&](std::size_t i) {
        sim(i, i) = 1.0;
        for (std::size_t j = i + 1; j < n; ++j) {
          double s = tanimoto(fingerprints[i], fingerprints[j]);
          sim(i, j) = s;
          sim(j, i) = s;
        }
      },
      /*grain=*/8);
  return sim;
}

Matrix cosine_similarity_matrix(const std::vector<std::vector<double>>& profiles,
                                std::size_t workers) {
  std::size_t n = profiles.size();
  Matrix sim(n, n);
  exec::parallel_for(
      n, workers,
      [&](std::size_t i) {
        sim(i, i) = 1.0;
        for (std::size_t j = i + 1; j < n; ++j) {
          double s = cosine(profiles[i], profiles[j]);
          sim(i, j) = s;
          sim(j, i) = s;
        }
      },
      /*grain=*/8);
  return sim;
}

}  // namespace hc::analytics
