#include "analytics/matrix.h"

#include <cmath>
#include <stdexcept>

namespace hc::analytics {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::random(std::size_t rows, std::size_t cols, Rng& rng, double lo,
                      double hi) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.uniform(lo, hi);
  return m;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix& Matrix::fill(double value) {
  for (auto& v : data_) v = value;
  return *this;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = other.row(k);
      double* orow = out.row(i);
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::multiply_transposed(const Matrix& other) const {
  if (cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::multiply_transposed: shape mismatch");
  }
  Matrix out(rows_, other.rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* arow = row(i);
    for (std::size_t j = 0; j < other.rows_; ++j) {
      const double* brow = other.row(j);
      double sum = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) sum += arow[k] * brow[k];
      out(i, j) = sum;
    }
  }
  return out;
}

Matrix& Matrix::add_scaled(const Matrix& other, double factor) {
  if (!same_shape(other)) throw std::invalid_argument("Matrix::add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += factor * other.data_[i];
  return *this;
}

Matrix& Matrix::scale(double factor) {
  for (auto& v : data_) v *= factor;
  return *this;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

std::size_t Matrix::nnz() const {
  std::size_t count = 0;
  for (double v : data_) count += v != 0.0 ? 1 : 0;
  return count;
}

double Matrix::density() const {
  if (data_.empty()) return 0.0;
  return static_cast<double>(nnz()) / static_cast<double>(data_.size());
}

double Matrix::frobenius_distance(const Matrix& other) const {
  if (!same_shape(other)) {
    throw std::invalid_argument("Matrix::frobenius_distance: shape mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    double d = data_[i] - other.data_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace hc::analytics
