// Joint Matrix Factorization for drug repositioning (Section V.A, Fig 9;
// Zhang, Wang & Hu, AMIA 2014 [38]).
//
// JMF integrates the known drug-disease association matrix R with multiple
// drug similarity sources (chemical structure, target protein, side
// effects) and multiple disease similarity sources (phenotype, ontology,
// disease genes):
//
//   min_{U,V >= 0}  ||R - U V'||_F^2
//                 + mu * sum_i alpha_i ||D_i - U U'||_F^2
//                 + mu * sum_j beta_j  ||S_j - V V'||_F^2
//                 + lambda (||U||^2 + ||V||^2)
//
// solved by projected gradient descent on U and V, with the source
// importance weights alpha/beta given the closed-form entropy-regularized
// update  alpha_i ∝ exp(-fit_error_i / gamma)  — the paper's claim (2):
// "JMF can determine interpretable importance of different information
// sources during the prediction". Claim (3)'s drug/disease groups fall out
// of the factors: entity e belongs to group argmax_k U(e, k).
//
// The synthetic workload generator plants ground-truth latent structure and
// per-source noise so benchmarks can verify that (a) JMF beats single-
// source MF and GBA on held-out associations and (b) cleaner sources earn
// higher weights.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "analytics/matrix.h"
#include "analytics/solver/newton.h"
#include "analytics/sparse.h"
#include "common/rng.h"

namespace hc::analytics {

/// Solver state at an epoch boundary, as seen by an epoch hook. References
/// point into live solver state and are valid only during the call — a hook
/// that checkpoints copies what it keeps (hc::ckpt does exactly that).
struct JmfEpochView {
  int epoch = 0;  // 0-based index of the epoch that just completed
  const Matrix& u;
  const Matrix& v;
  const std::vector<double>& drug_source_weights;
  const std::vector<double>& disease_source_weights;
  const std::vector<double>& objective_history;
};

/// Called after every completed epoch, on every solver path. May throw to
/// abort the fit at an exact epoch boundary (the crash harness's
/// SimulatedCrash) — nothing after the boundary has run, so a resumed fit
/// replays the remaining epochs bit-identically.
using JmfEpochHook = std::function<void(const JmfEpochView&)>;

/// Checkpointed solver state: everything the epoch loop carries across
/// epochs. Resuming from epoch k replays epochs k..epochs-1 and lands on
/// the byte-identical final state of an uninterrupted run — the epoch
/// kernels are deterministic and `rng` is only consumed by the (skipped)
/// factor initialization.
struct JmfResume {
  int next_epoch = 0;  // first epoch still to run
  Matrix u, v;
  std::vector<double> drug_source_weights;
  std::vector<double> disease_source_weights;
  std::vector<double> objective_history;
};

struct JmfConfig {
  std::size_t rank = 15;
  double learning_rate = 0.02;
  double regularization = 0.05;     // lambda
  double similarity_weight = 0.25;  // mu
  double weight_temperature = 1.0;  // gamma in the alpha/beta update
  int epochs = 150;
  /// Row-partition width for the epoch kernels. Results are bit-identical
  /// for any value (see kernels.h); more workers only changes wall time.
  std::size_t workers = 1;
  /// false selects the seed triple-loop implementation — kept as the
  /// benchmark baseline and the reference the kernel path is tested
  /// bit-exact against. Ignores `workers`.
  bool use_fast_kernels = true;
  /// Selects the sparse compute plane: R and the similarity sources are
  /// consumed as CSR and the epoch kernels walk stored nonzeros. The
  /// first-order sparse epoch is bitwise identical to the dense fast path
  /// (sparse kernels shadow the dense ones cell for cell — see sparse.h).
  bool use_sparse = false;
  /// Second-order path: per epoch, a short run of damped Gauss-Newton
  /// steps per factor block with truncated-CG inner solves, objectives
  /// and gradients formed
  /// through Gram identities (U^T U, V^T V) so nothing drugs x drugs or
  /// drugs x diseases is ever materialized. Implies the sparse plane. A
  /// different algorithm than gradient descent — not bitwise against it —
  /// but byte-reproducible across worker counts and reruns, and reaches the
  /// first-order path's final objective in >= 10x fewer epochs (see
  /// EXPERIMENTS.md F13). `epochs` then counts Newton epochs.
  bool use_newton_cg = false;
  /// Inner-solve schedule for use_newton_cg (fixed — part of the
  /// deterministic trajectory, never adapted from wall clock).
  std::size_t cg_iterations = 25;
  double cg_tolerance = 1e-2;
  /// Damped Newton iterations per factor block per epoch (the alternating
  /// outer loop converges much faster when each block is polished a few
  /// steps before the other side moves). A block's run stops early when a
  /// line search rejects every trial.
  std::size_t newton_inner_steps = 3;
  /// When false, result.scores is left empty (use result.factor_u /
  /// factor_v). The completed-association matrix is the one unavoidable
  /// drugs x diseases dense object — catalog-scale runs skip it.
  bool materialize_scores = true;
  /// Epoch-boundary callback (checkpointing, crash injection). Null = off.
  JmfEpochHook epoch_hook;
  /// Resume from a checkpointed state: the factor-init draws on `rng` are
  /// skipped, weights/history are restored, and the loop starts at
  /// resume->next_epoch. The pointee must outlive the solve.
  const JmfResume* resume = nullptr;
};

/// The solver-side view of a JMF problem on the sparse plane: built once
/// (make_jmf_sparse_inputs) and reused across solves. The CSC mirror of R
/// feeds R^T U without materializing a transpose.
struct JmfSparseInputs {
  sparse::CsrMatrix associations;
  sparse::CscMatrix associations_csc;
  std::vector<sparse::CsrMatrix> drug_similarities;
  std::vector<sparse::CsrMatrix> disease_similarities;

  /// Resident bytes across all compressed structures (for the bench's
  /// equal-memory catalog comparisons).
  std::size_t bytes() const;
};

JmfSparseInputs make_jmf_sparse_inputs(
    const Matrix& associations, const std::vector<Matrix>& drug_similarities,
    const std::vector<Matrix>& disease_similarities);

/// Epoch-loop scratch. Matrices are resized on first use and reused every
/// epoch after — a warm workspace makes the solver allocation-free. Reuse
/// one workspace across solves of the same problem shape to skip even the
/// warm-up allocations.
struct JmfWorkspace {
  Matrix uuT, vvT;        // shared F F^T per side (syrk, computed once/epoch)
  Matrix residual;        // R - U V^T
  Matrix diff;            // per-source S_i - F F^T
  Matrix grad_u, grad_v;  // accumulated gradients
  Matrix grad_src;        // fused per-source gradient accumulators
  std::vector<double> factors;  // per-source weights for the fused kernel

  // Second-order (Newton-CG) scratch. Everything here is
  // O((drugs + diseases) * rank + rank^2) — the memory headroom the sparse
  // path's catalog scaling rides on.
  Matrix utu, vtv;           // Gram matrices U^T U, V^T V
  Matrix obj_gram;           // trial-point Gram inside objective closures
  Matrix rv;                 // R V (or R^T U) for the gradient
  Matrix sim_mul;            // D_i U (or S_j V) per source
  Matrix grad_n;             // gradient of the active block
  Matrix h_tmp, h_ptu;       // Hessian-apply scratch
  solver::NewtonWorkspace newton_u, newton_v;
};

struct JmfResult {
  Matrix scores;                            // completed associations U V^T
  Matrix factor_u, factor_v;                // final factors (always set)
  std::vector<double> drug_source_weights;  // alpha, sums to 1
  std::vector<double> disease_source_weights;  // beta, sums to 1
  std::vector<std::size_t> drug_groups;     // argmax factor per drug
  std::vector<std::size_t> disease_groups;
  std::vector<double> objective_history;    // per-epoch objective value
  /// Resident bytes of the epoch workspace plus both factor blocks at the
  /// end of the solve (workspaces never shrink, so end == peak). Inputs are
  /// caller-owned and counted by the caller.
  std::size_t peak_workspace_bytes = 0;
};

/// Runs JMF. `drug_similarities` and `disease_similarities` must be square
/// matrices matching R's rows/cols respectively; at least one of each.
/// `workspace` (optional) lets callers keep the epoch scratch warm across
/// solves; pass nullptr for a solver-local one.
JmfResult joint_matrix_factorization(const Matrix& associations,
                                     const std::vector<Matrix>& drug_similarities,
                                     const std::vector<Matrix>& disease_similarities,
                                     const JmfConfig& config, Rng& rng,
                                     JmfWorkspace* workspace = nullptr);

/// Sparse-plane entry point: same solver, inputs already compressed (the
/// dense entry converts and delegates here when config.use_sparse or
/// config.use_newton_cg is set). config.use_fast_kernels is ignored.
JmfResult joint_matrix_factorization(const JmfSparseInputs& inputs,
                                     const JmfConfig& config, Rng& rng,
                                     JmfWorkspace* workspace = nullptr);

/// Synthetic drug-disease benchmark data with known ground truth.
struct DrugDiseaseWorkload {
  Matrix truth;     // full binary association matrix
  Matrix observed;  // training matrix: held-out positives zeroed
  std::vector<Matrix> drug_similarities;     // noisy views of latent sim
  std::vector<Matrix> disease_similarities;
  std::vector<double> drug_source_noise;     // noise sd per source (ascending)
  std::vector<double> disease_source_noise;
  std::vector<std::pair<std::size_t, std::size_t>> held_out;  // positive cells
};

struct WorkloadConfig {
  std::size_t drugs = 150;
  std::size_t diseases = 100;
  std::size_t latent_rank = 8;
  double held_out_fraction = 0.2;
  std::vector<double> drug_source_noise = {0.05, 0.15, 0.40};
  std::vector<double> disease_source_noise = {0.05, 0.15, 0.40};
  double association_density = 0.08;  // approximate fraction of positives
};

DrugDiseaseWorkload make_drug_disease_workload(const WorkloadConfig& config, Rng& rng);

/// Scores the held-out positives of `workload` against an equal number of
/// sampled true-negative cells; returns AUC-ROC of `scores` on that set.
double evaluate_held_out_auc(const Matrix& scores, const DrugDiseaseWorkload& workload,
                             Rng& rng);

}  // namespace hc::analytics
