// Joint Matrix Factorization for drug repositioning (Section V.A, Fig 9;
// Zhang, Wang & Hu, AMIA 2014 [38]).
//
// JMF integrates the known drug-disease association matrix R with multiple
// drug similarity sources (chemical structure, target protein, side
// effects) and multiple disease similarity sources (phenotype, ontology,
// disease genes):
//
//   min_{U,V >= 0}  ||R - U V'||_F^2
//                 + mu * sum_i alpha_i ||D_i - U U'||_F^2
//                 + mu * sum_j beta_j  ||S_j - V V'||_F^2
//                 + lambda (||U||^2 + ||V||^2)
//
// solved by projected gradient descent on U and V, with the source
// importance weights alpha/beta given the closed-form entropy-regularized
// update  alpha_i ∝ exp(-fit_error_i / gamma)  — the paper's claim (2):
// "JMF can determine interpretable importance of different information
// sources during the prediction". Claim (3)'s drug/disease groups fall out
// of the factors: entity e belongs to group argmax_k U(e, k).
//
// The synthetic workload generator plants ground-truth latent structure and
// per-source noise so benchmarks can verify that (a) JMF beats single-
// source MF and GBA on held-out associations and (b) cleaner sources earn
// higher weights.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "analytics/matrix.h"
#include "common/rng.h"

namespace hc::analytics {

struct JmfConfig {
  std::size_t rank = 15;
  double learning_rate = 0.02;
  double regularization = 0.05;     // lambda
  double similarity_weight = 0.25;  // mu
  double weight_temperature = 1.0;  // gamma in the alpha/beta update
  int epochs = 150;
  /// Row-partition width for the epoch kernels. Results are bit-identical
  /// for any value (see kernels.h); more workers only changes wall time.
  std::size_t workers = 1;
  /// false selects the seed triple-loop implementation — kept as the
  /// benchmark baseline and the reference the kernel path is tested
  /// bit-exact against. Ignores `workers`.
  bool use_fast_kernels = true;
};

/// Epoch-loop scratch. Matrices are resized on first use and reused every
/// epoch after — a warm workspace makes the solver allocation-free. Reuse
/// one workspace across solves of the same problem shape to skip even the
/// warm-up allocations.
struct JmfWorkspace {
  Matrix uuT, vvT;        // shared F F^T per side (syrk, computed once/epoch)
  Matrix residual;        // R - U V^T
  Matrix diff;            // per-source S_i - F F^T
  Matrix grad_u, grad_v;  // accumulated gradients
  Matrix grad_src;        // fused per-source gradient accumulators
  std::vector<double> factors;  // per-source weights for the fused kernel
};

struct JmfResult {
  Matrix scores;                            // completed associations U V^T
  std::vector<double> drug_source_weights;  // alpha, sums to 1
  std::vector<double> disease_source_weights;  // beta, sums to 1
  std::vector<std::size_t> drug_groups;     // argmax factor per drug
  std::vector<std::size_t> disease_groups;
  std::vector<double> objective_history;    // per-epoch objective value
};

/// Runs JMF. `drug_similarities` and `disease_similarities` must be square
/// matrices matching R's rows/cols respectively; at least one of each.
/// `workspace` (optional) lets callers keep the epoch scratch warm across
/// solves; pass nullptr for a solver-local one.
JmfResult joint_matrix_factorization(const Matrix& associations,
                                     const std::vector<Matrix>& drug_similarities,
                                     const std::vector<Matrix>& disease_similarities,
                                     const JmfConfig& config, Rng& rng,
                                     JmfWorkspace* workspace = nullptr);

/// Synthetic drug-disease benchmark data with known ground truth.
struct DrugDiseaseWorkload {
  Matrix truth;     // full binary association matrix
  Matrix observed;  // training matrix: held-out positives zeroed
  std::vector<Matrix> drug_similarities;     // noisy views of latent sim
  std::vector<Matrix> disease_similarities;
  std::vector<double> drug_source_noise;     // noise sd per source (ascending)
  std::vector<double> disease_source_noise;
  std::vector<std::pair<std::size_t, std::size_t>> held_out;  // positive cells
};

struct WorkloadConfig {
  std::size_t drugs = 150;
  std::size_t diseases = 100;
  std::size_t latent_rank = 8;
  double held_out_fraction = 0.2;
  std::vector<double> drug_source_noise = {0.05, 0.15, 0.40};
  std::vector<double> disease_source_noise = {0.05, 0.15, 0.40};
  double association_density = 0.08;  // approximate fraction of positives
};

DrugDiseaseWorkload make_drug_disease_workload(const WorkloadConfig& config, Rng& rng);

/// Scores the held-out positives of `workload` against an equal number of
/// sampled true-negative cells; returns AUC-ROC of `scores` on that set.
double evaluate_held_out_auc(const Matrix& scores, const DrugDiseaseWorkload& workload,
                             Rng& rng);

}  // namespace hc::analytics
