#include "analytics/mf.h"

#include <algorithm>
#include <stdexcept>

namespace hc::analytics {

double MfModel::predict(std::size_t row, std::size_t col) const {
  const double* ur = u.row(row);
  const double* vr = v.row(col);
  double sum = 0.0;
  for (std::size_t k = 0; k < u.cols(); ++k) sum += ur[k] * vr[k];
  return sum;
}

MfModel factorize(const Matrix& observed, const Matrix& mask, const MfConfig& config,
                  Rng& rng) {
  if (!observed.same_shape(mask)) {
    throw std::invalid_argument("factorize: observed/mask shape mismatch");
  }
  std::size_t rows = observed.rows();
  std::size_t cols = observed.cols();

  MfModel model;
  model.u = Matrix::random(rows, config.rank, rng, 0.0, 0.1);
  model.v = Matrix::random(cols, config.rank, rng, 0.0, 0.1);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Residual on observed cells.
    Matrix residual(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        if (mask(i, j) != 0.0) residual(i, j) = observed(i, j) - model.predict(i, j);
      }
    }
    // Gradient step: U += lr*(E V - reg U); V += lr*(E^T U - reg V).
    Matrix grad_u = residual.multiply(model.v);
    grad_u.add_scaled(model.u, -config.regularization);
    Matrix grad_v = residual.transpose().multiply(model.u);
    grad_v.add_scaled(model.v, -config.regularization);

    model.u.add_scaled(grad_u, config.learning_rate);
    model.v.add_scaled(grad_v, config.learning_rate);

    // Non-negativity projection keeps factors interpretable.
    for (std::size_t i = 0; i < rows; ++i) {
      double* row = model.u.row(i);
      for (std::size_t k = 0; k < config.rank; ++k) row[k] = std::max(0.0, row[k]);
    }
    for (std::size_t j = 0; j < cols; ++j) {
      double* row = model.v.row(j);
      for (std::size_t k = 0; k < config.rank; ++k) row[k] = std::max(0.0, row[k]);
    }
  }
  return model;
}

Matrix guilt_by_association(const Matrix& associations, const Matrix& entity_similarity) {
  if (entity_similarity.rows() != associations.rows() ||
      entity_similarity.rows() != entity_similarity.cols()) {
    throw std::invalid_argument("guilt_by_association: shape mismatch");
  }
  std::size_t n = associations.rows();
  std::size_t m = associations.cols();
  Matrix scores(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    double total_sim = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      if (k != i) total_sim += entity_similarity(i, k);
    }
    if (total_sim == 0.0) continue;
    for (std::size_t k = 0; k < n; ++k) {
      if (k == i) continue;
      double w = entity_similarity(i, k) / total_sim;
      if (w == 0.0) continue;
      for (std::size_t j = 0; j < m; ++j) scores(i, j) += w * associations(k, j);
    }
  }
  return scores;
}

}  // namespace hc::analytics
