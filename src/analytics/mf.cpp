#include "analytics/mf.h"

#include <algorithm>
#include <stdexcept>

#include "analytics/kernels.h"

namespace hc::analytics {

double MfModel::predict(std::size_t row, std::size_t col) const {
  const double* ur = u.row(row);
  const double* vr = v.row(col);
  double sum = 0.0;
  for (std::size_t k = 0; k < u.cols(); ++k) sum += ur[k] * vr[k];
  return sum;
}

MfModel factorize(const Matrix& observed, const Matrix& mask, const MfConfig& config,
                  Rng& rng, MfWorkspace* workspace) {
  if (!observed.same_shape(mask)) {
    throw std::invalid_argument("factorize: observed/mask shape mismatch");
  }
  std::size_t rows = observed.rows();
  std::size_t cols = observed.cols();

  MfModel model;
  model.u = Matrix::random(rows, config.rank, rng, 0.0, 0.1);
  model.v = Matrix::random(cols, config.rank, rng, 0.0, 0.1);

  MfWorkspace local_workspace;
  MfWorkspace& ws = workspace ? *workspace : local_workspace;
  std::size_t w = config.workers;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Residual on observed cells: the per-cell operator()/predict() walk of
    // the seed is fused into one row-pointer kernel pass.
    kernels::masked_residual_into(observed, mask, model.u, model.v, ws.residual, w);
    // Gradient step: U += lr*(E V - reg U); V += lr*(E^T U - reg V). Both
    // gradients read the pre-update factors, so compute them before either
    // factor moves.
    kernels::multiply_into(ws.residual, model.v, ws.grad_u, w);
    kernels::add_scaled_into(ws.grad_u, model.u, -config.regularization, w);
    kernels::transpose_multiply_into(ws.residual, model.u, ws.grad_v, w);
    kernels::add_scaled_into(ws.grad_v, model.v, -config.regularization, w);

    kernels::add_scaled_into(model.u, ws.grad_u, config.learning_rate, w);
    kernels::add_scaled_into(model.v, ws.grad_v, config.learning_rate, w);

    // Non-negativity projection keeps factors interpretable.
    kernels::clamp_nonnegative(model.u, w);
    kernels::clamp_nonnegative(model.v, w);
  }
  return model;
}

Matrix guilt_by_association(const Matrix& associations, const Matrix& entity_similarity) {
  if (entity_similarity.rows() != associations.rows() ||
      entity_similarity.rows() != entity_similarity.cols()) {
    throw std::invalid_argument("guilt_by_association: shape mismatch");
  }
  std::size_t n = associations.rows();
  std::size_t m = associations.cols();
  Matrix scores(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    double total_sim = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      if (k != i) total_sim += entity_similarity(i, k);
    }
    if (total_sim == 0.0) continue;
    for (std::size_t k = 0; k < n; ++k) {
      if (k == i) continue;
      double w = entity_similarity(i, k) / total_sim;
      if (w == 0.0) continue;
      for (std::size_t j = 0; j < m; ++j) scores(i, j) += w * associations(k, j);
    }
  }
  return scores;
}

}  // namespace hc::analytics
