#include "analytics/mf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analytics/kernels.h"

namespace hc::analytics {

namespace {

std::size_t newton_ws_bytes(const solver::NewtonWorkspace& ws) {
  return ws.cg.r.allocated_bytes() + ws.cg.z.allocated_bytes() +
         ws.cg.p.allocated_bytes() + ws.cg.hp.allocated_bytes() +
         ws.neg_grad.allocated_bytes() + ws.direction.allocated_bytes() +
         ws.trial.allocated_bytes();
}

std::size_t mf_workspace_bytes(const MfWorkspace& ws) {
  return ws.residual.allocated_bytes() + ws.grad_u.allocated_bytes() +
         ws.grad_v.allocated_bytes() + ws.residual_sparse.bytes() +
         ws.residual_csc.bytes() + newton_ws_bytes(ws.newton_u) +
         newton_ws_bytes(ws.newton_v);
}

void mf_notify_epoch(const MfConfig& config, int epoch, const MfModel& model) {
  if (!config.epoch_hook) return;
  config.epoch_hook(MfEpochView{epoch, model.u, model.v, model.objective_history});
}

/// Fresh runs draw factors from `rng` (historical consumption order);
/// resumed runs restore the checkpoint verbatim and draw nothing.
void mf_init_state(const MfConfig& config, std::size_t rows, std::size_t cols,
                   Rng& rng, MfModel& model) {
  if (config.resume == nullptr) {
    model.u = Matrix::random(rows, config.rank, rng, 0.0, 0.1);
    model.v = Matrix::random(cols, config.rank, rng, 0.0, 0.1);
    return;
  }
  const MfResume& r = *config.resume;
  if (r.u.rows() != rows || r.u.cols() != config.rank || r.v.rows() != cols ||
      r.v.cols() != config.rank) {
    throw std::invalid_argument("factorize: resume state shape mismatch");
  }
  model.u = r.u;
  model.v = r.v;
  model.objective_history = r.objective_history;
}

}  // namespace

double MfModel::predict(std::size_t row, std::size_t col) const {
  const double* ur = u.row(row);
  const double* vr = v.row(col);
  double sum = 0.0;
  for (std::size_t k = 0; k < u.cols(); ++k) sum += ur[k] * vr[k];
  return sum;
}

MfModel factorize(const Matrix& observed, const Matrix& mask, const MfConfig& config,
                  Rng& rng, MfWorkspace* workspace) {
  if (!observed.same_shape(mask)) {
    throw std::invalid_argument("factorize: observed/mask shape mismatch");
  }
  if (config.use_sparse || config.use_newton_cg) {
    return factorize(sparse::CsrMatrix::from_dense_masked(observed, mask),
                     config, rng, workspace);
  }
  std::size_t rows = observed.rows();
  std::size_t cols = observed.cols();

  MfModel model;
  mf_init_state(config, rows, cols, rng, model);
  const int first_epoch = config.resume ? config.resume->next_epoch : 0;

  MfWorkspace local_workspace;
  MfWorkspace& ws = workspace ? *workspace : local_workspace;
  std::size_t w = config.workers;

  for (int epoch = first_epoch; epoch < config.epochs; ++epoch) {
    // Residual on observed cells: the per-cell operator()/predict() walk of
    // the seed is fused into one row-pointer kernel pass.
    kernels::masked_residual_into(observed, mask, model.u, model.v, ws.residual, w);
    // Gradient step: U += lr*(E V - reg U); V += lr*(E^T U - reg V). Both
    // gradients read the pre-update factors, so compute them before either
    // factor moves.
    kernels::multiply_into(ws.residual, model.v, ws.grad_u, w);
    kernels::add_scaled_into(ws.grad_u, model.u, -config.regularization, w);
    kernels::transpose_multiply_into(ws.residual, model.u, ws.grad_v, w);
    kernels::add_scaled_into(ws.grad_v, model.v, -config.regularization, w);

    kernels::add_scaled_into(model.u, ws.grad_u, config.learning_rate, w);
    kernels::add_scaled_into(model.v, ws.grad_v, config.learning_rate, w);

    // Non-negativity projection keeps factors interpretable.
    kernels::clamp_nonnegative(model.u, w);
    kernels::clamp_nonnegative(model.v, w);
    mf_notify_epoch(config, epoch, model);
  }
  model.peak_workspace_bytes = mf_workspace_bytes(ws) +
                               model.u.allocated_bytes() +
                               model.v.allocated_bytes();
  return model;
}

MfModel factorize(const sparse::CsrMatrix& observed, const MfConfig& config,
                  Rng& rng, MfWorkspace* workspace) {
  std::size_t rows = observed.rows();
  std::size_t cols = observed.cols();
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("factorize: empty observed matrix");
  }

  MfModel model;
  mf_init_state(config, rows, cols, rng, model);
  const int first_epoch = config.resume ? config.resume->next_epoch : 0;

  MfWorkspace local_workspace;
  MfWorkspace& ws = workspace ? *workspace : local_workspace;
  std::size_t w = config.workers;
  double reg = config.regularization;

  // Residual structure over the observed pattern, built once per solve;
  // every epoch after only overwrites values (refill via the remembered
  // slot permutation — no allocation, rule 3).
  auto refresh_residual = [&](bool rebuild_csc) {
    sparse::masked_residual_values(observed, model.u, model.v,
                                   ws.residual_sparse, w);
    if (rebuild_csc) {
      ws.residual_csc = sparse::CscMatrix::from_csr(ws.residual_sparse);
    } else {
      ws.residual_csc.refill_from_csr(ws.residual_sparse);
    }
  };

  if (!config.use_newton_cg) {
    // First-order epochs, sparse plane. Bitwise identical to the dense
    // path: the dense masked residual is zero at unobserved cells and the
    // dense multiply kernels skip zeros in the same ascending order the
    // CSR/CSC walks visit stored cells.
    for (int epoch = first_epoch; epoch < config.epochs; ++epoch) {
      refresh_residual(epoch == first_epoch);
      sparse::multiply_into(ws.residual_sparse, model.v, ws.grad_u, w);
      kernels::add_scaled_into(ws.grad_u, model.u, -reg, w);
      sparse::transpose_multiply_into(ws.residual_csc, model.u, ws.grad_v, w);
      kernels::add_scaled_into(ws.grad_v, model.v, -reg, w);

      kernels::add_scaled_into(model.u, ws.grad_u, config.learning_rate, w);
      kernels::add_scaled_into(model.v, ws.grad_v, config.learning_rate, w);
      kernels::clamp_nonnegative(model.u, w);
      kernels::clamp_nonnegative(model.v, w);
      mf_notify_epoch(config, epoch, model);
    }
  } else {
    // Projected Gauss-Newton: per epoch one newton_step per factor.
    //   f(U, V)  = sum_{(i,j) observed} (R_ij - u_i . v_j)^2
    //            + reg (||U||^2 + ||V||^2)
    //   g_U      = -2 E V + 2 reg U          (E = masked residual)
    //   H_U p |i = 2 sum_{j in Omega_i} (p_i . v_j) v_j + 2 reg p_i
    // (the masked Gram operator; V-side symmetric off the CSC pattern).
    solver::NewtonConfig ncfg;
    ncfg.cg.max_iterations = config.cg_iterations;
    ncfg.cg.tolerance = config.cg_tolerance;
    ncfg.project_nonnegative = true;

    auto objective_at = [&](const Matrix& u_eval, const Matrix& v_eval) {
      sparse::masked_residual_values(observed, u_eval, v_eval,
                                     ws.residual_sparse, w);
      return ws.residual_sparse.norm_squared() +
             reg * (std::pow(u_eval.frobenius_norm(), 2) +
                    std::pow(v_eval.frobenius_norm(), 2));
    };

    for (int epoch = first_epoch; epoch < config.epochs; ++epoch) {
      refresh_residual(epoch == first_epoch);
      double fx = ws.residual_sparse.norm_squared() +
                  reg * (std::pow(model.u.frobenius_norm(), 2) +
                         std::pow(model.v.frobenius_norm(), 2));
      model.objective_history.push_back(fx);

      // --- U step ---
      sparse::multiply_into(ws.residual_sparse, model.v, ws.grad_u, w);
      ws.grad_u.scale(-2.0);
      kernels::add_scaled_into(ws.grad_u, model.u, 2.0 * reg, w);
      auto apply_u = [&](const Matrix& p, Matrix& out, std::size_t wk) {
        sparse::masked_gram_apply(observed, model.v, p, out, wk);
        out.scale(2.0);
        kernels::add_scaled_into(out, p, 2.0 * reg, wk);
      };
      auto objective_u = [&](const Matrix& trial) {
        return objective_at(trial, model.v);
      };
      auto step_u = solver::newton_step(apply_u, ws.grad_u, model.u,
                                        objective_u, fx, ncfg, ws.newton_u, w);

      // --- V step (residual refreshed at the moved U) ---
      refresh_residual(false);
      sparse::transpose_multiply_into(ws.residual_csc, model.u, ws.grad_v, w);
      ws.grad_v.scale(-2.0);
      kernels::add_scaled_into(ws.grad_v, model.v, 2.0 * reg, w);
      auto apply_v = [&](const Matrix& p, Matrix& out, std::size_t wk) {
        // ws.residual_csc shares the observed pattern — only the pattern
        // is read here.
        sparse::masked_gram_apply(ws.residual_csc, model.u, p, out, wk);
        out.scale(2.0);
        kernels::add_scaled_into(out, p, 2.0 * reg, wk);
      };
      auto objective_v = [&](const Matrix& trial) {
        return objective_at(model.u, trial);
      };
      solver::newton_step(apply_v, ws.grad_v, model.v, objective_v,
                          step_u.objective, ncfg, ws.newton_v, w);
      mf_notify_epoch(config, epoch, model);
    }
  }
  model.peak_workspace_bytes = mf_workspace_bytes(ws) +
                               model.u.allocated_bytes() +
                               model.v.allocated_bytes();
  return model;
}

Matrix guilt_by_association(const Matrix& associations, const Matrix& entity_similarity) {
  if (entity_similarity.rows() != associations.rows() ||
      entity_similarity.rows() != entity_similarity.cols()) {
    throw std::invalid_argument("guilt_by_association: shape mismatch");
  }
  std::size_t n = associations.rows();
  std::size_t m = associations.cols();
  Matrix scores(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    double total_sim = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      if (k != i) total_sim += entity_similarity(i, k);
    }
    if (total_sim == 0.0) continue;
    for (std::size_t k = 0; k < n; ++k) {
      if (k == i) continue;
      double w = entity_similarity(i, k) / total_sim;
      if (w == 0.0) continue;
      for (std::size_t j = 0; j < m; ++j) scores(i, j) += w * associations(k, j);
    }
  }
  return scores;
}

}  // namespace hc::analytics
