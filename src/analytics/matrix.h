// Dense row-major matrix — the numeric substrate for the bioinformatics
// applications (Section V): JMF, matrix-factorization baselines, DELT.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace hc::analytics {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);
  /// Entries uniform in [lo, hi) — factor initialization.
  static Matrix random(std::size_t rows, std::size_t cols, Rng& rng, double lo = 0.0,
                       double hi = 1.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Raw row access for hot loops.
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  /// Whole backing store (row-major, rows()*cols() doubles). For kernels
  /// and bitwise comparisons in tests.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }

  /// Reshapes in place without shrinking capacity — the workspace
  /// primitive: after the first epoch every resize() is a no-op and the
  /// solver allocates nothing. Contents are unspecified after a shape
  /// change; kernels writing `into` a matrix overwrite every cell.
  void resize(std::size_t rows, std::size_t cols);

  Matrix& fill(double value);

  Matrix transpose() const;
  Matrix multiply(const Matrix& other) const;        // this * other
  Matrix multiply_transposed(const Matrix& other) const;  // this * other^T

  Matrix& add_scaled(const Matrix& other, double factor);  // this += factor*other
  Matrix& scale(double factor);

  double frobenius_norm() const;
  /// ||this - other||_F; dimensions must match.
  double frobenius_distance(const Matrix& other) const;

  /// Number of cells whose value is exactly nonzero. The bioinformatics
  /// inputs (fingerprints, target sets, associations) are >95% sparse;
  /// this is what the sparse plane's storage decisions key on.
  std::size_t nnz() const;
  /// nnz() / size(); 0.0 for an empty matrix.
  double density() const;
  /// Bytes held by the backing store (capacity, not size — what the
  /// process actually keeps resident). The bench's equal-memory catalog
  /// comparisons sum this over inputs + workspaces.
  std::size_t allocated_bytes() const { return data_.capacity() * sizeof(double); }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hc::analytics
