// Evaluation metrics for the bioinformatics experiments: AUC-ROC, AUPR,
// precision@k, RMSE, Spearman rank correlation.
#pragma once

#include <cstddef>
#include <vector>

namespace hc::analytics {

/// Area under the ROC curve via the rank-sum formulation. Requires at
/// least one positive and one negative label; returns 0.5 otherwise.
double auc_roc(const std::vector<double>& scores, const std::vector<bool>& labels);

/// Area under the precision-recall curve (step interpolation). Tied scores
/// are evaluated as one block, so the result does not depend on how
/// positives and negatives happen to be ordered within a tie.
double auc_pr(const std::vector<double>& scores, const std::vector<bool>& labels);

/// Fraction of positives among the k highest-scoring items, out of the
/// *requested* k: when k exceeds the candidate count, the missing slots
/// count as misses (a retrieval system asked for k results returned fewer).
double precision_at_k(const std::vector<double>& scores, const std::vector<bool>& labels,
                      std::size_t k);

double rmse(const std::vector<double>& predicted, const std::vector<double>& actual);

/// Spearman rank correlation of two equal-length score vectors.
double spearman(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace hc::analytics
