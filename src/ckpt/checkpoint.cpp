#include "ckpt/checkpoint.h"

#include <utility>

namespace hc::ckpt {

namespace {

constexpr FourCc kMeta = {'M', 'E', 'T', 'A'};
constexpr FourCc kMatU = {'M', 'A', 'T', 'U'};
constexpr FourCc kMatV = {'M', 'A', 'T', 'V'};
constexpr FourCc kWgtD = {'W', 'G', 'T', 'D'};
constexpr FourCc kWgtS = {'W', 'G', 'T', 'S'};
constexpr FourCc kHist = {'H', 'I', 'S', 'T'};
constexpr FourCc kBeta = {'V', 'B', 'E', 'T'};
constexpr FourCc kAlpha = {'V', 'A', 'L', 'P'};
constexpr FourCc kGamma = {'V', 'G', 'A', 'M'};
constexpr FourCc kSum = {'V', 'S', 'U', 'M'};
constexpr FourCc kObj = {'O', 'B', 'J', ' '};
constexpr FourCc kMrec = {'M', 'R', 'E', 'C'};

Bytes encode_matrix(const analytics::Matrix& m) {
  Bytes out;
  out.reserve(8 + m.size() * 8);
  put_u32(out, static_cast<std::uint32_t>(m.rows()));
  put_u32(out, static_cast<std::uint32_t>(m.cols()));
  for (std::size_t i = 0; i < m.size(); ++i) put_f64(out, m.data()[i]);
  return out;
}

analytics::Matrix read_matrix(PayloadReader& p) {
  std::uint64_t rows = p.u32();
  std::uint64_t cols = p.u32();
  // Bound the cell count by the bytes actually present before allocating —
  // a length-lying header must throw PayloadError, never bad_alloc.
  if (cols != 0 && rows > p.remaining() / 8 / cols) throw PayloadError{};
  analytics::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = p.f64();
  return m;
}

/// find + decode + exact-consumption check, converting PayloadError to the
/// pinned "malformed payload" diagnostic.
template <typename Fn>
Status read_chunk(const ChunkReader& reader, FourCc type, Fn&& fn) {
  auto chunk = reader.find(type);
  if (!chunk.is_ok()) return chunk.status();
  try {
    PayloadReader p = chunk->reader();
    fn(p);
    p.expect_done();
  } catch (const PayloadError&) {
    return malformed_payload(type);
  }
  return Status::ok();
}

Bytes f64_vec_payload(const std::vector<double>& v) {
  Bytes out;
  out.reserve(8 + v.size() * 8);
  put_f64_vec(out, v);
  return out;
}

}  // namespace

// --- JMF ------------------------------------------------------------------

Bytes encode_jmf(const analytics::JmfResume& state, const Bytes& data_key) {
  ChunkWriter w(kKindJmf, data_key);
  Bytes meta;
  put_u32(meta, static_cast<std::uint32_t>(state.next_epoch));
  w.add(kMeta, std::move(meta));
  w.add(kMatU, encode_matrix(state.u));
  w.add(kMatV, encode_matrix(state.v));
  w.add(kWgtD, f64_vec_payload(state.drug_source_weights));
  w.add(kWgtS, f64_vec_payload(state.disease_source_weights));
  w.add(kHist, f64_vec_payload(state.objective_history));
  return w.finish();
}

Result<analytics::JmfResume> decode_jmf(const Bytes& file, const Bytes& data_key) {
  auto reader = ChunkReader::open(file, kKindJmf, data_key);
  if (!reader.is_ok()) return reader.status();
  analytics::JmfResume state;
  Status s = read_chunk(*reader, kMeta, [&](PayloadReader& p) {
    state.next_epoch = static_cast<int>(p.u32());
  });
  if (!s.is_ok()) return s;
  s = read_chunk(*reader, kMatU,
                 [&](PayloadReader& p) { state.u = read_matrix(p); });
  if (!s.is_ok()) return s;
  s = read_chunk(*reader, kMatV,
                 [&](PayloadReader& p) { state.v = read_matrix(p); });
  if (!s.is_ok()) return s;
  s = read_chunk(*reader, kWgtD, [&](PayloadReader& p) {
    state.drug_source_weights = p.f64_vec();
  });
  if (!s.is_ok()) return s;
  s = read_chunk(*reader, kWgtS, [&](PayloadReader& p) {
    state.disease_source_weights = p.f64_vec();
  });
  if (!s.is_ok()) return s;
  s = read_chunk(*reader, kHist, [&](PayloadReader& p) {
    state.objective_history = p.f64_vec();
  });
  if (!s.is_ok()) return s;
  return state;
}

// --- MF -------------------------------------------------------------------

Bytes encode_mf(const analytics::MfResume& state, const Bytes& data_key) {
  ChunkWriter w(kKindMf, data_key);
  Bytes meta;
  put_u32(meta, static_cast<std::uint32_t>(state.next_epoch));
  w.add(kMeta, std::move(meta));
  w.add(kMatU, encode_matrix(state.u));
  w.add(kMatV, encode_matrix(state.v));
  w.add(kHist, f64_vec_payload(state.objective_history));
  return w.finish();
}

Result<analytics::MfResume> decode_mf(const Bytes& file, const Bytes& data_key) {
  auto reader = ChunkReader::open(file, kKindMf, data_key);
  if (!reader.is_ok()) return reader.status();
  analytics::MfResume state;
  Status s = read_chunk(*reader, kMeta, [&](PayloadReader& p) {
    state.next_epoch = static_cast<int>(p.u32());
  });
  if (!s.is_ok()) return s;
  s = read_chunk(*reader, kMatU,
                 [&](PayloadReader& p) { state.u = read_matrix(p); });
  if (!s.is_ok()) return s;
  s = read_chunk(*reader, kMatV,
                 [&](PayloadReader& p) { state.v = read_matrix(p); });
  if (!s.is_ok()) return s;
  s = read_chunk(*reader, kHist, [&](PayloadReader& p) {
    state.objective_history = p.f64_vec();
  });
  if (!s.is_ok()) return s;
  return state;
}

// --- DELT -----------------------------------------------------------------

Bytes encode_delt(const analytics::DeltResume& state, const Bytes& data_key) {
  ChunkWriter w(kKindDelt, data_key);
  Bytes meta;
  put_u32(meta, static_cast<std::uint32_t>(state.next_iteration));
  w.add(kMeta, std::move(meta));
  w.add(kBeta, f64_vec_payload(state.drug_effects));
  w.add(kAlpha, f64_vec_payload(state.patient_baselines));
  w.add(kGamma, f64_vec_payload(state.patient_drifts));
  w.add(kSum, f64_vec_payload(state.drug_sum));
  w.add(kHist, f64_vec_payload(state.objective_history));
  return w.finish();
}

Result<analytics::DeltResume> decode_delt(const Bytes& file, const Bytes& data_key) {
  auto reader = ChunkReader::open(file, kKindDelt, data_key);
  if (!reader.is_ok()) return reader.status();
  analytics::DeltResume state;
  Status s = read_chunk(*reader, kMeta, [&](PayloadReader& p) {
    state.next_iteration = static_cast<int>(p.u32());
  });
  if (!s.is_ok()) return s;
  s = read_chunk(*reader, kBeta,
                 [&](PayloadReader& p) { state.drug_effects = p.f64_vec(); });
  if (!s.is_ok()) return s;
  s = read_chunk(*reader, kAlpha, [&](PayloadReader& p) {
    state.patient_baselines = p.f64_vec();
  });
  if (!s.is_ok()) return s;
  s = read_chunk(*reader, kGamma,
                 [&](PayloadReader& p) { state.patient_drifts = p.f64_vec(); });
  if (!s.is_ok()) return s;
  s = read_chunk(*reader, kSum,
                 [&](PayloadReader& p) { state.drug_sum = p.f64_vec(); });
  if (!s.is_ok()) return s;
  s = read_chunk(*reader, kHist, [&](PayloadReader& p) {
    state.objective_history = p.f64_vec();
  });
  if (!s.is_ok()) return s;
  return state;
}

// --- DataLake -------------------------------------------------------------

namespace {

Bytes sealed_object_payload(const std::string& reference,
                            const std::string& routing_key, bool with_routing,
                            const storage::DataLake::SealedObject& sealed) {
  Bytes out;
  put_str(out, reference);
  if (with_routing) put_str(out, routing_key);
  put_str(out, sealed.key_id);
  put_u32(out, sealed.key_version);
  put_blob(out, sealed.ciphertext);
  put_blob(out, sealed.tag);
  return out;
}

void read_sealed_fields(PayloadReader& p, storage::DataLake::SealedObject& sealed) {
  sealed.key_id = p.str();
  sealed.key_version = p.u32();
  sealed.ciphertext = p.blob();
  sealed.tag = p.blob();
}

}  // namespace

LakeSnapshot capture_lake(const storage::DataLake& lake,
                          const storage::MetadataStore* meta) {
  LakeSnapshot snapshot;
  for (const std::string& ref : lake.references()) {
    auto sealed = lake.export_object(ref);
    if (!sealed.is_ok()) continue;  // raced erase; capture runs quiesced
    snapshot.objects.push_back(LakeSnapshot::Object{ref, std::move(*sealed)});
  }
  if (meta != nullptr) snapshot.metadata = meta->all();
  return snapshot;
}

Bytes encode_lake(const LakeSnapshot& snapshot, const Bytes& data_key) {
  ChunkWriter w(kKindLake, data_key);
  for (const auto& object : snapshot.objects) {
    w.add(kObj, sealed_object_payload(object.reference_id, "", false,
                                      object.sealed));
  }
  for (const auto& md : snapshot.metadata) {
    Bytes out;
    put_str(out, md.reference_id);
    put_str(out, md.pseudonym);
    put_str(out, md.consent_group);
    put_str(out, md.schema);
    put_str(out, md.privacy_level);
    put_blob(out, md.content_hash);
    put_u32(out, md.key_version);
    put_str(out, md.original_reference_id);
    w.add(kMrec, std::move(out));
  }
  return w.finish();
}

Result<LakeSnapshot> decode_lake(const Bytes& file, const Bytes& data_key) {
  auto reader = ChunkReader::open(file, kKindLake, data_key);
  if (!reader.is_ok()) return reader.status();
  LakeSnapshot snapshot;
  for (const ChunkView& chunk : reader->find_all(kObj)) {
    LakeSnapshot::Object object;
    try {
      PayloadReader p = chunk.reader();
      object.reference_id = p.str();
      read_sealed_fields(p, object.sealed);
      p.expect_done();
    } catch (const PayloadError&) {
      return malformed_payload(kObj);
    }
    snapshot.objects.push_back(std::move(object));
  }
  for (const ChunkView& chunk : reader->find_all(kMrec)) {
    storage::RecordMetadata md;
    try {
      PayloadReader p = chunk.reader();
      md.reference_id = p.str();
      md.pseudonym = p.str();
      md.consent_group = p.str();
      md.schema = p.str();
      md.privacy_level = p.str();
      md.content_hash = p.blob();
      md.key_version = p.u32();
      md.original_reference_id = p.str();
      p.expect_done();
    } catch (const PayloadError&) {
      return malformed_payload(kMrec);
    }
    snapshot.metadata.push_back(std::move(md));
  }
  return snapshot;
}

Status restore_lake(const LakeSnapshot& snapshot, storage::DataLake& lake,
                    storage::MetadataStore* meta) {
  for (const auto& object : snapshot.objects) {
    Status imported = lake.import_object(object.reference_id, object.sealed);
    if (!imported.is_ok() && imported.code() != StatusCode::kAlreadyExists) {
      return imported;
    }
  }
  if (meta != nullptr) {
    for (const auto& md : snapshot.metadata) {
      Status put = meta->put(md);
      if (!put.is_ok()) return put;
    }
  }
  return Status::ok();
}

// --- ShardedLake ----------------------------------------------------------

Result<ShardedSnapshot> capture_sharded(const cluster::ShardedLake& lake) {
  ShardedSnapshot snapshot;
  for (const auto& [ref, routing_key] : lake.placement_export()) {
    auto sealed = lake.export_copy(ref);
    if (!sealed.is_ok()) return sealed.status();
    snapshot.objects.push_back(
        ShardedSnapshot::Object{ref, routing_key, std::move(*sealed)});
  }
  return snapshot;
}

Bytes encode_sharded(const ShardedSnapshot& snapshot, const Bytes& data_key) {
  ChunkWriter w(kKindSharded, data_key);
  for (const auto& object : snapshot.objects) {
    w.add(kObj, sealed_object_payload(object.reference_id, object.routing_key,
                                      true, object.sealed));
  }
  return w.finish();
}

Result<ShardedSnapshot> decode_sharded(const Bytes& file, const Bytes& data_key) {
  auto reader = ChunkReader::open(file, kKindSharded, data_key);
  if (!reader.is_ok()) return reader.status();
  ShardedSnapshot snapshot;
  for (const ChunkView& chunk : reader->find_all(kObj)) {
    ShardedSnapshot::Object object;
    try {
      PayloadReader p = chunk.reader();
      object.reference_id = p.str();
      object.routing_key = p.str();
      read_sealed_fields(p, object.sealed);
      p.expect_done();
    } catch (const PayloadError&) {
      return malformed_payload(kObj);
    }
    snapshot.objects.push_back(std::move(object));
  }
  return snapshot;
}

Status restore_sharded(const ShardedSnapshot& snapshot,
                       cluster::ShardedLake& lake) {
  for (const auto& object : snapshot.objects) {
    // Placement is re-derived from the *target* ring — restore works onto a
    // different host count than the checkpoint was taken on.
    std::vector<std::string> chain =
        lake.cluster().owners(object.routing_key);
    if (chain.empty()) {
      return Status(StatusCode::kFailedPrecondition, "cluster has no live hosts");
    }
    for (const std::string& host : chain) {
      Status imported = lake.import_copy(host, object.reference_id,
                                         object.routing_key, object.sealed);
      if (!imported.is_ok()) return imported;
    }
  }
  return Status::ok();
}

}  // namespace hc::ckpt
