// hc::ckpt — versioned, chunked binary checkpoint format.
//
// A checkpoint file is a magic + header followed by typed chunks, each
// independently length-prefixed and HMAC-SHA256-tagged, closed by a footer
// tag over the whole chunk table:
//
//   offset 0   magic          8 bytes  "HCCKPT01"
//          8   version        u32 LE   (currently 1)
//         12   kind           4 bytes  section kind ("JMF ", "DELT", ...)
//         16   chunk_count    u32 LE
//         20   chunks         chunk_count records, each:
//                type         4 bytes
//                index        u32 LE   position in the table (0-based)
//                length       u64 LE   payload byte count
//                payload      `length` bytes
//                tag          32 bytes HMAC over [type .. payload end]
//        end   "FOOT"         4 bytes
//              footer tag     32 bytes HMAC over every chunk tag, in order
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern in a u64 (bit-exact round trip — the checkpoint contract is
// byte-identical resume, so no text formatting anywhere near a float).
//
// Integrity keying: chunk and footer tags are keyed by a *file MAC key*
// derived from the caller's KMS data key and the section kind
// (HMAC(key, "hc.ckpt.v1." + kind)), so a chunk can never be spliced
// between checkpoint kinds even under one data key, and a file from a
// different tenant/key fails every tag. The footer binds the exact chunk
// set and order, so mixing chunks of two same-kind files fails too.
//
// Rejection discipline: ChunkReader::open validates everything up front —
// magic, version, kind, every chunk header, every chunk tag (verified four
// lanes at a time on the lock-step SHA-256 core), the footer, and that no
// trailing bytes follow. Torn, truncated, bit-flipped, length-lying and
// spliced files are all rejected with the exact diagnostics pinned by the
// ckpt rejection-table test; nothing is ever partially accepted. Structural
// damage and integrity failures are kDataLoss; a file that simply isn't a
// checkpoint (bad magic / version / kind) is kInvalidArgument.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace hc::ckpt {

/// 4-character chunk/section type tag.
using FourCc = std::array<char, 4>;

constexpr std::array<std::uint8_t, 8> kMagic = {'H', 'C', 'C', 'K', 'P', 'T', '0', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 4;
constexpr std::size_t kTagSize = 32;

/// Derives the file MAC key for one section kind from a KMS data key.
Bytes derive_mac_key(const Bytes& data_key, FourCc kind);

// --- serialization primitives (chunk payloads) ---------------------------

void put_u32(Bytes& out, std::uint32_t v);
void put_u64(Bytes& out, std::uint64_t v);
/// IEEE-754 bit pattern as u64 LE — the byte-identical float contract.
void put_f64(Bytes& out, double v);
/// u64 length prefix + raw bytes.
void put_blob(Bytes& out, const Bytes& b);
void put_str(Bytes& out, const std::string& s);
/// u64 count + packed f64s.
void put_f64_vec(Bytes& out, const std::vector<double>& v);

/// Thrown by PayloadReader on any out-of-bounds read; ChunkReader users
/// convert it to the pinned "malformed payload" kDataLoss diagnostic via
/// malformed_payload() below.
struct PayloadError {};

/// Bounds-checked cursor over one chunk payload. decode_* functions must
/// consume the payload exactly (check done()) so trailing garbage inside a
/// correctly-tagged chunk is still rejected.
class PayloadReader {
 public:
  PayloadReader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}

  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  Bytes blob();
  std::string str();
  std::vector<double> f64_vec();

  bool done() const { return pos_ == len_; }
  /// Unread bytes — decoders use this to bound element counts *before*
  /// allocating (a length-lying header must throw, never bad_alloc).
  std::size_t remaining() const { return len_ - pos_; }
  /// Throws PayloadError unless the payload was consumed exactly.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

/// The pinned diagnostic for a chunk whose tag verified but whose payload
/// does not decode (wrong field sizes, trailing bytes, absurd counts).
Status malformed_payload(FourCc type);

// --- writer ---------------------------------------------------------------

/// Accumulates typed chunks and serializes the full file. Chunks land in
/// the order added; the writer assigns indexes and computes all tags.
class ChunkWriter {
 public:
  /// `mac_key` is the *data* key (KMS material); the kind-scoped file MAC
  /// key is derived internally.
  ChunkWriter(FourCc kind, const Bytes& mac_key);

  void add(FourCc type, Bytes payload);

  /// Serializes header + chunks + footer. The writer is spent afterwards.
  Bytes finish();

 private:
  FourCc kind_;
  Bytes file_key_;
  std::vector<std::pair<FourCc, Bytes>> chunks_;
};

// --- reader ---------------------------------------------------------------

/// One validated chunk, viewing the file buffer (which must outlive the
/// reader).
struct ChunkView {
  FourCc type;
  const std::uint8_t* payload = nullptr;
  std::size_t length = 0;

  PayloadReader reader() const { return PayloadReader(payload, length); }
};

class ChunkReader {
 public:
  /// Full up-front validation (see file comment). On success every chunk's
  /// tag has verified and the footer binds the table.
  static Result<ChunkReader> open(const Bytes& file, FourCc expected_kind,
                                  const Bytes& mac_key);

  const std::vector<ChunkView>& chunks() const { return chunks_; }

  /// First chunk of `type`, or kDataLoss "ckpt: missing chunk <type>".
  Result<ChunkView> find(FourCc type) const;
  /// All chunks of `type`, in table order.
  std::vector<ChunkView> find_all(FourCc type) const;

 private:
  std::vector<ChunkView> chunks_;
};

}  // namespace hc::ckpt
