#include "ckpt/format.h"

#include <cstring>

#include "crypto/hmac.h"

namespace hc::ckpt {

namespace {

std::string fourcc_str(FourCc t) { return std::string(t.data(), t.size()); }

Status data_loss(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

Bytes derive_mac_key(const Bytes& data_key, FourCc kind) {
  Bytes label = to_bytes("hc.ckpt.v1.");
  label.insert(label.end(), kind.begin(), kind.end());
  return crypto::hmac_sha256(data_key, label);
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(Bytes& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_blob(Bytes& out, const Bytes& b) {
  put_u64(out, b.size());
  out.insert(out.end(), b.begin(), b.end());
}

void put_str(Bytes& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void put_f64_vec(Bytes& out, const std::vector<double>& v) {
  put_u64(out, v.size());
  for (double d : v) put_f64(out, d);
}

void PayloadReader::need(std::size_t n) const {
  if (n > len_ - pos_) throw PayloadError{};
}

std::uint32_t PayloadReader::u32() {
  need(4);
  std::uint32_t v = read_u32(data_ + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  need(8);
  std::uint64_t v = read_u64(data_ + pos_);
  pos_ += 8;
  return v;
}

double PayloadReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Bytes PayloadReader::blob() {
  std::uint64_t n = u64();
  need(n);
  Bytes b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

std::string PayloadReader::str() {
  std::uint64_t n = u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<double> PayloadReader::f64_vec() {
  std::uint64_t n = u64();
  // Guard the count before multiplying — a hostile n*8 would wrap.
  if (n > (len_ - pos_) / 8) throw PayloadError{};
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
  return v;
}

void PayloadReader::expect_done() const {
  if (!done()) throw PayloadError{};
}

Status malformed_payload(FourCc type) {
  return data_loss("ckpt: chunk " + fourcc_str(type) + " malformed payload");
}

ChunkWriter::ChunkWriter(FourCc kind, const Bytes& mac_key)
    : kind_(kind), file_key_(derive_mac_key(mac_key, kind)) {}

void ChunkWriter::add(FourCc type, Bytes payload) {
  chunks_.emplace_back(type, std::move(payload));
}

Bytes ChunkWriter::finish() {
  Bytes out;
  std::size_t total = kHeaderSize + 4 + kTagSize;
  for (const auto& [type, payload] : chunks_) {
    total += 4 + 4 + 8 + payload.size() + kTagSize;
  }
  out.reserve(total);

  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_u32(out, kVersion);
  out.insert(out.end(), kind_.begin(), kind_.end());
  put_u32(out, static_cast<std::uint32_t>(chunks_.size()));

  // Footer material: the chunk tags in table order.
  Bytes tag_table;
  tag_table.reserve(chunks_.size() * kTagSize);

  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const auto& [type, payload] = chunks_[i];
    std::size_t record_start = out.size();
    out.insert(out.end(), type.begin(), type.end());
    put_u32(out, static_cast<std::uint32_t>(i));
    put_u64(out, payload.size());
    out.insert(out.end(), payload.begin(), payload.end());
    // Tag over the contiguous [type .. payload end] span — the same span
    // the reader MACs in place.
    Bytes record(out.begin() + static_cast<std::ptrdiff_t>(record_start), out.end());
    Bytes tag = crypto::hmac_sha256(file_key_, record);
    tag_table.insert(tag_table.end(), tag.begin(), tag.end());
    out.insert(out.end(), tag.begin(), tag.end());
  }

  static constexpr FourCc kFoot = {'F', 'O', 'O', 'T'};
  out.insert(out.end(), kFoot.begin(), kFoot.end());
  Bytes footer = crypto::hmac_sha256(file_key_, tag_table);
  out.insert(out.end(), footer.begin(), footer.end());

  chunks_.clear();
  return out;
}

Result<ChunkReader> ChunkReader::open(const Bytes& file, FourCc expected_kind,
                                      const Bytes& mac_key) {
  if (file.size() < kHeaderSize) return data_loss("ckpt: truncated header");
  if (!std::equal(kMagic.begin(), kMagic.end(), file.begin())) {
    return Status(StatusCode::kInvalidArgument, "ckpt: bad magic");
  }
  std::uint32_t version = read_u32(file.data() + 8);
  if (version != kVersion) {
    return Status(StatusCode::kInvalidArgument,
                  "ckpt: unsupported version " + std::to_string(version));
  }
  FourCc kind;
  std::memcpy(kind.data(), file.data() + 12, 4);
  if (kind != expected_kind) {
    return Status(StatusCode::kInvalidArgument,
                  "ckpt: wrong section kind " + fourcc_str(kind) + " (want " +
                      fourcc_str(expected_kind) + ")");
  }
  std::uint32_t chunk_count = read_u32(file.data() + 16);

  Bytes file_key = derive_mac_key(mac_key, expected_kind);

  ChunkReader reader;
  reader.chunks_.reserve(chunk_count);
  std::vector<crypto::HmacVerifyView> tag_checks;
  tag_checks.reserve(chunk_count);
  Bytes tag_table;
  tag_table.reserve(static_cast<std::size_t>(chunk_count) * kTagSize);

  std::size_t pos = kHeaderSize;
  for (std::uint32_t i = 0; i < chunk_count; ++i) {
    std::string where = " (chunk " + std::to_string(i) + ")";
    if (file.size() - pos < 4 + 4 + 8) {
      return data_loss("ckpt: truncated chunk header" + where);
    }
    const std::uint8_t* record = file.data() + pos;
    FourCc type;
    std::memcpy(type.data(), record, 4);
    std::uint32_t index = read_u32(record + 4);
    std::uint64_t length = read_u64(record + 8);
    if (index != i) return data_loss("ckpt: chunk index mismatch" + where);
    if (length > file.size() - pos - 16 ||
        file.size() - pos - 16 - length < kTagSize) {
      return data_loss("ckpt: chunk length overruns file" + where);
    }
    const std::uint8_t* payload = record + 16;
    const std::uint8_t* tag = payload + length;
    tag_checks.push_back(crypto::HmacVerifyView{&file_key, record, 16 + length,
                                                tag, kTagSize});
    tag_table.insert(tag_table.end(), tag, tag + kTagSize);
    reader.chunks_.push_back(ChunkView{type, payload, length});
    pos += 16 + length + kTagSize;
  }

  if (file.size() - pos < 4 + kTagSize) return data_loss("ckpt: truncated footer");
  static constexpr FourCc kFoot = {'F', 'O', 'O', 'T'};
  if (std::memcmp(file.data() + pos, kFoot.data(), 4) != 0) {
    return data_loss("ckpt: truncated footer");
  }
  if (file.size() - pos != 4 + kTagSize) {
    return data_loss("ckpt: trailing garbage after footer");
  }

  // All chunk tags at once on the 4-lane lock-step core — the checkpoint
  // reader and the ingest batch verifier share one fast crypto path.
  std::vector<bool> verdicts = crypto::hmac_verify_batch(tag_checks);
  for (std::uint32_t i = 0; i < chunk_count; ++i) {
    if (!verdicts[i]) {
      return data_loss("ckpt: chunk integrity tag mismatch (chunk " +
                       std::to_string(i) + ")");
    }
  }
  if (!crypto::hmac_verify(file_key, tag_table,
                           Bytes(file.data() + pos + 4,
                                 file.data() + pos + 4 + kTagSize))) {
    return data_loss("ckpt: footer tag mismatch");
  }
  return reader;
}

Result<ChunkView> ChunkReader::find(FourCc type) const {
  for (const ChunkView& c : chunks_) {
    if (c.type == type) return c;
  }
  return data_loss("ckpt: missing chunk " + fourcc_str(type));
}

std::vector<ChunkView> ChunkReader::find_all(FourCc type) const {
  std::vector<ChunkView> out;
  for (const ChunkView& c : chunks_) {
    if (c.type == type) out.push_back(c);
  }
  return out;
}

}  // namespace hc::ckpt
