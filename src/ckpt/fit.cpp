#include "ckpt/fit.h"

#include "ckpt/checkpoint.h"
#include "ckpt/io.h"

namespace hc::ckpt {

FitSession::FitSession(FitSessionConfig config,
                       crypto::KeyManagementService& kms, crypto::KeyId key_id,
                       crypto::Principal principal, ClockPtr clock,
                       fault::FaultInjectorPtr faults)
    : config_(std::move(config)),
      kms_(&kms),
      key_id_(std::move(key_id)),
      principal_(std::move(principal)),
      clock_(std::move(clock)),
      faults_(std::move(faults)) {
  if (config_.checkpoint_every_n_epochs < 1) {
    throw std::invalid_argument("FitSession: checkpoint_every_n_epochs >= 1");
  }
  if (clock_ == nullptr) {
    throw std::invalid_argument("FitSession: clock is required");
  }
}

std::string FitSession::path() const {
  return config_.dir + "/" + config_.name + ".ckpt";
}

const Bytes& FitSession::data_key() {
  if (data_key_cache_.empty()) {
    auto key = kms_->symmetric_key(key_id_, principal_);
    if (!key.is_ok()) {
      throw std::runtime_error("FitSession: data key unavailable: " +
                               std::string(key.status().message()));
    }
    data_key_cache_ = std::move(*key);
  }
  return data_key_cache_;
}

Bytes FitSession::data_key_for_load() const {
  auto key = kms_->symmetric_key(key_id_, principal_);
  if (!key.is_ok()) {
    throw std::runtime_error("FitSession: data key unavailable: " +
                             std::string(key.status().message()));
  }
  return std::move(*key);
}

void FitSession::tick(int epoch) {
  clock_->advance(config_.epoch_cost);
  if (faults_ != nullptr && faults_->host_down(config_.host)) {
    // The process dies at the boundary: the checkpoint for this boundary
    // (if one were due) is never sealed, exactly like a real kill.
    throw SimulatedCrash(config_.host, epoch);
  }
}

void FitSession::publish(const Bytes& file) {
  Status s = atomic_write_file(path(), file);
  if (!s.is_ok()) {
    throw std::runtime_error("FitSession: publish failed: " +
                             std::string(s.message()));
  }
  ++checkpoints_written_;
}

analytics::JmfEpochHook FitSession::jmf_hook() {
  return [this](const analytics::JmfEpochView& view) {
    tick(view.epoch);
    if (!due(view.epoch)) return;
    analytics::JmfResume state;
    state.next_epoch = view.epoch + 1;
    state.u = view.u;
    state.v = view.v;
    state.drug_source_weights = view.drug_source_weights;
    state.disease_source_weights = view.disease_source_weights;
    state.objective_history = view.objective_history;
    publish(encode_jmf(state, data_key()));
  };
}

analytics::MfEpochHook FitSession::mf_hook() {
  return [this](const analytics::MfEpochView& view) {
    tick(view.epoch);
    if (!due(view.epoch)) return;
    analytics::MfResume state;
    state.next_epoch = view.epoch + 1;
    state.u = view.u;
    state.v = view.v;
    state.objective_history = view.objective_history;
    publish(encode_mf(state, data_key()));
  };
}

analytics::DeltEpochHook FitSession::delt_hook() {
  return [this](const analytics::DeltEpochView& view) {
    tick(view.iteration);
    if (!due(view.iteration)) return;
    analytics::DeltResume state;
    state.next_iteration = view.iteration + 1;
    state.drug_effects = view.drug_effects;
    state.patient_baselines = view.patient_baselines;
    state.patient_drifts = view.patient_drifts;
    state.drug_sum = view.drug_sum;
    state.objective_history = view.objective_history;
    publish(encode_delt(state, data_key()));
  };
}

Result<analytics::JmfResume> FitSession::load_jmf() const {
  auto file = read_file(path());
  if (!file.is_ok()) return file.status();
  return decode_jmf(*file, data_key_for_load());
}

Result<analytics::MfResume> FitSession::load_mf() const {
  auto file = read_file(path());
  if (!file.is_ok()) return file.status();
  return decode_mf(*file, data_key_for_load());
}

Result<analytics::DeltResume> FitSession::load_delt() const {
  auto file = read_file(path());
  if (!file.is_ok()) return file.status();
  return decode_delt(*file, data_key_for_load());
}

}  // namespace hc::ckpt
