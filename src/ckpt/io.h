// Crash-consistent checkpoint file I/O.
//
// Checkpoint publication follows the classic write-temp -> fsync -> atomic
// rename -> fsync-directory sequence, so a reader never observes a partially
// written checkpoint under any crash point:
//
//   - crash before rename: the temp file may be torn, but the previous
//     checkpoint (if any) is untouched at the final path;
//   - crash after rename but before the directory fsync: either the old or
//     the new complete file is visible, never a mix;
//   - torn writes that somehow survive (e.g. storage lying about fsync) are
//     caught by the format layer's per-chunk and footer HMAC tags.
#pragma once

#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace hc::ckpt {

/// Atomically publishes `data` at `path`: writes `path` + ".tmp", fsyncs the
/// file descriptor, renames over `path`, then fsyncs the parent directory.
Status atomic_write_file(const std::string& path, const Bytes& data);

/// Reads a whole file. kNotFound if it does not exist.
Result<Bytes> read_file(const std::string& path);

/// True if the file exists.
bool file_exists(const std::string& path);

/// Removes the file if present (used by tests and the crash harness).
void remove_file(const std::string& path);

}  // namespace hc::ckpt
