#include "ckpt/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>

namespace hc::ckpt {

namespace {

Status io_error(const std::string& what, const std::string& path) {
  return Status(StatusCode::kInternal,
                "ckpt io: " + what + " failed for " + path + ": " +
                    std::strerror(errno));
}

std::string parent_dir(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status atomic_write_file(const std::string& path, const Bytes& data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return io_error("open", tmp);

  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return io_error("write", tmp);
    }
    off += static_cast<std::size_t>(n);
  }

  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return io_error("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return io_error("close", tmp);
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return io_error("rename", path);
  }

  // Persist the rename itself: fsync the containing directory.
  const std::string dir = parent_dir(path);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return io_error("open", dir);
  int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) return io_error("fsync", dir);
  return Status::ok();
}

Result<Bytes> read_file(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status(StatusCode::kNotFound, "ckpt io: no such file: " + path);
    }
    return io_error("open", path);
  }
  Bytes out;
  std::uint8_t buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return io_error("read", path);
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void remove_file(const std::string& path) { ::unlink(path.c_str()); }

}  // namespace hc::ckpt
