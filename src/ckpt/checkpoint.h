// Checkpoint codecs: model state and lake partitions to/from the chunked
// binary format (format.h).
//
// Section kinds and chunk layouts (all payload fields via the format.h
// primitives; matrices travel as u32 rows + u32 cols + row-major f64 bits):
//
//   "JMF " — META (u32 next_epoch), MATU, MATV (matrices),
//            WGTD, WGTS (f64 vectors: drug/disease source weights),
//            HIST (f64 vector: objective history)
//   "MF  " — META (u32 next_epoch), MATU, MATV, HIST
//   "DELT" — META (u32 next_iteration), VBET (beta), VALP (alpha),
//            VGAM (gamma), VSUM (drug_sum — the incrementally-maintained
//            per-row exposure sum, carried verbatim for bit-exact resume),
//            HIST
//   "LAKE" — one "OBJ " chunk per sealed object (str reference, str key_id,
//            u32 key_version, blob ciphertext, blob tag) + one "MREC" chunk
//            per metadata record; objects and records sorted by reference
//   "SLAK" — one "OBJ " chunk per logical object (str reference,
//            str routing_key, then the sealed fields), sorted by reference
//
// Lake snapshots hold ciphertext only — a checkpoint is as safe to store as
// the lake itself, and restoring never requires the data keys (the KMS does
// at read time, exactly as before the crash).
#pragma once

#include "analytics/delt.h"
#include "analytics/jmf.h"
#include "analytics/mf.h"
#include "ckpt/format.h"
#include "cluster/cluster.h"
#include "storage/data_lake.h"

namespace hc::ckpt {

inline constexpr FourCc kKindJmf = {'J', 'M', 'F', ' '};
inline constexpr FourCc kKindMf = {'M', 'F', ' ', ' '};
inline constexpr FourCc kKindDelt = {'D', 'E', 'L', 'T'};
inline constexpr FourCc kKindLake = {'L', 'A', 'K', 'E'};
inline constexpr FourCc kKindSharded = {'S', 'L', 'A', 'K'};

// --- model state ----------------------------------------------------------

Bytes encode_jmf(const analytics::JmfResume& state, const Bytes& data_key);
Result<analytics::JmfResume> decode_jmf(const Bytes& file, const Bytes& data_key);

Bytes encode_mf(const analytics::MfResume& state, const Bytes& data_key);
Result<analytics::MfResume> decode_mf(const Bytes& file, const Bytes& data_key);

Bytes encode_delt(const analytics::DeltResume& state, const Bytes& data_key);
Result<analytics::DeltResume> decode_delt(const Bytes& file, const Bytes& data_key);

// --- lake partitions ------------------------------------------------------

/// A DataLake (plus optional metadata store) captured as sealed objects.
struct LakeSnapshot {
  struct Object {
    std::string reference_id;
    storage::DataLake::SealedObject sealed;
  };
  std::vector<Object> objects;                    // sorted by reference
  std::vector<storage::RecordMetadata> metadata;  // sorted by reference
};

/// Captures every object (ciphertext only) and, when `meta` is non-null,
/// every metadata record.
LakeSnapshot capture_lake(const storage::DataLake& lake,
                          const storage::MetadataStore* meta);
Bytes encode_lake(const LakeSnapshot& snapshot, const Bytes& data_key);
Result<LakeSnapshot> decode_lake(const Bytes& file, const Bytes& data_key);
/// Installs every object and metadata record. Idempotent per object
/// (re-import of a present reference is skipped).
Status restore_lake(const LakeSnapshot& snapshot, storage::DataLake& lake,
                    storage::MetadataStore* meta);

/// A ShardedLake captured as (reference, routing key, sealed object)
/// triples — placement is *not* stored: restore re-derives each object's
/// replica set from the target cluster's ring, so a checkpoint taken on 8
/// hosts restores correctly onto 2 (and vice versa).
struct ShardedSnapshot {
  struct Object {
    std::string reference_id;
    std::string routing_key;
    storage::DataLake::SealedObject sealed;
  };
  std::vector<Object> objects;  // sorted by reference
};

Result<ShardedSnapshot> capture_sharded(const cluster::ShardedLake& lake);
Bytes encode_sharded(const ShardedSnapshot& snapshot, const Bytes& data_key);
Result<ShardedSnapshot> decode_sharded(const Bytes& file, const Bytes& data_key);
Status restore_sharded(const ShardedSnapshot& snapshot,
                       cluster::ShardedLake& lake);

}  // namespace hc::ckpt
