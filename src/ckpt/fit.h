// FitSession — checkpoint_every_n_epochs wiring for the analytics fit
// loops, composing with hc::fault crash windows.
//
// A session binds a checkpoint file (dir/name.ckpt), a KMS data key, the
// shared sim clock and an optional FaultInjector. Its *_hook() factories
// return epoch hooks that, per epoch boundary:
//
//   1. charge `epoch_cost` to the sim clock (epochs take time — that is
//      what moves the clock into a FaultPlan crash window);
//   2. throw SimulatedCrash if the injector reports the analytics host
//      down — the fit aborts at an exact epoch boundary, like a killed
//      process (nothing past the boundary has run);
//   3. when the boundary index hits the checkpoint_every_n_epochs schedule,
//      seal the solver state and publish it crash-consistently
//      (atomic_write_file: temp -> fsync -> rename -> dir fsync).
//
// Kill-and-resume is then: catch SimulatedCrash, load_*() the last
// published checkpoint, re-run the fit with config.resume pointing at it.
// The resumed fit's final state is byte-identical to an uninterrupted run
// for any worker count — the ckpt test wall crashes at *every* epoch
// boundary across 1/2/4/8 workers and asserts exactly that.
#pragma once

#include <stdexcept>
#include <string>

#include "analytics/delt.h"
#include "analytics/jmf.h"
#include "analytics/mf.h"
#include "common/clock.h"
#include "common/status.h"
#include "crypto/kms.h"
#include "fault/fault.h"

namespace hc::ckpt {

/// Thrown by a FitSession hook when the fault injector reports the
/// analytics host inside a crash window: aborts the fit at the boundary of
/// the epoch named by `epoch` (which completed; nothing after it ran).
struct SimulatedCrash : std::runtime_error {
  SimulatedCrash(const std::string& host, int epoch_index)
      : std::runtime_error("simulated crash on " + host +
                           " at epoch boundary " + std::to_string(epoch_index)),
        epoch(epoch_index) {}
  int epoch;
};

struct FitSessionConfig {
  std::string dir = ".";
  std::string name = "fit";
  /// Publish a checkpoint after epochs n-1, 2n-1, ... (1 = every epoch).
  int checkpoint_every_n_epochs = 1;
  /// Sim time charged per epoch — what carries the clock into crash windows.
  SimTime epoch_cost = kMillisecond;
  /// The simulated host the fit runs on (FaultPlan::crash target).
  std::string host = "analytics";
};

class FitSession {
 public:
  /// `faults` may be null (checkpointing without crash injection). The data
  /// key behind `key_id` must be fetchable by `principal`.
  FitSession(FitSessionConfig config, crypto::KeyManagementService& kms,
             crypto::KeyId key_id, crypto::Principal principal, ClockPtr clock,
             fault::FaultInjectorPtr faults = nullptr);

  /// The checkpoint file this session writes and loads.
  std::string path() const;

  analytics::JmfEpochHook jmf_hook();
  analytics::MfEpochHook mf_hook();
  analytics::DeltEpochHook delt_hook();

  /// Load the last published checkpoint. kNotFound when none was published
  /// (resume from scratch); any format-layer rejection passes through.
  Result<analytics::JmfResume> load_jmf() const;
  Result<analytics::MfResume> load_mf() const;
  Result<analytics::DeltResume> load_delt() const;

  int checkpoints_written() const { return checkpoints_written_; }

 private:
  /// Epoch-boundary preamble: charge the clock, maybe crash.
  void tick(int epoch);
  bool due(int epoch) const {
    return (epoch + 1) % config_.checkpoint_every_n_epochs == 0;
  }
  const Bytes& data_key();
  Bytes data_key_for_load() const;
  void publish(const Bytes& file);

  FitSessionConfig config_;
  crypto::KeyManagementService* kms_;
  crypto::KeyId key_id_;
  crypto::Principal principal_;
  ClockPtr clock_;
  fault::FaultInjectorPtr faults_;  // may be null
  Bytes data_key_cache_;
  int checkpoints_written_ = 0;
};

}  // namespace hc::ckpt
