// Consistent-hash ring with virtual nodes (hc::cluster).
//
// ROADMAP item 1 promotes sharding from an in-process trick (sharded lock
// stripes keyed by exec::shard_by) to an architectural concept: record,
// tenant, and staging keys are placed on N *simulated hosts*, and the
// placement must survive hosts joining and crashing with minimal movement.
// A consistent-hash ring is the classical answer: every host projects
// `vnodes` points onto a 64-bit circle, a key is owned by the first host
// point at or clockwise of its hash, and adding/removing one host remaps
// only the arcs that host's points cover — every other key keeps its
// owner (the "minimal disruption" property the property tests pin).
//
// Hashing discipline matches the rest of the platform: FNV-1a
// (exec::fnv1a64) with a splitmix64 avalanche finalizer — an explicitly
// specified hash, so placement is identical across platforms, standard
// libraries, and processes; a shard-keyed artifact (BENCH_scaleout.json,
// scenario bundles, golden tests) never depends on where it was produced.
// (The finalizer matters: raw FNV-1a of near-identical vnode labels
// clusters on the circle and skews arc lengths >3x.) Ring points order by
// (hash, host), so the vanishingly-rare 64-bit point collision still
// resolves the same way regardless of host insertion order.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hc::cluster {

/// Consistent-hash ring. Not thread-safe for mutation: topology changes
/// (add_host / remove_host) happen quiesced, between drains — concurrent
/// readers of a stable ring are fine (all lookups are const).
class HashRing {
 public:
  /// `vnodes` points per host. More points -> tighter load balance at
  /// O(vnodes * hosts) memory; 128 keeps the max/mean host load within a
  /// few percent at hospital-scale key counts (see cluster_test bounds).
  explicit HashRing(std::size_t vnodes = 128);

  /// kAlreadyExists when the host is present, kInvalidArgument when empty.
  Status add_host(const std::string& host);
  /// kNotFound when absent.
  Status remove_host(const std::string& host);

  bool has_host(const std::string& host) const;
  std::size_t host_count() const { return hosts_.size(); }
  std::size_t vnodes() const { return vnodes_; }
  /// Hosts in lexicographic order (the canonical iteration order every
  /// deterministic artifact uses).
  std::vector<std::string> hosts() const;

  /// Owner host of `key`: the first ring point at or clockwise of the
  /// key's circle position. Null when the ring is empty.
  const std::string* owner(std::string_view key) const;

  /// The first `n` *distinct* hosts clockwise from the key's point, owner
  /// first — the object's replica set. Fewer than `n` entries when the
  /// ring has fewer hosts.
  std::vector<std::string> owners(std::string_view key, std::size_t n) const;

  /// Keys per host for `keys`, in lexicographic host order — the load-
  /// balance property tests pin max/mean bounds over this.
  std::map<std::string, std::size_t> load_of(const std::vector<std::string>& keys) const;

 private:
  using Point = std::pair<std::uint64_t, std::string>;  // (position, host)

  const std::size_t vnodes_;
  std::set<Point> points_;
  std::set<std::string> hosts_;
};

}  // namespace hc::cluster
