// Cluster scale-out (hc::cluster): consistent-hash placement of storage
// shards across N simulated hosts.
//
// ROADMAP item 1: the platform used to be one logical node whose "shards"
// were in-process lock stripes. This module makes sharding architectural:
//
//   * Cluster        — N named shard-hosts modeled on hc::net's link
//                      profiles; every cross-host byte is charged to the
//                      sim clock through a *deterministic* (zero-jitter)
//                      cluster link, so placement decisions show up in sim
//                      time but never perturb byte-reproducible artifacts.
//   * HashRing       — consistent-hash placement (ring.h): record,
//                      metadata, and staging keys map to owner hosts;
//                      join/crash moves only the provably-owed fraction.
//   * ShardedLake    — the DataLake promoted to a cluster citizen: per-host
//                      DataLake partitions, put/get routed by the ring,
//                      sealed-object replication to the next `replication-1`
//                      distinct ring successors, and rebalance() that
//                      re-establishes placement after topology changes by
//                      moving ciphertext only (never plaintext — the same
//                      discipline storage::ReplicatedDataLake set).
//   * scatter_gather — cross-shard analytics: partition keys by owner,
//                      map per host (optionally on that host's exec
//                      affinity lane), charge each host's result transfer,
//                      reduce in lexicographic host order. Deterministic
//                      for any worker interleaving.
//
// Determinism contract (the scaleout test wall pins all of these):
//   - placement is a pure function of (key, ring state) — FNV-1a, never
//     std::hash, never insertion order;
//   - transfer costs are a pure function of (bytes, link profile) — the
//     cluster link has zero jitter and zero loss, so charging order
//     (which parallel ingestion does not control) cannot change totals;
//   - aggregates over all hosts (counts, digests, Merkle roots) are
//     invariant to the host count: 1, 2, 4, and 8 shard-hosts store the
//     same logical contents, only faster.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/ring.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "crypto/kms.h"
#include "exec/executor.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "storage/data_lake.h"

namespace hc::cluster {

struct ClusterConfig {
  std::size_t hosts = 1;          // initial shard-host count (>= 1)
  std::size_t vnodes = 128;       // ring points per host
  std::size_t replication = 2;    // copies per object (capped at host count)
  std::string host_prefix = "shard-";  // hosts are "<prefix>0".."<prefix>N-1"
  std::string origin = "gateway";      // where requests enter the cluster
  /// Intra-cluster link. Defaults to net::LinkProfile::cluster(): a
  /// zero-jitter, zero-loss LAN so transfer costs are a pure function of
  /// the byte count (see the determinism contract above).
  net::LinkProfile link = net::LinkProfile::cluster();
};

/// Cross-host traffic accounting, totals and per host.
struct HostStats {
  std::atomic<std::uint64_t> transfers_in{0};
  std::atomic<std::uint64_t> transfers_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> primaries{0};  // objects this host owns
};

/// N simulated shard-hosts behind one consistent-hash ring.
///
/// Topology changes (add_host / crash_host) must happen quiesced — between
/// drains, never concurrently with put/get traffic. Lookups and transfers
/// are thread-safe (parallel ingestion workers route concurrently).
class Cluster {
 public:
  /// `network` (nullable) gets a full mesh of cluster links installed —
  /// origin<->host and host<->host — so other subsystems can message the
  /// shard-hosts too. When a network with a bound fault injector is given,
  /// host_up() honors its crash windows (hc::fault composition).
  Cluster(ClusterConfig config, ClockPtr clock, net::SimNetwork* network = nullptr,
          obs::MetricsPtr metrics = nullptr);

  const std::string& origin() const { return config_.origin; }
  const HashRing& ring() const { return ring_; }
  std::size_t host_count() const { return ring_.host_count(); }
  std::size_t replication() const { return replication_; }
  std::vector<std::string> hosts() const { return ring_.hosts(); }
  ClockPtr clock() const { return clock_; }

  /// Owner shard-host of a key; null only if every host has crashed.
  const std::string* owner(std::string_view key) const { return ring_.owner(key); }
  /// The key's replica set: owner first, then distinct ring successors.
  std::vector<std::string> owners(std::string_view key) const {
    return ring_.owners(key, replication_);
  }
  /// Placement of the metadata / staging shard for a key. Separate hash
  /// namespaces so a record and its metadata spread independently.
  const std::string* metadata_owner(const std::string& key) const {
    return ring_.owner("meta|" + key);
  }
  const std::string* staging_owner(const std::string& key) const {
    return ring_.owner("stage|" + key);
  }

  /// Joins the next host ("<prefix><next-index>") to the ring and the
  /// network mesh. Call ShardedLake::rebalance() afterwards to move the
  /// owed keys. Returns the new host's name.
  Result<std::string> add_host();

  /// Crash: the host leaves the ring and its (simulated) local data is
  /// unreachable. kFailedPrecondition when it is the last host. Call
  /// ShardedLake::rebalance() to re-replicate from surviving copies.
  Status crash_host(const std::string& host);

  /// On the ring and not inside a fault-plan crash window.
  bool host_up(const std::string& host) const;

  /// Charges a deterministic cluster-link transfer: cost is
  /// base_latency + bytes/bandwidth (no jitter, no loss). With `lane` the
  /// cost accumulates in the caller's worker-local sim lane (parallel
  /// drain discipline); otherwise the shared clock advances. Loopback
  /// (from == to) charges nothing.
  SimTime charge_transfer(const std::string& from, const std::string& to,
                          std::size_t bytes, SimTime* lane = nullptr);

  const HostStats& host_stats(const std::string& host) const;
  /// Credits one owned object to `host` (ShardedLake's put path).
  void count_primary(const std::string& host);
  std::uint64_t total_transfers() const { return total_transfers_.load(); }
  std::uint64_t total_bytes() const { return total_bytes_.load(); }
  SimTime total_transfer_time() const { return total_transfer_us_.load(); }

  /// Partitions keys by owner host (lexicographic host order; input order
  /// preserved within each host's slice).
  std::map<std::string, std::vector<std::string>> partition(
      const std::vector<std::string>& keys) const;

  /// Cross-shard scatter-gather aggregation. `map_fn(host, shard_keys)`
  /// computes one host's partial (on that host's affinity lane when
  /// `affinity` is given, inline otherwise); each partial's transfer back
  /// to the origin is charged at `result_bytes_per_host`; partials reduce
  /// into the first host's partial in lexicographic host order — so the
  /// result is deterministic for any worker interleaving, and placement-
  /// invariant whenever the reduction is associative and commutative.
  template <typename Partial>
  Result<Partial> scatter_gather(
      const std::vector<std::string>& keys, std::size_t result_bytes_per_host,
      const std::function<Partial(const std::string&, const std::vector<std::string>&)>&
          map_fn,
      const std::function<void(Partial&, const Partial&)>& reduce_fn,
      exec::AffinityExecutor* affinity = nullptr, SimTime* lane = nullptr) {
    if (ring_.host_count() == 0) {
      return Status(StatusCode::kFailedPrecondition, "cluster has no live hosts");
    }
    auto shards = partition(keys);
    std::vector<std::string> order;
    order.reserve(shards.size());
    for (const auto& [host, shard_keys] : shards) order.push_back(host);
    if (order.empty()) return Partial{};
    std::vector<Partial> partials(order.size());
    if (affinity != nullptr) {
      for (std::size_t i = 0; i < order.size(); ++i) {
        affinity->submit_keyed(order[i], [&, i] {
          partials[i] = map_fn(order[i], shards.at(order[i]));
        });
      }
      affinity->drain();
    } else {
      for (std::size_t i = 0; i < order.size(); ++i) {
        partials[i] = map_fn(order[i], shards.at(order[i]));
      }
    }
    for (const std::string& host : order) {
      charge_transfer(host, config_.origin, result_bytes_per_host, lane);
    }
    Partial result = std::move(partials[0]);
    for (std::size_t i = 1; i < partials.size(); ++i) {
      reduce_fn(result, partials[i]);
    }
    return result;
  }

 private:
  void install_links(const std::string& host);

  ClusterConfig config_;
  std::size_t replication_;
  ClockPtr clock_;
  net::SimNetwork* network_;  // may be null
  obs::MetricsPtr metrics_;   // may be null
  HashRing ring_;
  std::size_t next_host_index_ = 0;
  std::map<std::string, std::unique_ptr<HostStats>> stats_;  // every host ever
  std::atomic<std::uint64_t> total_transfers_{0};
  std::atomic<std::uint64_t> total_bytes_{0};
  std::atomic<SimTime> total_transfer_us_{0};
};

/// The DataLake as a cluster citizen: one storage::DataLake partition per
/// shard-host, placement by the ring over a caller-supplied routing key
/// (ingestion uses the record's content hash, so placement — like the
/// provenance Merkle roots — is a pure function of the workload, never of
/// worker interleaving), sealed-object replication, and rebalance().
///
/// put/get are thread-safe; rebalance() and topology changes are quiesced
/// operations (between drains), like the ring they react to.
class ShardedLake {
 public:
  /// One DataLake partition is created per current cluster host, each with
  /// its own id/IV stream forked off `rng`. `principal` is the identity
  /// the partitions act as toward the KMS (same contract as DataLake).
  ShardedLake(Cluster& cluster, crypto::KeyManagementService& kms,
              std::string principal, Rng rng);

  /// Routes by `routing_key`: encrypt-and-store on the owner host's
  /// partition, then replicate the sealed ciphertext to the ring
  /// successors. Transfer costs (origin->owner upload, owner->replica
  /// copies, metadata-shard manifest) are charged to `lane` or the clock.
  Result<std::string> put(const Bytes& plaintext, const crypto::KeyId& key_id,
                          std::string_view routing_key, SimTime* lane = nullptr);

  /// Reads from the first live replica-chain host holding the object
  /// (owner first), charging the host->origin transfer. After a crash and
  /// before rebalance() the chain walk is what keeps every object
  /// readable; kDataLoss only when every copy is gone.
  Result<Bytes> get(const std::string& reference_id, SimTime* lane = nullptr) const;

  bool contains(const std::string& reference_id) const;
  /// Logical objects (each counted once, wherever its copies live).
  std::size_t object_count() const;
  /// Physical copies across every live partition (>= object_count).
  std::size_t copy_count() const;
  /// All logical reference ids, sorted (canonical iteration order).
  std::vector<std::string> references() const;
  /// The live host currently serving reads for a reference (the first
  /// live chain host holding a copy) — what the fuzz wall cross-checks
  /// against ring recomputation.
  Result<std::string> locate(const std::string& reference_id) const;

  /// Outcome of one rebalance pass (see rebalance()).
  struct RebalanceReport {
    std::uint64_t moved_copies = 0;       // sealed copies installed
    std::uint64_t moved_bytes = 0;        // ciphertext bytes transferred
    std::uint64_t recovered_primaries = 0;  // under-replicated objects
                                            // restored to full replication
    std::uint64_t dropped_copies = 0;     // copies no longer owed, erased
    std::uint64_t lost_objects = 0;       // no surviving copy (replication
                                          // exhausted) — never with one
                                          // crash at replication >= 2
  };

  /// Re-establishes ring placement after add_host()/crash_host(): every
  /// object's copies end up exactly on its current replica set, moved as
  /// sealed ciphertext from the lexicographically-first surviving holder,
  /// iterated in sorted reference order — byte-deterministic. New hosts'
  /// partitions are created on demand.
  RebalanceReport rebalance(SimTime* lane = nullptr);

  /// Canonical digest of the logical contents: sha256 over the sorted
  /// plaintext content hashes of every object. Placement-invariant by
  /// construction — equal digests across 1/2/4/8 hosts, across worker
  /// counts, and across a crash-and-rebalance cycle is the differential
  /// wall's core assertion.
  Result<Bytes> content_digest() const;

  /// Direct access to one host's partition (tests, audits).
  storage::DataLake* partition(const std::string& host);

  // --- checkpoint support (hc::ckpt) -------------------------------------
  /// Sorted (reference, routing key) pairs — capture iterates the same
  /// canonical order content_digest() does.
  std::vector<std::pair<std::string, std::string>> placement_export() const;
  /// Sealed ciphertext copy from the first live holder, owner-chain first
  /// (capture never decrypts — the same discipline replication holds to).
  Result<storage::DataLake::SealedObject> export_copy(
      const std::string& reference_id) const;
  /// Installs a sealed copy on `host`'s partition (created on demand) and
  /// records the routing-key placement. Idempotent (re-import of a present
  /// reference is a no-op) and unmetered: restore runs on the restarted
  /// host's local disk, not over cluster links.
  Status import_copy(const std::string& host, const std::string& reference_id,
                     const std::string& routing_key,
                     storage::DataLake::SealedObject object);

  const Cluster& cluster() const { return *cluster_; }

 private:
  static constexpr std::size_t kPlacementShards = 16;

  struct PlacementShard {
    mutable std::mutex mu;
    std::map<std::string, std::string> routing_keys;  // ref -> routing key
  };

  storage::DataLake& partition_or_create(const std::string& host);
  const storage::DataLake* find_partition(const std::string& host) const;
  PlacementShard& placement_for(const std::string& ref);
  const PlacementShard& placement_for(const std::string& ref) const;
  /// Sorted (ref, routing_key) snapshot across every placement stripe.
  std::vector<std::pair<std::string, std::string>> placement_snapshot() const;
  /// get() without the host->origin transfer charge — content_digest()
  /// must not perturb the sim clock or traffic stats.
  Result<Bytes> get_unmetered(const std::string& reference_id) const;

  Cluster* cluster_;
  crypto::KeyManagementService* kms_;
  std::string principal_;
  mutable std::shared_mutex partitions_mu_;  // map structure
  /// Salt drawn once from the caller's Rng; every partition's IV stream
  /// and reference-id stream is then a pure function of (salt, host), so
  /// lazy partition creation order can never perturb determinism.
  std::uint64_t salt_;
  std::map<std::string, std::unique_ptr<storage::DataLake>> partitions_;
  std::array<PlacementShard, kPlacementShards> placement_;
};

}  // namespace hc::cluster
