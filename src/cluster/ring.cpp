#include "cluster/ring.h"

#include "exec/executor.h"

namespace hc::cluster {

namespace {

/// splitmix64 finalizer. FNV-1a alone clusters on the circle for short,
/// similar inputs ("shard-3#17" vs "shard-3#18" differ in one byte and
/// land near each other in the high bits), which skews arc lengths badly
/// — measured >3x max/mean at 64 hosts x 128 vnodes. One avalanche pass
/// fixes the distribution while staying an explicitly specified,
/// platform-stable function (the same reason the platform uses FNV over
/// std::hash).
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Position of any string (key or vnode label) on the 64-bit circle.
std::uint64_t ring_position(std::string_view text) {
  return mix64(exec::fnv1a64(text));
}

/// Ring position of one virtual node. The "#<i>" suffix matches the
/// per-vnode derivation every consistent-hash deployment uses.
std::uint64_t vnode_position(const std::string& host, std::size_t index) {
  return ring_position(host + "#" + std::to_string(index));
}

}  // namespace

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

Status HashRing::add_host(const std::string& host) {
  if (host.empty()) {
    return Status(StatusCode::kInvalidArgument, "ring host name must not be empty");
  }
  if (hosts_.count(host) != 0) {
    return Status(StatusCode::kAlreadyExists, "host already on the ring: " + host);
  }
  hosts_.insert(host);
  for (std::size_t i = 0; i < vnodes_; ++i) {
    points_.emplace(vnode_position(host, i), host);
  }
  return Status::ok();
}

Status HashRing::remove_host(const std::string& host) {
  if (hosts_.erase(host) == 0) {
    return Status(StatusCode::kNotFound, "host not on the ring: " + host);
  }
  for (std::size_t i = 0; i < vnodes_; ++i) {
    points_.erase(Point{vnode_position(host, i), host});
  }
  return Status::ok();
}

bool HashRing::has_host(const std::string& host) const {
  return hosts_.count(host) != 0;
}

std::vector<std::string> HashRing::hosts() const {
  return {hosts_.begin(), hosts_.end()};
}

const std::string* HashRing::owner(std::string_view key) const {
  if (points_.empty()) return nullptr;
  // First point at or clockwise of the key's hash; ties on the position
  // value resolve by host name, insertion-order independently.
  auto it = points_.lower_bound(Point{ring_position(key), std::string()});
  if (it == points_.end()) it = points_.begin();  // wrap around the circle
  return &it->second;
}

std::vector<std::string> HashRing::owners(std::string_view key, std::size_t n) const {
  std::vector<std::string> out;
  if (points_.empty() || n == 0) return out;
  const std::size_t want = std::min(n, hosts_.size());
  out.reserve(want);
  auto it = points_.lower_bound(Point{ring_position(key), std::string()});
  if (it == points_.end()) it = points_.begin();
  // Walk clockwise collecting distinct hosts; at most one full revolution.
  for (std::size_t seen = 0; seen < points_.size() && out.size() < want; ++seen) {
    bool duplicate = false;
    for (const std::string& have : out) {
      if (have == it->second) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(it->second);
    ++it;
    if (it == points_.end()) it = points_.begin();
  }
  return out;
}

std::map<std::string, std::size_t> HashRing::load_of(
    const std::vector<std::string>& keys) const {
  std::map<std::string, std::size_t> load;
  for (const std::string& host : hosts_) load[host] = 0;
  for (const std::string& key : keys) {
    if (const std::string* host = owner(key)) ++load[*host];
  }
  return load;
}

}  // namespace hc::cluster
