#include "cluster/cluster.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "exec/executor.h"

namespace hc::cluster {

namespace {

/// Simulated size of the metadata-shard manifest a stored record sends to
/// its metadata owner (routing info, content hash, policy tags).
constexpr std::size_t kMetadataManifestBytes = 256;

}  // namespace

// ---------------------------------------------------------------- Cluster

Cluster::Cluster(ClusterConfig config, ClockPtr clock, net::SimNetwork* network,
                 obs::MetricsPtr metrics)
    : config_(std::move(config)),
      replication_(std::max<std::size_t>(1, config_.replication)),
      clock_(std::move(clock)),
      network_(network),
      metrics_(std::move(metrics)),
      ring_(config_.vnodes) {
  const std::size_t hosts = std::max<std::size_t>(1, config_.hosts);
  replication_ = std::min(replication_, hosts);
  for (std::size_t i = 0; i < hosts; ++i) {
    (void)add_host();
  }
}

void Cluster::install_links(const std::string& host) {
  if (network_ == nullptr) return;
  network_->set_link(config_.origin, host, config_.link);
  for (const auto& [other, stats] : stats_) {
    if (other != host) network_->set_link(host, other, config_.link);
  }
}

Result<std::string> Cluster::add_host() {
  std::string host = config_.host_prefix + std::to_string(next_host_index_++);
  if (Status s = ring_.add_host(host); !s.is_ok()) return s;
  if (stats_.find(host) == stats_.end()) {
    stats_.emplace(host, std::make_unique<HostStats>());
  }
  install_links(host);
  if (metrics_) metrics_->set_gauge("hc.cluster.hosts",
                                    static_cast<double>(ring_.host_count()));
  return host;
}

Status Cluster::crash_host(const std::string& host) {
  if (!ring_.has_host(host)) {
    return Status(StatusCode::kNotFound, "host not in the cluster: " + host);
  }
  if (ring_.host_count() == 1) {
    return Status(StatusCode::kFailedPrecondition,
                  "cannot crash the last shard-host: " + host);
  }
  if (Status s = ring_.remove_host(host); !s.is_ok()) return s;
  if (metrics_) {
    metrics_->add("hc.cluster.host_crashes");
    metrics_->set_gauge("hc.cluster.hosts", static_cast<double>(ring_.host_count()));
  }
  return Status::ok();
}

bool Cluster::host_up(const std::string& host) const {
  if (!ring_.has_host(host)) return false;
  if (network_ != nullptr && network_->host_down(host)) return false;
  return true;
}

SimTime Cluster::charge_transfer(const std::string& from, const std::string& to,
                                 std::size_t bytes, SimTime* lane) {
  if (from == to) return 0;  // loopback: same-host access is free
  // Deterministic by construction: base latency + serialization delay,
  // no jitter draw and no loss — so the charging order (which parallel
  // workers do not control) cannot change the total.
  SimTime cost = config_.link.base_latency +
                 static_cast<SimTime>(static_cast<double>(bytes) /
                                      config_.link.bandwidth_bytes_per_us);
  if (lane != nullptr) {
    *lane += cost;
  } else {
    clock_->advance(cost);
  }
  auto credit = [&](const std::string& host, bool inbound) {
    auto it = stats_.find(host);
    if (it == stats_.end()) return;  // origin has no host entry
    HostStats& stats = *it->second;
    (inbound ? stats.transfers_in : stats.transfers_out).fetch_add(1);
    (inbound ? stats.bytes_in : stats.bytes_out).fetch_add(bytes);
  };
  credit(from, /*inbound=*/false);
  credit(to, /*inbound=*/true);
  total_transfers_.fetch_add(1);
  total_bytes_.fetch_add(bytes);
  total_transfer_us_.fetch_add(cost);
  if (metrics_) {
    metrics_->observe("hc.cluster.transfer_us", static_cast<double>(cost));
  }
  return cost;
}

const HostStats& Cluster::host_stats(const std::string& host) const {
  static const HostStats kEmpty;
  auto it = stats_.find(host);
  return it == stats_.end() ? kEmpty : *it->second;
}

void Cluster::count_primary(const std::string& host) {
  auto it = stats_.find(host);
  if (it != stats_.end()) it->second->primaries.fetch_add(1);
}

std::map<std::string, std::vector<std::string>> Cluster::partition(
    const std::vector<std::string>& keys) const {
  std::map<std::string, std::vector<std::string>> shards;
  for (const std::string& host : ring_.hosts()) shards[host];
  for (const std::string& key : keys) {
    if (const std::string* host = ring_.owner(key)) shards[*host].push_back(key);
  }
  return shards;
}

// ------------------------------------------------------------- ShardedLake

ShardedLake::ShardedLake(Cluster& cluster, crypto::KeyManagementService& kms,
                         std::string principal, Rng rng)
    : cluster_(&cluster),
      kms_(&kms),
      principal_(std::move(principal)),
      salt_(rng.engine()()) {
  for (const std::string& host : cluster_->hosts()) {
    (void)partition_or_create(host);
  }
}

storage::DataLake& ShardedLake::partition_or_create(const std::string& host) {
  {
    std::shared_lock read(partitions_mu_);
    auto it = partitions_.find(host);
    if (it != partitions_.end()) return *it->second;
  }
  std::unique_lock write(partitions_mu_);
  auto it = partitions_.find(host);
  if (it == partitions_.end()) {
    // Both streams are pure functions of (salt, host). The distinct id
    // seed per host is load-bearing: DataLake's default seed is fixed, so
    // two partitions sharing it would mint identical "ref-<uuid>"
    // sequences and replication between them would collide on ref ids.
    const std::uint64_t host_hash = exec::fnv1a64(host);
    const std::uint64_t iv_seed = salt_ ^ (host_hash * 0x9e3779b97f4a7c15ULL);
    const std::uint64_t id_seed = salt_ + (host_hash ^ 0xc2b2ae3d27d4eb4fULL);
    it = partitions_
             .emplace(host, std::make_unique<storage::DataLake>(
                                *kms_, principal_, Rng(iv_seed), id_seed))
             .first;
  }
  return *it->second;
}

const storage::DataLake* ShardedLake::find_partition(const std::string& host) const {
  std::shared_lock read(partitions_mu_);
  auto it = partitions_.find(host);
  return it == partitions_.end() ? nullptr : it->second.get();
}

ShardedLake::PlacementShard& ShardedLake::placement_for(const std::string& ref) {
  return placement_[exec::shard_by(ref, kPlacementShards)];
}

const ShardedLake::PlacementShard& ShardedLake::placement_for(
    const std::string& ref) const {
  return placement_[exec::shard_by(ref, kPlacementShards)];
}

Result<std::string> ShardedLake::put(const Bytes& plaintext,
                                     const crypto::KeyId& key_id,
                                     std::string_view routing_key, SimTime* lane) {
  std::vector<std::string> chain = cluster_->owners(routing_key);
  if (chain.empty()) {
    return Status(StatusCode::kFailedPrecondition, "cluster has no live hosts");
  }
  const std::string& owner = chain[0];
  // Upload hop: origin -> owner carries the record; the metadata-shard
  // manifest rides to its own owner (separate hash namespace).
  cluster_->charge_transfer(cluster_->origin(), owner, plaintext.size(), lane);
  const std::string meta_key(routing_key);
  if (const std::string* meta_host = cluster_->metadata_owner(meta_key)) {
    cluster_->charge_transfer(cluster_->origin(), *meta_host, kMetadataManifestBytes,
                              lane);
  }

  storage::DataLake& primary = partition_or_create(owner);
  auto reference = primary.put(plaintext, key_id);
  if (!reference.is_ok()) return reference;

  // Replicate sealed ciphertext to the ring successors — the storage tier
  // never decrypts to replicate (ReplicatedDataLake's discipline).
  if (chain.size() > 1) {
    auto sealed = primary.export_object(*reference);
    if (!sealed.is_ok()) return sealed.status();
    for (std::size_t i = 1; i < chain.size(); ++i) {
      cluster_->charge_transfer(owner, chain[i], sealed->ciphertext.size(), lane);
      Status imported =
          partition_or_create(chain[i]).import_object(*reference, *sealed);
      if (!imported.is_ok()) return imported;
    }
  }

  {
    PlacementShard& shard = placement_for(*reference);
    std::lock_guard lock(shard.mu);
    shard.routing_keys.emplace(*reference, std::string(routing_key));
  }
  cluster_->count_primary(owner);
  return reference;
}

Result<Bytes> ShardedLake::get(const std::string& reference_id, SimTime* lane) const {
  std::string routing_key;
  {
    const PlacementShard& shard = placement_for(reference_id);
    std::lock_guard lock(shard.mu);
    auto it = shard.routing_keys.find(reference_id);
    if (it == shard.routing_keys.end()) {
      return Status(StatusCode::kNotFound, "unknown reference: " + reference_id);
    }
    routing_key = it->second;
  }
  // Owner-first chain walk, then (multi-crash edge) every live partition
  // in sorted host order.
  std::vector<std::string> candidates = cluster_->owners(routing_key);
  for (const std::string& host : cluster_->hosts()) {
    if (std::find(candidates.begin(), candidates.end(), host) == candidates.end()) {
      candidates.push_back(host);
    }
  }
  for (const std::string& host : candidates) {
    if (!cluster_->host_up(host)) continue;
    const storage::DataLake* lake = find_partition(host);
    if (lake == nullptr || !lake->contains(reference_id)) continue;
    auto plaintext = lake->get(reference_id);
    if (!plaintext.is_ok()) return plaintext;
    cluster_->charge_transfer(host, cluster_->origin(), plaintext->size(), lane);
    return plaintext;
  }
  return Status(StatusCode::kDataLoss,
                "every replica of " + reference_id + " is unreachable");
}

Result<std::string> ShardedLake::locate(const std::string& reference_id) const {
  std::string routing_key;
  {
    const PlacementShard& shard = placement_for(reference_id);
    std::lock_guard lock(shard.mu);
    auto it = shard.routing_keys.find(reference_id);
    if (it == shard.routing_keys.end()) {
      return Status(StatusCode::kNotFound, "unknown reference: " + reference_id);
    }
    routing_key = it->second;
  }
  for (const std::string& host : cluster_->owners(routing_key)) {
    if (!cluster_->host_up(host)) continue;
    const storage::DataLake* lake = find_partition(host);
    if (lake != nullptr && lake->contains(reference_id)) return host;
  }
  for (const std::string& host : cluster_->hosts()) {
    if (!cluster_->host_up(host)) continue;
    const storage::DataLake* lake = find_partition(host);
    if (lake != nullptr && lake->contains(reference_id)) return host;
  }
  return Status(StatusCode::kDataLoss,
                "every replica of " + reference_id + " is unreachable");
}

bool ShardedLake::contains(const std::string& reference_id) const {
  const PlacementShard& shard = placement_for(reference_id);
  std::lock_guard lock(shard.mu);
  return shard.routing_keys.count(reference_id) != 0;
}

std::size_t ShardedLake::object_count() const {
  std::size_t total = 0;
  for (const PlacementShard& shard : placement_) {
    std::lock_guard lock(shard.mu);
    total += shard.routing_keys.size();
  }
  return total;
}

std::size_t ShardedLake::copy_count() const {
  std::size_t total = 0;
  std::shared_lock read(partitions_mu_);
  for (const auto& [host, lake] : partitions_) {
    if (cluster_->host_up(host)) total += lake->object_count();
  }
  return total;
}

std::vector<std::string> ShardedLake::references() const {
  std::vector<std::string> refs;
  for (const PlacementShard& shard : placement_) {
    std::lock_guard lock(shard.mu);
    for (const auto& [ref, key] : shard.routing_keys) refs.push_back(ref);
  }
  std::sort(refs.begin(), refs.end());
  return refs;
}

std::vector<std::pair<std::string, std::string>> ShardedLake::placement_snapshot()
    const {
  std::vector<std::pair<std::string, std::string>> snapshot;
  for (const PlacementShard& shard : placement_) {
    std::lock_guard lock(shard.mu);
    snapshot.insert(snapshot.end(), shard.routing_keys.begin(),
                    shard.routing_keys.end());
  }
  std::sort(snapshot.begin(), snapshot.end());
  return snapshot;
}

ShardedLake::RebalanceReport ShardedLake::rebalance(SimTime* lane) {
  RebalanceReport report;
  for (const auto& [ref, routing_key] : placement_snapshot()) {
    std::vector<std::string> want = cluster_->owners(routing_key);
    // Surviving holders, sorted: the lexicographically-first is the move
    // source (deterministic regardless of which copy was the primary).
    std::vector<std::string> have;
    for (const std::string& host : cluster_->hosts()) {
      if (!cluster_->host_up(host)) continue;
      const storage::DataLake* lake = find_partition(host);
      if (lake != nullptr && lake->contains(ref)) have.push_back(host);
    }
    if (have.empty()) {
      ++report.lost_objects;
      continue;
    }
    const std::string& source = have[0];
    // Crash recovery (as opposed to a join's ownership shuffle): the
    // object is under-replicated — a holder died — and this pass restores
    // full replication from the surviving copies.
    if (have.size() < want.size()) ++report.recovered_primaries;
    auto held = [&](const std::string& host) {
      return std::find(have.begin(), have.end(), host) != have.end();
    };
    for (const std::string& target : want) {
      if (held(target)) continue;
      auto sealed = partition_or_create(source).export_object(ref);
      if (!sealed.is_ok()) continue;  // source vanished mid-pass (impossible quiesced)
      cluster_->charge_transfer(source, target, sealed->ciphertext.size(), lane);
      report.moved_bytes += sealed->ciphertext.size();
      Status imported = partition_or_create(target).import_object(ref, *sealed);
      if (imported.is_ok()) ++report.moved_copies;
    }
    for (const std::string& holder : have) {
      if (std::find(want.begin(), want.end(), holder) == want.end()) {
        if (partition_or_create(holder).erase(ref).is_ok()) ++report.dropped_copies;
      }
    }
  }
  return report;
}

Result<Bytes> ShardedLake::get_unmetered(const std::string& reference_id) const {
  std::shared_lock read(partitions_mu_);
  for (const auto& [host, lake] : partitions_) {
    if (!cluster_->host_up(host)) continue;
    if (!lake->contains(reference_id)) continue;
    return lake->get(reference_id);
  }
  return Status(StatusCode::kDataLoss,
                "every replica of " + reference_id + " is unreachable");
}

Result<Bytes> ShardedLake::content_digest() const {
  std::vector<Bytes> hashes;
  for (const auto& [ref, routing_key] : placement_snapshot()) {
    auto plaintext = get_unmetered(ref);
    if (!plaintext.is_ok()) return plaintext.status();
    hashes.push_back(crypto::sha256(*plaintext));
  }
  std::sort(hashes.begin(), hashes.end());
  Bytes all;
  all.reserve(hashes.size() * 32);
  for (const Bytes& hash : hashes) all.insert(all.end(), hash.begin(), hash.end());
  return crypto::sha256(all);
}

storage::DataLake* ShardedLake::partition(const std::string& host) {
  std::shared_lock read(partitions_mu_);
  auto it = partitions_.find(host);
  return it == partitions_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<std::string, std::string>> ShardedLake::placement_export()
    const {
  return placement_snapshot();
}

Result<storage::DataLake::SealedObject> ShardedLake::export_copy(
    const std::string& reference_id) const {
  std::string routing_key;
  {
    const PlacementShard& shard = placement_for(reference_id);
    std::lock_guard lock(shard.mu);
    auto it = shard.routing_keys.find(reference_id);
    if (it == shard.routing_keys.end()) {
      return Status(StatusCode::kNotFound, "unknown reference: " + reference_id);
    }
    routing_key = it->second;
  }
  std::vector<std::string> candidates = cluster_->owners(routing_key);
  for (const std::string& host : cluster_->hosts()) {
    if (std::find(candidates.begin(), candidates.end(), host) == candidates.end()) {
      candidates.push_back(host);
    }
  }
  for (const std::string& host : candidates) {
    if (!cluster_->host_up(host)) continue;
    const storage::DataLake* lake = find_partition(host);
    if (lake == nullptr || !lake->contains(reference_id)) continue;
    return lake->export_object(reference_id);
  }
  return Status(StatusCode::kDataLoss,
                "every replica of " + reference_id + " is unreachable");
}

Status ShardedLake::import_copy(const std::string& host,
                                const std::string& reference_id,
                                const std::string& routing_key,
                                storage::DataLake::SealedObject object) {
  Status imported =
      partition_or_create(host).import_object(reference_id, std::move(object));
  if (!imported.is_ok() && imported.code() != StatusCode::kAlreadyExists) {
    return imported;
  }
  PlacementShard& shard = placement_for(reference_id);
  std::lock_guard lock(shard.mu);
  shard.routing_keys.emplace(reference_id, routing_key);
  return Status::ok();
}

}  // namespace hc::cluster
