// Intercloud Secure Gateway (Section II.C).
//
// "Our design of extending the root of trust to the level of containers
// allows transfer of trusted analytic workloads (packaged in containers)
// across different cloud instances ... This allows the computation to be
// transferred to data instead of otherwise ... The intercloud secure
// gateway facilitates transfer of these trusted analytics containers
// between cloud platforms and also offers a service of Remote Attestation
// for the platform to attest when the analytics workload is started."
//
// Transfer flow between two HealthCloudInstances:
//   1. source looks up the signed container image,
//   2. bytes cross the intercloud link (network-charged),
//   3. destination verifies the manifest signature against its approved
//      key list (signer must be trusted by the *destination*),
//   4. destination launches the container in a vTPM-measured sandbox and
//      runs remote attestation of the workload before it may start.
// Any tamper or unapproved signer rejects the transfer.
#pragma once

#include <memory>
#include <string>

#include "fault/resilience.h"
#include "platform/instance.h"

namespace hc::platform {

struct TransferReceipt {
  std::string image;            // name@version
  SimTime transfer_latency = 0; // network time for the image bytes
  SimTime attestation_latency = 0;
  std::string vtpm_id;          // sandbox identity at the destination
};

/// Resilience knobs for one gateway: the network leg retries under
/// `retry` (intercloud links drop; crashed destinations time out), and a
/// whole transfer must finish inside `timeout` sim-time (0 = unlimited).
struct TransferResilience {
  fault::RetryPolicy retry{/*max_attempts=*/1};  // off by default
  SimTime timeout = 0;
};

class IntercloudGateway {
 public:
  /// Both instances must be endpoints on the same SimNetwork with an
  /// intercloud link configured between their names.
  IntercloudGateway(HealthCloudInstance& source, HealthCloudInstance& destination);

  /// Ships image name@version from source to destination and performs the
  /// attested launch. On success the image is registered at the
  /// destination and the receipt describes the costs.
  ///
  /// Operational failures (drops, destination down, timeout) feed the
  /// gateway's circuit breaker; while it is open, transfers fast-fail
  /// with kUnavailable until the cooldown's half-open probe succeeds.
  Result<TransferReceipt> transfer_and_launch(const std::string& name,
                                              const std::string& version);

  void set_resilience(TransferResilience resilience) {
    resilience_ = std::move(resilience);
  }
  void set_breaker_config(fault::CircuitBreakerConfig config);

  fault::BreakerState breaker_state() const { return breaker_->state(); }

  /// Testing hook: corrupt the next image's bytes in flight.
  void tamper_next_transfer() { tamper_next_ = true; }

 private:
  Result<TransferReceipt> transfer_attempt(const std::string& name,
                                           const std::string& version);

  HealthCloudInstance* source_;
  HealthCloudInstance* destination_;
  TransferResilience resilience_;
  std::unique_ptr<fault::CircuitBreaker> breaker_;
  Rng rng_;  // jitter for retry backoff — seeded, so schedules are pinned
  bool tamper_next_ = false;
};

}  // namespace hc::platform
