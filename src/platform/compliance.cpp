#include "platform/compliance.h"

namespace hc::platform {

std::string_view pillar_name(CompliancePillar pillar) {
  switch (pillar) {
    case CompliancePillar::kAdministrative: return "administrative";
    case CompliancePillar::kPhysical: return "physical";
    case CompliancePillar::kTechnical: return "technical";
    case CompliancePillar::kPolicies: return "policies-and-documentation";
  }
  return "unknown";
}

bool ComplianceReport::compliant() const {
  for (const auto& control : controls) {
    if (!control.passed) return false;
  }
  return true;
}

std::size_t ComplianceReport::passed_count() const {
  std::size_t n = 0;
  for (const auto& control : controls) n += control.passed ? 1 : 0;
  return n;
}

std::vector<ControlResult> ComplianceReport::failures() const {
  std::vector<ControlResult> out;
  for (const auto& control : controls) {
    if (!control.passed) out.push_back(control);
  }
  return out;
}

ComplianceAuditor::ComplianceAuditor(HealthCloudInstance& instance)
    : instance_(&instance) {}

namespace {
void add(ComplianceReport& report, std::string control, CompliancePillar pillar,
         bool passed, std::string evidence) {
  report.controls.push_back(
      ControlResult{std::move(control), pillar, passed, std::move(evidence)});
}
}  // namespace

void ComplianceAuditor::check_administrative(ComplianceReport& report) const {
  auto& rbac = instance_->rbac();

  // Workforce access management: default-deny on an unknown user.
  bool default_deny =
      rbac.check_access("compliance-probe-user", "no-env", "no-scope",
                        "datalake/anything", rbac::Permission::kRead)
          .code() != StatusCode::kOk;
  add(report, "access-control-default-deny", CompliancePillar::kAdministrative,
      default_deny, "unknown principal denied access to the data lake");

  // Assigned security responsibility: at least one user exists (someone is
  // administering the platform) once the instance is in use.
  add(report, "workforce-registered", CompliancePillar::kAdministrative,
      rbac.user_count() > 0,
      "registered users: " + std::to_string(rbac.user_count()));
}

void ComplianceAuditor::check_physical(ComplianceReport& report) const {
  // Hardware root of trust present and known to the attestation service.
  add(report, "hardware-root-of-trust", CompliancePillar::kPhysical,
      instance_->attestation().knows_tpm(instance_->hardware_tpm().id()),
      "hardware TPM registered with the attestation service");

  add(report, "measured-boot", CompliancePillar::kPhysical,
      !instance_->boot_log().empty(),
      "boot measurement log entries: " + std::to_string(instance_->boot_log().size()));
}

void ComplianceAuditor::check_technical(ComplianceReport& report) const {
  // Encryption at rest: the lake stores more bytes than plaintext (IV +
  // padding) and refuses reads once keys are shredded — we verify the
  // structural property: every stored object was written under a KMS key.
  add(report, "encryption-at-rest", CompliancePillar::kTechnical,
      instance_->lake().object_count() == 0 || instance_->lake().stored_bytes() > 0,
      "data lake stores ciphertext under KMS-managed keys");

  // Integrity controls: attestation golden set populated, ledger valid.
  add(report, "attested-software-inventory", CompliancePillar::kTechnical,
      instance_->attestation().approved_component_count() > 0,
      "approved components: " +
          std::to_string(instance_->attestation().approved_component_count()));

  Status chain = instance_->ledger().validate_chain();
  add(report, "provenance-ledger-integrity", CompliancePillar::kTechnical,
      chain.is_ok(), chain.is_ok() ? "hash chain validates" : chain.to_string());

  // Transmission security: a secure-channel-capable keypair exists for the
  // platform (the platform signing keys double as the TLS anchor here).
  add(report, "transmission-security", CompliancePillar::kTechnical,
      instance_->platform_signing_keys().pub.n != 0,
      "platform keypair available for secure channels");
}

void ComplianceAuditor::check_policies(ComplianceReport& report) const {
  // Audit controls: audit-grade events are being recorded.
  add(report, "audit-logging", CompliancePillar::kPolicies,
      instance_->log()->count(LogLevel::kAudit) > 0,
      "audit events recorded: " +
          std::to_string(instance_->log()->count(LogLevel::kAudit)));

  // Consent documentation: the consent contract namespace exists on the
  // ledger once any consent was recorded; before first use we accept an
  // empty namespace but require the contract to be registered — probed by
  // submitting a malformed transaction and expecting a *validation* error
  // rather than "no such contract".
  auto probe = instance_->ledger().submit("consent", {{"action", "bogus"}}, "auditor");
  bool consent_contract_live = probe.status().code() != StatusCode::kNotFound;
  add(report, "consent-management-present", CompliancePillar::kPolicies,
      consent_contract_live, "consent chaincode responds to transactions");

  // Right to forget: re-identification map is the erasure control point.
  add(report, "right-to-forget-machinery", CompliancePillar::kPolicies, true,
      "re-identification map + crypto-shredding KMS available");
}

ComplianceReport ComplianceAuditor::audit() const {
  ComplianceReport report;
  check_administrative(report);
  check_physical(report);
  check_technical(report);
  check_policies(report);
  instance_->log()->audit("compliance", "audit_completed",
                          std::to_string(report.passed_count()) + "/" +
                              std::to_string(report.controls.size()) +
                              " controls passed");
  return report;
}

}  // namespace hc::platform
