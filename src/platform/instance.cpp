#include "platform/instance.h"

#include <cctype>

namespace hc::platform {

namespace {

// Section IV.E: "such logged events cannot contain sensitive data". The
// platform-wide scrubber masks SSN-shaped tokens (ddd-dd-dddd) and email
// addresses before any detail string reaches the log store.
std::string scrub_log_detail(const std::string& detail) {
  std::string out = detail;
  auto digit = [&](std::size_t i) {
    return i < out.size() && std::isdigit(static_cast<unsigned char>(out[i]));
  };
  for (std::size_t i = 0; i + 10 < out.size() + 1; ++i) {
    if (digit(i) && digit(i + 1) && digit(i + 2) && out[i + 3] == '-' &&
        digit(i + 4) && digit(i + 5) && out[i + 6] == '-' && digit(i + 7) &&
        digit(i + 8) && digit(i + 9) && digit(i + 10)) {
      out.replace(i, 11, "[ssn]");
    }
  }
  for (std::size_t at = out.find('@'); at != std::string::npos; at = out.find('@')) {
    std::size_t start = at;
    while (start > 0 && !std::isspace(static_cast<unsigned char>(out[start - 1]))) {
      --start;
    }
    std::size_t end = at;
    while (end < out.size() && !std::isspace(static_cast<unsigned char>(out[end]))) {
      ++end;
    }
    out.replace(start, end - start, "[email]");
  }
  return out;
}

}  // namespace

HealthCloudInstance::HealthCloudInstance(InstanceConfig config, ClockPtr clock,
                                         net::SimNetwork& network)
    : config_(std::move(config)), clock_(std::move(clock)), network_(&network) {
  Rng rng(config_.seed);
  log_ = make_log(clock_);
  log_->set_scrubber(scrub_log_detail);
  metrics_ = obs::make_metrics();

  // --- trusted infrastructure: TPM-anchored measured boot ----------------
  platform_keys_ = crypto::generate_keypair(rng);
  // The hardware TPM's endorsement keypair doubles as the instance signing
  // key so the vTPM manager can certify child vTPMs with it.
  crypto::KeyPair tpm_keys = crypto::generate_keypair(rng);
  tpm_ = std::make_unique<tpm::Tpm>(config_.name + "/tpm", tpm_keys);
  vtpm_manager_ =
      std::make_unique<tpm::VTpmManager>(*tpm_, tpm_keys.priv, rng.fork());
  attestation_ = std::make_unique<tpm::AttestationService>(rng.fork(), log_);
  images_ = std::make_unique<tpm::ImageManagementService>();
  images_->approve_key(platform_keys_.pub);

  auto stack = tpm::standard_vm_stack(
      to_bytes(config_.name + "-bios-v1"), to_bytes(config_.name + "-kernel-v5"),
      {to_bytes("libcrypto"), to_bytes("libfhir"), to_bytes("libanalytics")});
  boot_log_ = tpm::measured_launch(*tpm_, stack);
  attestation_->register_tpm(tpm_->id(), tpm_->endorsement_key());
  for (const auto& component : stack) {
    attestation_->approve_component(component.name, crypto::sha256(component.content));
  }

  // --- platform services ---------------------------------------------------
  kms_ = std::make_unique<crypto::KeyManagementService>(config_.name, rng.fork(), log_);
  rbac_ = std::make_unique<rbac::RbacSystem>(log_);
  federated_auth_ = std::make_unique<rbac::FederatedAuthenticator>(clock_);

  blockchain::LedgerConfig ledger_config;
  for (std::size_t i = 0; i < config_.ledger_peers; ++i) {
    ledger_config.peers.push_back(config_.name + "/peer-" + std::to_string(i));
  }
  ledger_ = std::make_unique<blockchain::PermissionedLedger>(ledger_config, clock_, log_,
                                                             nullptr, metrics_);
  Status contracts = blockchain::register_hcls_contracts(*ledger_);
  if (!contracts.is_ok()) {
    throw std::runtime_error("contract registration failed: " + contracts.to_string());
  }
  if (config_.hybrid_provenance) {
    Status anchor = provenance::BatchAnchorer::register_contract(*ledger_);
    if (!anchor.is_ok()) {
      throw std::runtime_error("anchor contract registration failed: " +
                               anchor.to_string());
    }
    anchorer_ = std::make_unique<provenance::BatchAnchorer>(
        *ledger_, clock_, provenance::AnchorerConfig{}, metrics_, log_);
  }

  // --- storage + ingestion -------------------------------------------------
  staging_ = std::make_unique<storage::StagingArea>();
  queue_ = std::make_unique<storage::MessageQueue>();
  tracker_ = std::make_unique<storage::StatusTracker>();
  lake_ = std::make_unique<storage::DataLake>(*kms_, "platform", rng.fork());
  metadata_ = std::make_unique<storage::MetadataStore>();
  verifier_ = std::make_unique<privacy::AnonymizationVerificationService>(
      privacy::FieldSchema::standard_patient(), config_.verifier_min_score,
      config_.verifier_min_k);
  reid_map_ = std::make_unique<privacy::ReidentificationMap>();
  lake_key_ = kms_->create_symmetric_key("platform");

  ingestion::IngestionDeps deps;
  deps.clock = clock_;
  deps.log = log_;
  deps.kms = kms_.get();
  deps.staging = staging_.get();
  deps.queue = queue_.get();
  deps.tracker = tracker_.get();
  deps.lake = lake_.get();
  deps.metadata = metadata_.get();
  deps.ledger = ledger_.get();
  deps.verifier = verifier_.get();
  deps.reid_map = reid_map_.get();
  deps.metrics = metrics_;
  deps.anchorer = anchorer_.get();
  ingestion_ = std::make_unique<ingestion::IngestionService>(
      deps, lake_key_, rng.bytes(32), "platform");
  if (anchorer_) {
    prov_auditor_ = std::make_unique<provenance::ProvenanceAuditor>(
        *anchorer_, *ledger_, clock_, metrics_);
  }
  export_ = std::make_unique<ingestion::ExportService>(*lake_, *metadata_, *reid_map_,
                                                       ledger_.get());

  // --- analytics + brokering ----------------------------------------------
  models_ = std::make_unique<analytics::ModelRegistry>(log_);
  services_ = std::make_unique<services::ServiceRegistry>(clock_, rng.fork());
  knowledge_ = std::make_unique<services::KnowledgeHub>(clock_);

  log_->info("platform", "instance_started", config_.name);
}

crypto::KeyId HealthCloudInstance::issue_client_keypair(const std::string& user_id) {
  crypto::KeyId key_id = kms_->create_keypair(user_id);
  // The ingestion worker must be able to unwrap client uploads.
  (void)kms_->authorize(key_id, user_id, "platform");
  log_->audit("platform", "client_keypair_issued", user_id + " -> " + key_id);
  return key_id;
}

Result<std::size_t> HealthCloudInstance::forget_patient(const std::string& pseudonym) {
  auto records = metadata_->by_pseudonym(pseudonym);
  if (records.empty()) {
    return Status(StatusCode::kNotFound, "no records for pseudonym " + pseudonym);
  }
  for (const auto& md : records) {
    (void)ledger_->submit_and_commit(
        "provenance",
        {{"action", "record_event"},
         {"record_ref", md.reference_id},
         {"event", "deleted"},
         {"data_hash", hex_encode(md.content_hash)}},
        "platform");
    (void)lake_->erase(md.reference_id);
    (void)metadata_->erase(md.reference_id);
  }
  // Crypto-shred the patient's data key: even copies of the ciphertext
  // outside the lake (backups, replicas) become unrecoverable.
  if (auto key = ingestion_->patient_key(pseudonym); key.is_ok()) {
    (void)kms_->destroy(*key, "platform");
  }
  reid_map_->forget(pseudonym);
  log_->audit("platform", "patient_forgotten",
              pseudonym + " records=" + std::to_string(records.size()));
  return records.size();
}

}  // namespace hc::platform
