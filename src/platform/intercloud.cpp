#include "platform/intercloud.h"

#include "crypto/sha256.h"
#include "tpm/trust_chain.h"

namespace hc::platform {

IntercloudGateway::IntercloudGateway(HealthCloudInstance& source,
                                     HealthCloudInstance& destination)
    : source_(&source), destination_(&destination), rng_(0x1c7e57) {
  fault::CircuitBreakerConfig config;
  config.name = "intercloud." + destination.name();
  breaker_ = std::make_unique<fault::CircuitBreaker>(
      std::move(config), source.clock(), source.metrics());
}

void IntercloudGateway::set_breaker_config(fault::CircuitBreakerConfig config) {
  if (config.name == "default") {
    config.name = "intercloud." + destination_->name();
  }
  breaker_ = std::make_unique<fault::CircuitBreaker>(
      std::move(config), source_->clock(), source_->metrics());
}

Result<TransferReceipt> IntercloudGateway::transfer_and_launch(
    const std::string& name, const std::string& version) {
  if (Status gate = breaker_->allow(); !gate.is_ok()) {
    if (obs::MetricsPtr metrics = source_->metrics()) {
      metrics->add("hc.intercloud.breaker_rejected");
    }
    return gate;
  }
  auto receipt = transfer_attempt(name, version);
  if (receipt.is_ok()) {
    breaker_->record_success();
  } else if (fault::retryable(receipt.status())) {
    // Only operational failures count: a tampered image or unapproved
    // signer is a *security* rejection, not a sick destination.
    breaker_->record_failure();
  }
  return receipt;
}

Result<TransferReceipt> IntercloudGateway::transfer_attempt(
    const std::string& name, const std::string& version) {
  // 1. Fetch the signed image at the source.
  auto manifest = source_->images().manifest(name, version);
  if (!manifest.is_ok()) return manifest.status();
  auto content = source_->images().content(name, version);
  if (!content.is_ok()) return content.status();

  Bytes shipped = *content;
  if (tamper_next_) {
    tamper_next_ = false;
    shipped[shipped.size() / 2] ^= 0x1;
  }

  // 2. Ship manifest + bytes over the intercloud link, retrying transient
  //    losses under the configured policy inside the per-transfer deadline.
  fault::Deadline deadline(*source_->clock(), resilience_.timeout);
  SimTime transfer_start = source_->clock()->now();
  obs::MetricsPtr metrics = source_->metrics();
  auto sent = fault::with_retry(
      resilience_.retry, *source_->clock(), rng_,
      [&]() -> Result<SimTime> {
        if (Status s = deadline.check("intercloud transfer"); !s.is_ok()) return s;
        return source_->network().send(source_->name(), destination_->name(),
                                       shipped.size() + 1024, &shipped);
      },
      metrics.get(), "hc.intercloud.send");
  if (!sent.is_ok()) return sent.status();
  if (Status s = deadline.check("intercloud transfer"); !s.is_ok()) return s;
  SimTime transfer_latency = source_->clock()->now() - transfer_start;

  // 3. Destination verifies signature + signer approval + digest.
  if (Status s = destination_->images().verify_image(*manifest, shipped); !s.is_ok()) {
    destination_->log()->error("intercloud", "transfer_rejected",
                               name + "@" + version + ": " + s.to_string());
    return s;
  }

  // 4. Attested launch: measure the container into a fresh vTPM and let the
  //    destination's attestation service verify before the workload starts.
  SimTime attest_start = destination_->clock()->now();
  // Modeled compute: the container is hashed for measurement and once more
  // for log replay (~200 MB/s), plus quote generation + verification.
  SimTime hash_cost = static_cast<SimTime>(shipped.size() / 200);
  destination_->clock()->advance(2 * hash_cost + 2 * kMillisecond);
  std::string vtpm_id = destination_->name() + "/ctr-" + name + "@" + version;
  tpm::VTpm& vtpm = destination_->vtpm_manager().create(vtpm_id);
  if (Status s = destination_->attestation().register_vtpm(vtpm.certificate());
      !s.is_ok() && s.code() != StatusCode::kAlreadyExists) {
    // Re-registration of an existing vTPM id is fine; anything else is not.
    if (!destination_->attestation().knows_tpm(vtpm_id)) return s;
  }

  // Golden value comes from the signed manifest, NOT the shipped bytes —
  // measured launch then independently re-detects any in-flight tamper.
  std::string component_name = "container:" + name + "@" + version;
  destination_->attestation().approve_component(component_name,
                                                manifest->content_digest);
  std::vector<tpm::Component> workload{
      {component_name, shipped, tpm::kWorkloadPcr}};
  tpm::MeasurementLog log = tpm::measured_launch(vtpm, workload);

  Bytes nonce = destination_->attestation().challenge();
  tpm::Quote quote = vtpm.quote({tpm::kWorkloadPcr}, nonce);
  auto verdict = destination_->attestation().verify(quote, log);
  if (!verdict.trusted) {
    return Status(StatusCode::kIntegrityError,
                  "remote attestation failed: " + verdict.reason);
  }
  SimTime attestation_latency = destination_->clock()->now() - attest_start;

  // Register the image at the destination for subsequent local launches.
  Status registered = destination_->images().register_image(*manifest, shipped);
  if (!registered.is_ok() && registered.code() != StatusCode::kAlreadyExists) {
    return registered;
  }

  destination_->log()->audit("intercloud", "workload_attested_and_started",
                             name + "@" + version + " on " + vtpm_id);
  TransferReceipt receipt;
  receipt.image = name + "@" + version;
  receipt.transfer_latency = transfer_latency;
  receipt.attestation_latency = attestation_latency;
  receipt.vtpm_id = vtpm_id;
  if (obs::MetricsPtr metrics = source_->metrics()) {
    metrics->add("hc.intercloud.transfers");
    metrics->add("hc.intercloud.bytes", shipped.size(), "bytes");
    metrics->observe("hc.intercloud.transfer_us",
                     static_cast<double>(transfer_latency));
    metrics->observe("hc.intercloud.attestation_us",
                     static_cast<double>(attestation_latency));
  }
  return receipt;
}

}  // namespace hc::platform
