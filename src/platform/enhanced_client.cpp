#include "platform/enhanced_client.h"

#include "crypto/sha256.h"
#include "tpm/image.h"

namespace hc::platform {

EnhancedClient::EnhancedClient(EnhancedClientConfig config, HealthCloudInstance& cloud,
                               std::string user_id)
    : config_(std::move(config)),
      cloud_(&cloud),
      user_id_(std::move(user_id)),
      rng_(config_.seed),
      local_pseudonymizer_(Rng(config_.seed ^ 0x9e3779b9).bytes(32)) {
  client_key_ = cloud_->issue_client_keypair(user_id_);
  upload_key_ = cloud_->kms().public_key(client_key_).value();
  // Registration pins the platform signing key — the trust anchor used to
  // verify models pushed to this client (Section II.C).
  pinned_platform_key_ = cloud_->platform_signing_keys().pub;
  cache_ = std::make_unique<cache::Cache>(config_.cache_capacity,
                                          cache::EvictionPolicy::kLru, cloud_->clock());
}

Result<ingestion::UploadReceipt> EnhancedClient::upload_bundle(
    const fhir::Bundle& bundle, const std::string& consent_group) {
  // Client-side encryption: the bundle never leaves the device in clear.
  Bytes plaintext = fhir::serialize_bundle(bundle);
  crypto::Envelope envelope = crypto::envelope_seal(upload_key_, plaintext, rng_);

  if (!connected_) {
    offline_queue_.push_back(QueuedUpload{std::move(envelope), consent_group});
    ingestion::UploadReceipt receipt;
    receipt.upload_id = "queued-offline";
    return receipt;
  }

  auto sent = cloud_->network().send_with_retry(
      config_.name, cloud_->name(),
      envelope.body.size() + envelope.wrapped_key.size() + envelope.tag.size());
  if (!sent.is_ok()) return sent.status();
  return cloud_->ingestion().upload(envelope, user_id_, consent_group, client_key_);
}

Result<std::size_t> EnhancedClient::sync() {
  if (!connected_) {
    return Status(StatusCode::kUnavailable, "client is offline");
  }
  std::size_t flushed = 0;
  while (!offline_queue_.empty()) {
    QueuedUpload upload = std::move(offline_queue_.front());
    offline_queue_.pop_front();
    auto sent = cloud_->network().send_with_retry(
        config_.name, cloud_->name(),
        upload.envelope.body.size() + upload.envelope.wrapped_key.size() +
            upload.envelope.tag.size());
    if (!sent.is_ok()) return sent.status();
    auto receipt = cloud_->ingestion().upload(upload.envelope, user_id_,
                                              upload.consent_group, client_key_);
    if (!receipt.is_ok()) return receipt.status();
    ++flushed;
  }
  return flushed;
}

Result<fhir::Bundle> EnhancedClient::anonymize_locally(const fhir::Bundle& bundle) const {
  fhir::Bundle out;
  out.id = bundle.id;
  std::string pseudonym;

  for (const auto& resource : bundle.resources) {
    if (const auto* patient = std::get_if<fhir::Patient>(&resource)) {
      auto deidentified =
          privacy::deidentify(fhir::patient_fields(*patient),
                              privacy::FieldSchema::standard_patient(),
                              local_pseudonymizer_);
      if (!deidentified.is_ok()) return deidentified.status();
      pseudonym = deidentified->pseudonym;
      out.resources.emplace_back(
          fhir::apply_deidentified_fields(deidentified->fields, pseudonym));
    }
  }
  if (pseudonym.empty()) {
    return Status(StatusCode::kInvalidArgument, "bundle carries no Patient resource");
  }
  for (const auto& resource : bundle.resources) {
    if (std::holds_alternative<fhir::Patient>(resource)) continue;
    std::visit(
        [&](const auto& r) {
          auto copy = r;
          if constexpr (!std::is_same_v<std::decay_t<decltype(r)>, fhir::Patient>) {
            copy.patient_id = pseudonym;
            out.resources.emplace_back(std::move(copy));
          }
        },
        resource);
  }
  return out;
}

Result<FetchOutcome> EnhancedClient::fetch_record(const std::string& reference_id) {
  SimTime start = cloud_->clock()->now();
  if (auto cached = cache_->get(reference_id)) {
    cloud_->clock()->advance(10);  // local memory access
    return FetchOutcome{cached->value, true, cloud_->clock()->now() - start};
  }
  if (!connected_) {
    return Status(StatusCode::kUnavailable,
                  "offline and record not cached: " + reference_id);
  }

  auto request = cloud_->network().send_with_retry(config_.name, cloud_->name(), 128);
  if (!request.is_ok()) return request.status();
  auto record = cloud_->lake().get(reference_id);
  if (!record.is_ok()) return record.status();
  auto response =
      cloud_->network().send_with_retry(cloud_->name(), config_.name, record->size());
  if (!response.is_ok()) return response.status();

  cache_->put(reference_id, *record, config_.cache_ttl);
  return FetchOutcome{std::move(*record), false, cloud_->clock()->now() - start};
}

Result<AnalysisOutcome> EnhancedClient::analyze(
    const analytics::Fingerprint& query,
    const std::vector<analytics::Fingerprint>& dataset, bool local) {
  AnalysisOutcome outcome;
  SimTime start = cloud_->clock()->now();

  if (!local) {
    if (!connected_) {
      return Status(StatusCode::kUnavailable, "remote analysis requires connectivity");
    }
    // Ship the dataset + query to the cloud, compute there, return scores.
    std::size_t payload = query.size();
    for (const auto& item : dataset) payload += item.size();
    auto up = cloud_->network().send(config_.name, cloud_->name(), payload);
    if (!up.is_ok()) return up.status();
  }

  // Scoring cost charged wherever the computation runs.
  cloud_->clock()->advance(static_cast<SimTime>(dataset.size()) *
                           config_.per_item_compute_cost);
  outcome.similarities.reserve(dataset.size());
  for (const auto& item : dataset) {
    outcome.similarities.push_back(analytics::tanimoto(query, item));
  }

  if (!local) {
    auto down = cloud_->network().send(cloud_->name(), config_.name,
                                       dataset.size() * sizeof(double));
    if (!down.is_ok()) return down.status();
    outcome.computed_at = cloud_->name();
  } else {
    outcome.computed_at = config_.name;
  }
  outcome.latency = cloud_->clock()->now() - start;
  return outcome;
}

Result<std::uint32_t> EnhancedClient::pull_model(const std::string& name) {
  if (!connected_) {
    return Status(StatusCode::kUnavailable, "model pull requires connectivity");
  }
  // Only lifecycle-approved deployed versions may leave the cloud.
  auto deployed = cloud_->models().deployed(name);
  if (!deployed.is_ok()) {
    return Status(StatusCode::kFailedPrecondition,
                  "no approved deployed version of " + name + ": " +
                      deployed.status().to_string());
  }

  // The cloud packages the model as a signed image for transport.
  std::string version_label = "v" + std::to_string(deployed->version);
  auto manifest = tpm::sign_image("model:" + name, version_label, deployed->artifact,
                                  {}, cloud_->platform_signing_keys());
  Bytes shipped = deployed->artifact;
  if (tamper_next_model_) {
    tamper_next_model_ = false;
    if (!shipped.empty()) shipped[shipped.size() / 2] ^= 0x2;
  }

  auto sent = cloud_->network().send_with_retry(cloud_->name(), config_.name,
                                                shipped.size() + 512);
  if (!sent.is_ok()) return sent.status();

  // Client-side verification against the pinned platform key.
  if (!constant_time_equal(crypto::sha256(shipped), manifest.content_digest) ||
      !crypto::rsa_verify(pinned_platform_key_, manifest.serialize_for_signing(),
                          manifest.signature)) {
    return Status(StatusCode::kIntegrityError,
                  "model package failed client-side verification");
  }

  installed_models_[name] = InstalledModel{deployed->version, std::move(shipped)};
  return deployed->version;
}

Result<std::uint32_t> EnhancedClient::installed_model_version(
    const std::string& name) const {
  auto it = installed_models_.find(name);
  if (it == installed_models_.end()) {
    return Status(StatusCode::kNotFound, "model not installed: " + name);
  }
  return it->second.version;
}

Result<Bytes> EnhancedClient::installed_model_artifact(const std::string& name) const {
  auto it = installed_models_.find(name);
  if (it == installed_models_.end()) {
    return Status(StatusCode::kNotFound, "model not installed: " + name);
  }
  return it->second.artifact;
}

}  // namespace hc::platform
