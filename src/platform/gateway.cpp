#include "platform/gateway.h"

#include "cluster/cluster.h"
#include "obs/trace.h"

namespace hc::platform {

ApiGateway::ApiGateway(HealthCloudInstance& instance) : instance_(&instance) {}

void ApiGateway::route(const std::string& resource_prefix, Handler handler) {
  routes_[resource_prefix] = std::move(handler);
}

Result<std::string> ApiGateway::authenticate(const ApiRequest& request) {
  if (request.token) {
    return instance_->federated_auth().authenticate(*request.token);
  }
  if (request.user_id.empty()) {
    return Status(StatusCode::kUnauthenticated, "no credentials supplied");
  }
  // Direct user ids must at least exist in the RBAC system.
  auto tenant = instance_->rbac().user_tenant(request.user_id);
  if (!tenant.is_ok()) {
    return Status(StatusCode::kUnauthenticated, "unknown user " + request.user_id);
  }
  return request.user_id;
}

Result<ApiResponse> ApiGateway::handle(const ApiRequest& request) {
  ++stats_.requests;
  obs::MetricsPtr metrics = instance_->metrics();
  metrics->add("hc.gateway.requests");
  // Hop latency: whatever sim time the handler chain charges while the
  // request is in flight lands in the hc.gateway.request_us histogram.
  obs::TraceSpan span(metrics.get(), instance_->clock().get(),
                      "hc.gateway.request_us");

  auto user = authenticate(request);
  if (!user.is_ok()) {
    ++stats_.unauthenticated;
    metrics->add("hc.gateway.unauthenticated");
    instance_->log()->warn("gateway", "unauthenticated", request.resource);
    return user.status();
  }

  // Shard-aware routing resolves the owner host *before* admission: a
  // request whose shard is down is refused before it spends QoS budget.
  if (Status routed = route_to_shard(request); !routed.is_ok()) {
    return routed;
  }

  if (qos_) {
    if (Status gate = qos_gate(tenant_of(*user), request); !gate.is_ok()) {
      return gate;
    }
  }

  return dispatch_authorized(*user, request);
}

Status ApiGateway::route_to_shard(const ApiRequest& request) {
  if (cluster_ == nullptr) return Status::ok();
  obs::MetricsPtr metrics = instance_->metrics();
  const std::string* owner = cluster_->owner(request.resource);
  if (owner == nullptr || !cluster_->host_up(*owner)) {
    ++stats_.shard_unavailable;
    metrics->add("hc.gateway.shard_unavailable");
    instance_->log()->warn("gateway", "shard_unavailable", request.resource);
    return Status(StatusCode::kUnavailable,
                  "owner shard-host unavailable for " + request.resource);
  }
  ++stats_.routed;
  metrics->add("hc.gateway.routed");
  cluster_->charge_transfer(cluster_->origin(), *owner,
                            request.resource.size() + request.payload.size());
  return Status::ok();
}

Result<ApiResponse> ApiGateway::dispatch_authorized(const std::string& user_id,
                                                    const ApiRequest& request) {
  obs::MetricsPtr metrics = instance_->metrics();

  // Privacy management: RBAC decides.
  Status access = instance_->rbac().check_access(user_id, request.environment,
                                                 request.scope, request.resource,
                                                 request.permission);
  if (!access.is_ok()) {
    ++stats_.denied;
    metrics->add("hc.gateway.denied");
    instance_->log()->warn("gateway", "denied", user_id + " " + request.resource);
    return access;
  }

  // Metering for billing (registration service, Section II.B).
  auto tenant = instance_->rbac().user_tenant(user_id);
  if (tenant.is_ok()) (void)instance_->rbac().meter_call(*tenant);

  // Longest-prefix route.
  Handler* handler = nullptr;
  const std::string* matched_prefix = nullptr;
  std::size_t best_len = 0;
  for (auto& [prefix, candidate] : routes_) {
    if (request.resource.starts_with(prefix) && prefix.size() >= best_len) {
      handler = &candidate;
      matched_prefix = &prefix;
      best_len = prefix.size();
    }
  }
  if (!handler) {
    return Status(StatusCode::kNotFound, "no API route for " + request.resource);
  }

  fault::CircuitBreaker& breaker = breaker_for(*matched_prefix);
  if (Status gate = breaker.allow(); !gate.is_ok()) {
    ++stats_.breaker_rejected;
    metrics->add("hc.gateway.breaker_rejected");
    instance_->log()->warn("gateway", "breaker_open", request.resource);
    return gate;
  }

  auto response = (*handler)(user_id, request);
  if (response.is_ok()) {
    breaker.record_success();
    ++stats_.served;
    metrics->add("hc.gateway.served");
    instance_->log()->info("gateway", "served", user_id + " " + request.resource);
  } else if (response.status().code() == StatusCode::kUnavailable ||
             response.status().code() == StatusCode::kInternal) {
    // Operational backend failures feed the breaker; business rejections
    // (validation, not-found, permission) do not.
    breaker.record_failure();
    metrics->add("hc.gateway.handler_failures");
  }
  return response;
}

fault::CircuitBreaker& ApiGateway::breaker_for(const std::string& prefix) {
  auto it = breakers_.find(prefix);
  if (it == breakers_.end()) {
    fault::CircuitBreakerConfig config = breaker_template_;
    config.name = "gateway." + (prefix.empty() ? std::string("root") : prefix);
    it = breakers_
             .emplace(prefix, std::make_unique<fault::CircuitBreaker>(
                                  std::move(config), instance_->clock(),
                                  instance_->metrics()))
             .first;
  }
  return *it->second;
}

fault::BreakerState ApiGateway::route_breaker_state(
    const std::string& resource_prefix) const {
  auto it = breakers_.find(resource_prefix);
  return it == breakers_.end() ? fault::BreakerState::kClosed
                               : it->second->state();
}

// --- QoS & scheduled dispatch (hc::sched) ----------------------------------

void ApiGateway::enable_qos(GatewayQosConfig config) {
  qos_ = config;
  burst_ = std::make_unique<sched::BurstPool>(config.burst_pool,
                                              instance_->clock());
  admission_ = std::make_unique<sched::AdmissionController>(
      config.admission, instance_->clock(), instance_->metrics());
  scheduled_ = std::make_unique<sched::WeightedFairQueue<Scheduled>>(
      config.wfq_quantum);
  buckets_.clear();
}

std::string ApiGateway::tenant_of(const std::string& user) const {
  auto tenant = instance_->rbac().user_tenant(user);
  return tenant.is_ok() ? *tenant : std::string("unknown");
}

sched::TokenBucket& ApiGateway::bucket_for(const std::string& tenant) {
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    sched::TokenBucketConfig quota = qos_->default_quota;
    auto info = instance_->rbac().tenant(tenant);
    if (info.is_ok()) {
      if (info->qos_rate > 0) quota.rate_per_sec = info->qos_rate;
      if (info->qos_burst > 0) quota.capacity = info->qos_burst;
    }
    it = buckets_
             .emplace(tenant, std::make_unique<sched::TokenBucket>(
                                  quota, instance_->clock(), burst_.get()))
             .first;
  }
  return *it->second;
}

Status ApiGateway::qos_gate(const std::string& tenant, const ApiRequest& request) {
  obs::MetricsPtr metrics = instance_->metrics();
  sched::Grant grant =
      bucket_for(tenant).acquire(static_cast<double>(request.cost));
  if (grant == sched::Grant::kDenied) {
    ++stats_.rate_limited;
    metrics->add("hc.sched.shed");
    metrics->add("hc.sched.shed.rate");
    instance_->log()->warn("gateway", "rate_limited",
                           tenant + " " + request.resource);
    return Status(StatusCode::kUnavailable,
                  "tenant " + tenant +
                      " over rate quota — retry with backoff");
  }
  if (grant == sched::Grant::kGrantedFromBurst) {
    metrics->add("hc.sched.deferred");
  }
  Status admitted = admission_->admit(
      tenant, static_cast<double>(request.cost), request.deadline,
      static_cast<double>(scheduled_ ? scheduled_->backlog_cost() : 0));
  if (!admitted.is_ok()) {
    ++stats_.shed;
    instance_->log()->warn("gateway", "shed", tenant + " " + request.resource);
  }
  return admitted;
}

void ApiGateway::record_lane_depth(const std::string& tenant) {
  instance_->metrics()->set_gauge(
      "hc.sched.queue_depth.gateway." + tenant,
      static_cast<double>(scheduled_->tenant_depth(tenant)));
}

Status ApiGateway::submit(ApiRequest request) {
  if (!qos_) {
    return Status(StatusCode::kFailedPrecondition,
                  "gateway QoS is not enabled — call enable_qos first");
  }
  ++stats_.requests;
  obs::MetricsPtr metrics = instance_->metrics();
  metrics->add("hc.gateway.requests");

  auto user = authenticate(request);
  if (!user.is_ok()) {
    ++stats_.unauthenticated;
    metrics->add("hc.gateway.unauthenticated");
    instance_->log()->warn("gateway", "unauthenticated", request.resource);
    return user.status();
  }

  if (Status routed = route_to_shard(request); !routed.is_ok()) {
    return routed;
  }

  std::string tenant = tenant_of(*user);
  if (Status gate = qos_gate(tenant, request); !gate.is_ok()) return gate;

  if (scheduled_->depth() >= qos_->queue_capacity) {
    ++stats_.shed;
    metrics->add("hc.sched.shed");
    metrics->add("hc.sched.shed.capacity");
    instance_->log()->warn("gateway", "queue_full",
                           tenant + " " + request.resource);
    return Status(StatusCode::kUnavailable,
                  "gateway scheduled queue at capacity (" +
                      std::to_string(qos_->queue_capacity) +
                      ") — retry with backoff");
  }

  auto info = instance_->rbac().tenant(tenant);
  if (info.is_ok()) scheduled_->set_weight(tenant, info->qos_weight);

  std::uint64_t cost = request.cost == 0 ? 1 : request.cost;
  SimTime now = instance_->clock()->now();
  Scheduled entry{std::move(request), *user, tenant, now};
  scheduled_->push(tenant, std::move(entry), cost);
  ++stats_.queued;
  record_lane_depth(tenant);
  return Status::ok();
}

std::vector<ApiGateway::ScheduledOutcome> ApiGateway::pump(
    std::size_t max_requests) {
  std::vector<ScheduledOutcome> outcomes;
  if (!qos_ || !scheduled_) return outcomes;
  obs::MetricsPtr metrics = instance_->metrics();

  while (outcomes.size() < max_requests) {
    auto entry = scheduled_->pop();
    if (!entry) break;
    record_lane_depth(entry->tenant);

    SimTime started = instance_->clock()->now();
    metrics->observe("hc.sched.wait_us",
                     static_cast<double>(started - entry->enqueued_at));

    Result<ApiResponse> response = [&]() -> Result<ApiResponse> {
      if (entry->request.deadline > 0 && started > entry->request.deadline) {
        ++stats_.shed;
        metrics->add("hc.sched.shed");
        metrics->add("hc.sched.shed.deadline");
        instance_->log()->warn("gateway", "deadline_expired",
                               entry->tenant + " " + entry->request.resource);
        return Status(StatusCode::kUnavailable,
                      "deadline expired while queued — retry with backoff");
      }
      // Queue wait is accounted in hc.sched.wait_us above; the dispatch
      // span below keeps hc.gateway.request_us measuring handler latency
      // the same way the inline handle() path does.
      obs::TraceSpan span(metrics.get(), instance_->clock().get(),
                          "hc.gateway.request_us");
      return dispatch_authorized(entry->user, entry->request);
    }();

    outcomes.push_back(ScheduledOutcome{entry->tenant, entry->request.resource,
                                        std::move(response), entry->enqueued_at,
                                        instance_->clock()->now()});
  }

  // One AIMD step per pump keeps the shedding threshold tracking the
  // latency the drain actually produced.
  if (admission_) admission_->adapt();
  return outcomes;
}

std::size_t ApiGateway::scheduled_depth() const {
  return scheduled_ ? scheduled_->depth() : 0;
}

}  // namespace hc::platform
