#include "platform/gateway.h"

#include "obs/trace.h"

namespace hc::platform {

ApiGateway::ApiGateway(HealthCloudInstance& instance) : instance_(&instance) {}

void ApiGateway::route(const std::string& resource_prefix, Handler handler) {
  routes_[resource_prefix] = std::move(handler);
}

Result<std::string> ApiGateway::authenticate(const ApiRequest& request) {
  if (request.token) {
    return instance_->federated_auth().authenticate(*request.token);
  }
  if (request.user_id.empty()) {
    return Status(StatusCode::kUnauthenticated, "no credentials supplied");
  }
  // Direct user ids must at least exist in the RBAC system.
  auto tenant = instance_->rbac().user_tenant(request.user_id);
  if (!tenant.is_ok()) {
    return Status(StatusCode::kUnauthenticated, "unknown user " + request.user_id);
  }
  return request.user_id;
}

Result<ApiResponse> ApiGateway::handle(const ApiRequest& request) {
  ++stats_.requests;
  obs::MetricsPtr metrics = instance_->metrics();
  metrics->add("hc.gateway.requests");
  // Hop latency: whatever sim time the handler chain charges while the
  // request is in flight lands in the hc.gateway.request_us histogram.
  obs::TraceSpan span(metrics.get(), instance_->clock().get(),
                      "hc.gateway.request_us");

  auto user = authenticate(request);
  if (!user.is_ok()) {
    ++stats_.unauthenticated;
    metrics->add("hc.gateway.unauthenticated");
    instance_->log()->warn("gateway", "unauthenticated", request.resource);
    return user.status();
  }

  // Privacy management: RBAC decides.
  Status access = instance_->rbac().check_access(*user, request.environment,
                                                 request.scope, request.resource,
                                                 request.permission);
  if (!access.is_ok()) {
    ++stats_.denied;
    metrics->add("hc.gateway.denied");
    instance_->log()->warn("gateway", "denied", *user + " " + request.resource);
    return access;
  }

  // Metering for billing (registration service, Section II.B).
  auto tenant = instance_->rbac().user_tenant(*user);
  if (tenant.is_ok()) (void)instance_->rbac().meter_call(*tenant);

  // Longest-prefix route.
  Handler* handler = nullptr;
  const std::string* matched_prefix = nullptr;
  std::size_t best_len = 0;
  for (auto& [prefix, candidate] : routes_) {
    if (request.resource.starts_with(prefix) && prefix.size() >= best_len) {
      handler = &candidate;
      matched_prefix = &prefix;
      best_len = prefix.size();
    }
  }
  if (!handler) {
    return Status(StatusCode::kNotFound, "no API route for " + request.resource);
  }

  fault::CircuitBreaker& breaker = breaker_for(*matched_prefix);
  if (Status gate = breaker.allow(); !gate.is_ok()) {
    ++stats_.breaker_rejected;
    metrics->add("hc.gateway.breaker_rejected");
    instance_->log()->warn("gateway", "breaker_open", request.resource);
    return gate;
  }

  auto response = (*handler)(*user, request);
  if (response.is_ok()) {
    breaker.record_success();
    ++stats_.served;
    metrics->add("hc.gateway.served");
    instance_->log()->info("gateway", "served", *user + " " + request.resource);
  } else if (response.status().code() == StatusCode::kUnavailable ||
             response.status().code() == StatusCode::kInternal) {
    // Operational backend failures feed the breaker; business rejections
    // (validation, not-found, permission) do not.
    breaker.record_failure();
    metrics->add("hc.gateway.handler_failures");
  }
  return response;
}

fault::CircuitBreaker& ApiGateway::breaker_for(const std::string& prefix) {
  auto it = breakers_.find(prefix);
  if (it == breakers_.end()) {
    fault::CircuitBreakerConfig config = breaker_template_;
    config.name = "gateway." + (prefix.empty() ? std::string("root") : prefix);
    it = breakers_
             .emplace(prefix, std::make_unique<fault::CircuitBreaker>(
                                  std::move(config), instance_->clock(),
                                  instance_->metrics()))
             .first;
  }
  return *it->second;
}

fault::BreakerState ApiGateway::route_breaker_state(
    const std::string& resource_prefix) const {
  auto it = breakers_.find(resource_prefix);
  return it == breakers_.end() ? fault::BreakerState::kClosed
                               : it->second->state();
}

}  // namespace hc::platform
