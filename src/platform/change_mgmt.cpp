#include "platform/change_mgmt.h"

#include "crypto/sha256.h"

namespace hc::platform {

std::string_view change_state_name(ChangeState state) {
  switch (state) {
    case ChangeState::kProposed: return "proposed";
    case ChangeState::kEvaluated: return "evaluated";
    case ChangeState::kApproved: return "approved";
    case ChangeState::kApplied: return "applied";
    case ChangeState::kRejected: return "rejected";
  }
  return "unknown";
}

ChangeManagementService::ChangeManagementService(tpm::AttestationService& attestation,
                                                 LogPtr log)
    : attestation_(&attestation), log_(std::move(log)) {}

std::uint64_t ChangeManagementService::propose(const std::string& component,
                                               Bytes new_content,
                                               const std::string& description,
                                               bool replace_existing) {
  ChangeRequest request;
  request.id = next_id_++;
  request.component = component;
  request.new_content = std::move(new_content);
  request.description = description;
  request.replace_existing = replace_existing;
  std::uint64_t id = request.id;
  changes_.emplace(id, std::move(request));
  if (log_) {
    log_->audit("change-mgmt", "change_proposed",
                "#" + std::to_string(id) + " " + component + ": " + description);
  }
  return id;
}

ChangeRequest* ChangeManagementService::find(std::uint64_t id) {
  auto it = changes_.find(id);
  return it == changes_.end() ? nullptr : &it->second;
}

Status ChangeManagementService::evaluate(std::uint64_t id, const std::string& evaluator) {
  ChangeRequest* change = find(id);
  if (!change) return Status(StatusCode::kNotFound, "no change request " + std::to_string(id));
  if (change->state != ChangeState::kProposed) {
    return Status(StatusCode::kFailedPrecondition,
                  "change is not in proposed state");
  }
  change->evaluator = evaluator;
  change->state = ChangeState::kEvaluated;
  if (log_) {
    log_->audit("change-mgmt", "change_evaluated",
                "#" + std::to_string(id) + " by " + evaluator);
  }
  return Status::ok();
}

Status ChangeManagementService::approve(std::uint64_t id, const std::string& approver) {
  ChangeRequest* change = find(id);
  if (!change) return Status(StatusCode::kNotFound, "no change request " + std::to_string(id));
  if (change->state != ChangeState::kEvaluated) {
    return Status(StatusCode::kFailedPrecondition, "change has not been evaluated");
  }
  if (approver == change->evaluator) {
    return Status(StatusCode::kPermissionDenied,
                  "approver must differ from evaluator (two-person rule)");
  }
  change->approver = approver;
  change->state = ChangeState::kApproved;
  if (log_) {
    log_->audit("change-mgmt", "change_approved",
                "#" + std::to_string(id) + " by " + approver);
  }
  return Status::ok();
}

Status ChangeManagementService::reject(std::uint64_t id, const std::string& reason) {
  ChangeRequest* change = find(id);
  if (!change) return Status(StatusCode::kNotFound, "no change request " + std::to_string(id));
  if (change->state == ChangeState::kApplied) {
    return Status(StatusCode::kFailedPrecondition, "applied changes cannot be rejected");
  }
  change->state = ChangeState::kRejected;
  if (log_) {
    log_->audit("change-mgmt", "change_rejected",
                "#" + std::to_string(id) + ": " + reason);
  }
  return Status::ok();
}

Status ChangeManagementService::apply(std::uint64_t id) {
  ChangeRequest* change = find(id);
  if (!change) return Status(StatusCode::kNotFound, "no change request " + std::to_string(id));
  if (change->state != ChangeState::kApproved) {
    return Status(StatusCode::kFailedPrecondition, "change has not been approved");
  }
  if (change->replace_existing) {
    attestation_->revoke_component(change->component);
  }
  attestation_->approve_component(change->component,
                                  crypto::sha256(change->new_content));
  change->state = ChangeState::kApplied;
  if (log_) {
    log_->audit("change-mgmt", "change_applied",
                "#" + std::to_string(id) + " " + change->component);
  }
  return Status::ok();
}

Result<ChangeRequest> ChangeManagementService::get(std::uint64_t id) const {
  auto it = changes_.find(id);
  if (it == changes_.end()) {
    return Status(StatusCode::kNotFound, "no change request " + std::to_string(id));
  }
  return it->second;
}

std::size_t ChangeManagementService::open_count() const {
  std::size_t n = 0;
  for (const auto& [id, change] : changes_) {
    if (change.state != ChangeState::kApplied && change.state != ChangeState::kRejected) {
      ++n;
    }
  }
  return n;
}

}  // namespace hc::platform
