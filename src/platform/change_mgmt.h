// Change Management service (Section II.B).
//
// "All authorized changes are first described, evaluated and finally
// approved in the change management system; thereafter the CM service
// accordingly updates the Attestation Service regarding the approved
// changes and their new signatures."
//
// A change request names a component and its new content. It moves through
// Proposed -> Evaluated -> Approved -> Applied; only Apply touches the
// attestation golden set (and optionally revokes the prior measurement).
// Compliance posture: nothing reaches the trusted base without the full
// paper trail, and every step is an audit-log event.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.h"
#include "common/log.h"
#include "common/status.h"
#include "tpm/attestation.h"

namespace hc::platform {

enum class ChangeState { kProposed, kEvaluated, kApproved, kApplied, kRejected };

std::string_view change_state_name(ChangeState state);

struct ChangeRequest {
  std::uint64_t id = 0;
  std::string component;    // e.g. "kernel", "model-container:v3"
  Bytes new_content;        // what will be measured
  std::string description;
  std::string evaluator;    // filled at evaluation
  std::string approver;     // filled at approval
  ChangeState state = ChangeState::kProposed;
  bool replace_existing = false;  // revoke the old golden value on apply
};

class ChangeManagementService {
 public:
  ChangeManagementService(tpm::AttestationService& attestation, LogPtr log = nullptr);

  /// Describe: opens a change request, returns its id.
  std::uint64_t propose(const std::string& component, Bytes new_content,
                        const std::string& description, bool replace_existing = false);

  /// Evaluate: records the reviewer. Only Proposed changes can be evaluated.
  Status evaluate(std::uint64_t id, const std::string& evaluator);

  /// Approve: requires prior evaluation and a different approver
  /// (two-person rule).
  Status approve(std::uint64_t id, const std::string& approver);

  /// Reject at any pre-Applied stage.
  Status reject(std::uint64_t id, const std::string& reason);

  /// Apply: pushes the new measurement to the attestation service
  /// (revoking the old one when replace_existing). Only Approved changes.
  Status apply(std::uint64_t id);

  Result<ChangeRequest> get(std::uint64_t id) const;
  std::size_t open_count() const;

 private:
  ChangeRequest* find(std::uint64_t id);

  tpm::AttestationService* attestation_;
  LogPtr log_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, ChangeRequest> changes_;
};

}  // namespace hc::platform
