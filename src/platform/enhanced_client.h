// Enhanced client (Sections I, III.A, Fig 4).
//
// "enhanced clients which offer additional functionality for client
// machines ... features such as caching, data analytics, and encryption
// ... Highly confidential data can be analyzed and encrypted or anonymized
// at clients before being sent to servers. Clients can also perform
// processing and analysis while disconnected from servers."
//
// The client is an SDK instance living at a network endpoint:
//   - client-side cache in front of cloud record fetches,
//   - client-side envelope encryption to the platform-issued keypair,
//   - client-side anonymization (de-identification before upload),
//   - local analytics (similarity scoring) that also works offline,
//   - an offline upload queue flushed by sync() when connectivity returns.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "analytics/similarity.h"
#include "cache/cache.h"
#include "platform/instance.h"

namespace hc::platform {

struct EnhancedClientConfig {
  std::string name = "client-1";          // network endpoint
  std::uint64_t seed = 0xc11e;
  std::size_t cache_capacity = 256;
  SimTime cache_ttl = 0;
  SimTime per_item_compute_cost = 2;      // us per dataset item scored
};

struct FetchOutcome {
  Bytes data;
  bool from_cache = false;
  SimTime latency = 0;
};

struct AnalysisOutcome {
  std::vector<double> similarities;  // query vs each dataset item
  SimTime latency = 0;
  std::string computed_at;  // client name or cloud name
};

class EnhancedClient {
 public:
  /// Registers the client with the cloud: a platform-issued keypair is
  /// created in the cloud KMS (Section II.B registration).
  EnhancedClient(EnhancedClientConfig config, HealthCloudInstance& cloud,
                 std::string user_id);

  const std::string& name() const { return config_.name; }
  const crypto::KeyId& client_key() const { return client_key_; }

  // --- connectivity -------------------------------------------------------
  void set_connected(bool connected) { connected_ = connected; }
  bool connected() const { return connected_; }

  // --- upload path ----------------------------------------------------------
  /// Encrypts the bundle client-side and uploads through the ingestion
  /// service. Offline, the sealed upload is queued locally instead and the
  /// returned status URL is empty.
  Result<ingestion::UploadReceipt> upload_bundle(const fhir::Bundle& bundle,
                                                 const std::string& consent_group);

  /// Flushes queued offline uploads; returns how many were sent.
  /// kUnavailable when still offline.
  Result<std::size_t> sync();

  std::size_t pending_uploads() const { return offline_queue_.size(); }

  /// Client-side anonymization: de-identifies the bundle's Patient before
  /// anything leaves the device (Section IV.C "The enhanced client can
  /// anonymize the data it is sending to the system").
  Result<fhir::Bundle> anonymize_locally(const fhir::Bundle& bundle) const;

  // --- cached reads -----------------------------------------------------------
  /// Fetches a de-identified record by reference id, through the local
  /// cache. Cache hits work offline; misses need connectivity.
  Result<FetchOutcome> fetch_record(const std::string& reference_id);

  // --- local/remote analytics ---------------------------------------------
  /// Scores `query` against `dataset`. Local execution charges per-item
  /// compute on the client and works offline. Remote execution ships the
  /// data to the cloud, computes there, and returns — requiring
  /// connectivity and paying network costs (the Fig 4 trade-off).
  Result<AnalysisOutcome> analyze(const analytics::Fingerprint& query,
                                  const std::vector<analytics::Fingerprint>& dataset,
                                  bool local);

  // --- model push (Section II.C) -----------------------------------------
  /// Pulls the currently *deployed* (lifecycle-approved) version of a model
  /// from the cloud registry as a platform-signed package, verifies the
  /// signature against the platform key pinned at registration, and
  /// installs it for offline use. "Customized client services could also
  /// take approved and compliant models and push them to enhanced clients."
  /// kFailedPrecondition if no approved deployment exists; kIntegrityError
  /// if the package fails verification; kUnavailable offline.
  Result<std::uint32_t> pull_model(const std::string& name);

  /// Installed version of a model (kNotFound if never pulled).
  Result<std::uint32_t> installed_model_version(const std::string& name) const;

  /// The installed artifact bytes (for local inference by app code).
  Result<Bytes> installed_model_artifact(const std::string& name) const;

  /// Testing hook: corrupt the next model package in flight.
  void tamper_next_model_pull() { tamper_next_model_ = true; }

  const cache::CacheStats& cache_stats() const { return cache_->stats(); }

 private:
  struct QueuedUpload {
    crypto::Envelope envelope;
    std::string consent_group;
  };

  struct InstalledModel {
    std::uint32_t version = 0;
    Bytes artifact;
  };

  EnhancedClientConfig config_;
  HealthCloudInstance* cloud_;
  std::string user_id_;
  mutable Rng rng_;
  crypto::KeyId client_key_;
  crypto::PublicKey upload_key_;
  std::unique_ptr<cache::Cache> cache_;
  privacy::Pseudonymizer local_pseudonymizer_;
  bool connected_ = true;
  std::deque<QueuedUpload> offline_queue_;
  crypto::PublicKey pinned_platform_key_;  // trust anchor for model pulls
  std::map<std::string, InstalledModel> installed_models_;
  bool tamper_next_model_ = false;
};

}  // namespace hc::platform
