// Tamper-evident audit logs (Section IV.E).
//
// "Log analytics systems are used for audit and forensic purposes. Use of
// blockchain networks ... helps in audit management." Audit logs are only
// forensically useful if they cannot be silently rewritten; the
// LogAnchorService periodically seals the log by committing the Merkle
// root of each new span of records to the provenance ledger. verify()
// recomputes every span's root from the live log and compares against the
// anchored values — any retroactive edit to an anchored record surfaces as
// an integrity error, and the anchors themselves are protected by the
// ledger's consensus + hash chain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blockchain/ledger.h"
#include "common/log.h"

namespace hc::platform {

struct LogCheckpoint {
  std::size_t begin = 0;  // first record index covered (inclusive)
  std::size_t end = 0;    // one past the last record covered
  Bytes root;             // merkle root over the span
  std::string ledger_ref; // provenance record_ref carrying the root
};

class LogAnchorService {
 public:
  /// `instance_name` namespaces the ledger refs so several instances can
  /// share one ledger.
  LogAnchorService(LogService& log, blockchain::PermissionedLedger& ledger,
                   std::string instance_name);

  /// Seals all not-yet-anchored records into a new checkpoint committed to
  /// the ledger. kFailedPrecondition when there is nothing new to anchor.
  Result<LogCheckpoint> checkpoint();

  /// Recomputes every anchored span from the live log and compares against
  /// both the local checkpoint list and the on-ledger roots.
  Status verify() const;

  const std::vector<LogCheckpoint>& checkpoints() const { return checkpoints_; }
  std::size_t anchored_records() const { return anchored_; }

 private:
  Bytes span_root(std::size_t begin, std::size_t end) const;

  LogService* log_;
  blockchain::PermissionedLedger* ledger_;
  std::string instance_name_;
  std::vector<LogCheckpoint> checkpoints_;
  std::size_t anchored_ = 0;
};

}  // namespace hc::platform
