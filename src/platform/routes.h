// Standard API surface (Section II.B: "The platform exposes secure APIs
// for all its capabilities").
//
// Binds the canonical resource tree to the instance's services:
//
//   ingestion/status/<upload-id>     GET   ingestion status URL lookup
//   datalake/records/<reference-id>  GET   de-identified record fetch
//   export/anonymized/<group>?k=<k>  GET   k-anonymous export rows (count)
//   kb/<base>/<key>                  GET   knowledge-base lookup (cached)
//   audit/lifecycle/<reference-id>   GET   provenance event list
//
// All routes ride the gateway pipeline, so they inherit authentication,
// RBAC (privacy management) and tenant metering. Responses are compact
// text payloads — the transport encoding is not what the paper evaluates.
#pragma once

#include "platform/gateway.h"

namespace hc::platform {

/// Installs the standard routes on a gateway bound to `instance`.
void install_standard_routes(ApiGateway& gateway, HealthCloudInstance& instance);

}  // namespace hc::platform
