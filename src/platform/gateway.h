// API and API Management (Section II.B).
//
// "The platform exposes secure APIs for all its capabilities. The API
// management system first authenticates the user requesting the APIs, and
// once successfully authenticated, it consults the Privacy Management
// system and allows API access accordingly."
//
// Requests carry either a platform user id (already-authenticated internal
// callers) or a federated identity token. The gateway authenticates,
// consults RBAC (privacy management), meters the tenant (billing), and
// dispatches to a registered handler. Handlers are the instance's actual
// service entry points, bound at wiring time.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/resilience.h"
#include "platform/instance.h"
#include "sched/sched.h"

namespace hc::cluster {
class Cluster;
}  // namespace hc::cluster

namespace hc::platform {

struct ApiRequest {
  std::string user_id;                         // empty when token is used
  std::optional<rbac::IdentityToken> token;    // federated path
  std::string environment;                     // env the caller acts in
  std::string scope;                           // tenant / org / group id
  std::string resource;                        // e.g. "datalake/records/ref-1"
  rbac::Permission permission = rbac::Permission::kRead;
  Bytes payload;
  // --- QoS hints (ignored until enable_qos) ------------------------------
  SimTime deadline = 0;    // absolute sim-time deadline; 0 = none
  std::uint64_t cost = 1;  // scheduler cost units (≈ µs of handler work)
};

struct ApiResponse {
  Bytes body;
};

struct GatewayStats {
  std::uint64_t requests = 0;
  std::uint64_t unauthenticated = 0;
  std::uint64_t denied = 0;
  std::uint64_t served = 0;
  std::uint64_t breaker_rejected = 0;  // fast-failed while a route was open
  std::uint64_t rate_limited = 0;      // shed by the tenant's token bucket
  std::uint64_t shed = 0;              // shed by deadline/overload admission
  std::uint64_t queued = 0;            // accepted onto the scheduled queue
  std::uint64_t routed = 0;            // resolved to an owner shard-host
  std::uint64_t shard_unavailable = 0; // owner shard-host crashed / ring empty
};

/// QoS policy for the gateway (see enable_qos). Per-tenant token-bucket
/// quotas come from RBAC tenant config (TenantInfo::qos_*); tenants
/// without explicit config use `default_quota`. Requests over quota draw
/// from the shared `burst_pool` before being shed.
struct GatewayQosConfig {
  sched::AdmissionConfig admission;                 // deadline shedding + AIMD
  sched::TokenBucketConfig default_quota{100.0, 25.0};
  sched::TokenBucketConfig burst_pool{50.0, 50.0};
  std::uint64_t wfq_quantum = 16;    // DRR quantum for the scheduled queue
  std::size_t queue_capacity = 1024; // scheduled-queue bound (backpressure)
};

class ApiGateway {
 public:
  explicit ApiGateway(HealthCloudInstance& instance);

  using Handler = std::function<Result<ApiResponse>(const std::string& user_id,
                                                    const ApiRequest& request)>;

  /// Binds a handler to a resource prefix; the longest matching prefix
  /// wins at dispatch time.
  void route(const std::string& resource_prefix, Handler handler);

  /// Full pipeline: authenticate -> [QoS gate] -> RBAC -> meter -> breaker
  /// -> dispatch. Each route prefix is guarded by its own circuit breaker:
  /// handler failures that look operational (kUnavailable / kInternal)
  /// trip it, and while it is open the gateway fast-fails with
  /// kUnavailable instead of burning latency on a dead backend. Auth and
  /// RBAC rejections never count against the breaker.
  ///
  /// With QoS enabled the gate runs right after authentication: the
  /// tenant's token bucket (falling back to the shared burst pool) and the
  /// deadline-aware admission controller both must pass; a shed request
  /// returns a retryable kUnavailable before any downstream work.
  Result<ApiResponse> handle(const ApiRequest& request);

  // --- QoS & scheduled dispatch (hc::sched) ------------------------------

  /// Turns on the QoS layer: per-tenant rate limiting, deadline-aware
  /// admission, and the weighted-fair scheduled queue. Call before
  /// traffic; idempotent reconfiguration resets buckets and the queue.
  void enable_qos(GatewayQosConfig config);
  bool qos_enabled() const { return qos_.has_value(); }

  /// Scheduled path: authenticates and admission-checks the request, then
  /// parks it on its tenant's fair-queue lane (weight from RBAC tenant
  /// config) instead of dispatching inline. kUnavailable (retryable) when
  /// rate-limited, shed, or the scheduled queue is at capacity. Requires
  /// enable_qos.
  Status submit(ApiRequest request);

  /// One drained request from the scheduled queue.
  struct ScheduledOutcome {
    std::string tenant;
    std::string resource;
    Result<ApiResponse> response;
    SimTime enqueued_at = 0;
    SimTime completed_at = 0;
  };

  /// Drains up to `max_requests` from the scheduled queue in deficit
  /// round-robin order, dispatching each through the post-auth pipeline.
  /// Queue wait lands in hc.sched.wait_us; a request whose deadline
  /// expired while queued is shed (counted, never dispatched). Finishes
  /// with one AIMD adapt() step so shedding tracks observed p95 latency.
  std::vector<ScheduledOutcome> pump(
      std::size_t max_requests = std::numeric_limits<std::size_t>::max());

  std::size_t scheduled_depth() const;

  /// Breaker template applied to routes on their first dispatch (the
  /// per-route name is filled in from the prefix). Takes effect for routes
  /// not yet dispatched; call before traffic for deterministic tests.
  void set_breaker_config(fault::CircuitBreakerConfig config) {
    breaker_template_ = std::move(config);
  }

  /// Breaker state for a route prefix, or kClosed if never dispatched.
  fault::BreakerState route_breaker_state(const std::string& resource_prefix) const;

  /// Binds the shard cluster (nullptr detaches). With a cluster bound the
  /// gateway becomes shard-aware: right after authentication — before the
  /// QoS gate spends any budget — it resolves the request's owner
  /// shard-host on the consistent-hash ring (keyed by the resource path),
  /// fast-fails kUnavailable when that host is crashed, and charges the
  /// routing hop on the deterministic cluster link.
  void set_cluster(cluster::Cluster* cluster) { cluster_ = cluster; }
  cluster::Cluster* cluster() const { return cluster_; }

  const GatewayStats& stats() const { return stats_; }

 private:
  struct Scheduled {
    ApiRequest request;
    std::string user;
    std::string tenant;
    SimTime enqueued_at = 0;
  };

  Result<std::string> authenticate(const ApiRequest& request);
  fault::CircuitBreaker& breaker_for(const std::string& prefix);
  /// RBAC -> meter -> route -> breaker -> dispatch (everything after
  /// authentication) — shared by handle() and pump().
  Result<ApiResponse> dispatch_authorized(const std::string& user,
                                          const ApiRequest& request);
  std::string tenant_of(const std::string& user) const;
  /// Token bucket + admission. `backlog` is the scheduled queue's cost.
  Status qos_gate(const std::string& tenant, const ApiRequest& request);
  sched::TokenBucket& bucket_for(const std::string& tenant);
  void record_lane_depth(const std::string& tenant);

  /// Shard routing (see set_cluster). Returns the denial when the owner
  /// host is unreachable; charges the routing hop otherwise.
  Status route_to_shard(const ApiRequest& request);

  HealthCloudInstance* instance_;
  cluster::Cluster* cluster_ = nullptr;  // may be null (single-node mode)
  std::map<std::string, Handler> routes_;  // prefix -> handler
  fault::CircuitBreakerConfig breaker_template_;
  std::map<std::string, std::unique_ptr<fault::CircuitBreaker>> breakers_;
  GatewayStats stats_;

  std::optional<GatewayQosConfig> qos_;
  std::unique_ptr<sched::BurstPool> burst_;
  std::map<std::string, std::unique_ptr<sched::TokenBucket>> buckets_;
  std::unique_ptr<sched::AdmissionController> admission_;
  std::unique_ptr<sched::WeightedFairQueue<Scheduled>> scheduled_;
};

}  // namespace hc::platform
