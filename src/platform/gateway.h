// API and API Management (Section II.B).
//
// "The platform exposes secure APIs for all its capabilities. The API
// management system first authenticates the user requesting the APIs, and
// once successfully authenticated, it consults the Privacy Management
// system and allows API access accordingly."
//
// Requests carry either a platform user id (already-authenticated internal
// callers) or a federated identity token. The gateway authenticates,
// consults RBAC (privacy management), meters the tenant (billing), and
// dispatches to a registered handler. Handlers are the instance's actual
// service entry points, bound at wiring time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "fault/resilience.h"
#include "platform/instance.h"

namespace hc::platform {

struct ApiRequest {
  std::string user_id;                         // empty when token is used
  std::optional<rbac::IdentityToken> token;    // federated path
  std::string environment;                     // env the caller acts in
  std::string scope;                           // tenant / org / group id
  std::string resource;                        // e.g. "datalake/records/ref-1"
  rbac::Permission permission = rbac::Permission::kRead;
  Bytes payload;
};

struct ApiResponse {
  Bytes body;
};

struct GatewayStats {
  std::uint64_t requests = 0;
  std::uint64_t unauthenticated = 0;
  std::uint64_t denied = 0;
  std::uint64_t served = 0;
  std::uint64_t breaker_rejected = 0;  // fast-failed while a route was open
};

class ApiGateway {
 public:
  explicit ApiGateway(HealthCloudInstance& instance);

  using Handler = std::function<Result<ApiResponse>(const std::string& user_id,
                                                    const ApiRequest& request)>;

  /// Binds a handler to a resource prefix; the longest matching prefix
  /// wins at dispatch time.
  void route(const std::string& resource_prefix, Handler handler);

  /// Full pipeline: authenticate -> RBAC -> meter -> breaker -> dispatch.
  /// Each route prefix is guarded by its own circuit breaker: handler
  /// failures that look operational (kUnavailable / kInternal) trip it,
  /// and while it is open the gateway fast-fails with kUnavailable instead
  /// of burning latency on a dead backend. Auth and RBAC rejections never
  /// count against the breaker.
  Result<ApiResponse> handle(const ApiRequest& request);

  /// Breaker template applied to routes on their first dispatch (the
  /// per-route name is filled in from the prefix). Takes effect for routes
  /// not yet dispatched; call before traffic for deterministic tests.
  void set_breaker_config(fault::CircuitBreakerConfig config) {
    breaker_template_ = std::move(config);
  }

  /// Breaker state for a route prefix, or kClosed if never dispatched.
  fault::BreakerState route_breaker_state(const std::string& resource_prefix) const;

  const GatewayStats& stats() const { return stats_; }

 private:
  Result<std::string> authenticate(const ApiRequest& request);
  fault::CircuitBreaker& breaker_for(const std::string& prefix);

  HealthCloudInstance* instance_;
  std::map<std::string, Handler> routes_;  // prefix -> handler
  fault::CircuitBreakerConfig breaker_template_;
  std::map<std::string, std::unique_ptr<fault::CircuitBreaker>> breakers_;
  GatewayStats stats_;
};

}  // namespace hc::platform
