#include "platform/routes.h"

#include "blockchain/auditor.h"

namespace hc::platform {

namespace {

/// Tail of `resource` after `prefix`, e.g. ("kb/", "kb/drugbank/drug-1")
/// -> "drugbank/drug-1".
std::string tail_after(const std::string& resource, std::string_view prefix) {
  return resource.substr(prefix.size());
}

}  // namespace

void install_standard_routes(ApiGateway& gateway, HealthCloudInstance& instance) {
  gateway.route("ingestion/status/",
                [&instance](const std::string&, const ApiRequest& request) -> Result<ApiResponse> {
                  std::string upload_id =
                      tail_after(request.resource, "ingestion/status/");
                  auto status = instance.status_tracker().status(upload_id);
                  if (!status.is_ok()) return status.status();
                  std::string body(storage::ingestion_stage_name(status->stage));
                  if (!status->reference_id.empty()) body += " " + status->reference_id;
                  if (!status->failure_reason.empty()) {
                    body += " " + status->failure_reason;
                  }
                  return ApiResponse{to_bytes(body)};
                });

  gateway.route("datalake/records/",
                [&instance](const std::string&, const ApiRequest& request) -> Result<ApiResponse> {
                  std::string reference =
                      tail_after(request.resource, "datalake/records/");
                  auto record = instance.lake().get(reference);
                  if (!record.is_ok()) return record.status();
                  return ApiResponse{std::move(*record)};
                });

  gateway.route("export/anonymized/",
                [&instance](const std::string&, const ApiRequest& request) -> Result<ApiResponse> {
                  std::string spec = tail_after(request.resource, "export/anonymized/");
                  std::size_t query = spec.find("?k=");
                  std::size_t k = 5;
                  std::string group = spec;
                  if (query != std::string::npos) {
                    k = static_cast<std::size_t>(
                        std::atoll(spec.c_str() + query + 3));
                    group = spec.substr(0, query);
                  }
                  auto result = instance.exporter().export_anonymized(group, k);
                  if (!result.is_ok()) return result.status();
                  return ApiResponse{to_bytes(
                      "rows=" + std::to_string(result->rows.size()) +
                      " suppressed=" + std::to_string(result->suppressed))};
                });

  gateway.route("kb/",
                [&instance](const std::string&, const ApiRequest& request) -> Result<ApiResponse> {
                  std::string spec = tail_after(request.resource, "kb/");
                  std::size_t slash = spec.find('/');
                  if (slash == std::string::npos) {
                    return Status(StatusCode::kInvalidArgument,
                                  "kb route needs kb/<base>/<key>");
                  }
                  auto lookup = instance.knowledge().query(spec.substr(0, slash),
                                                           spec.substr(slash + 1));
                  if (!lookup.is_ok()) return lookup.status();
                  return ApiResponse{to_bytes(lookup->value)};
                });

  gateway.route("audit/lifecycle/",
                [&instance](const std::string&, const ApiRequest& request) -> Result<ApiResponse> {
                  std::string reference =
                      tail_after(request.resource, "audit/lifecycle/");
                  blockchain::AuditorView auditor(instance.ledger());
                  auto lifecycle = auditor.record_lifecycle(reference);
                  if (lifecycle.events.empty()) {
                    return Status(StatusCode::kNotFound,
                                  "no provenance for " + reference);
                  }
                  std::string body;
                  for (const auto& event : lifecycle.events) {
                    if (!body.empty()) body += ",";
                    body += event;
                  }
                  return ApiResponse{to_bytes(body)};
                });
}

}  // namespace hc::platform
