// HIPAA/GDPR compliance auditing (Section IV.D, Fig 8).
//
// "The HIPAA controls are categorized into four pillars: administrative,
// physical, technical and policies and documentation." The paper's stance
// is that compliance is a *top-down* requirement implemented by bottom-up
// security mechanisms (Section IV "Security Vs Compliance"); this auditor
// closes the loop by checking, control by control, that the mechanisms are
// actually in place on a live instance:
//
//   administrative — RBAC populated and default-deny, change management
//                    paper trail, federated identity configured
//   physical       — (simulated hardware) TPM present and registered,
//                    measured boot log non-empty
//   technical      — encryption at rest (lake holds ciphertext under KMS
//                    keys), attestation golden set non-empty, ledger
//                    integrity, anonymization verification thresholds
//   policies/docs  — audit logging enabled and populated, consent ledger
//                    in use, right-to-forget machinery present
//
// Each control yields pass/fail with evidence; the report aggregates per
// pillar — the artifact an external audit (Section IV.E) would consume.
#pragma once

#include <string>
#include <vector>

#include "platform/instance.h"

namespace hc::platform {

enum class CompliancePillar { kAdministrative, kPhysical, kTechnical, kPolicies };

std::string_view pillar_name(CompliancePillar pillar);

struct ControlResult {
  std::string control;   // e.g. "access-control-default-deny"
  CompliancePillar pillar = CompliancePillar::kTechnical;
  bool passed = false;
  std::string evidence;  // what was checked / why it failed
};

struct ComplianceReport {
  std::vector<ControlResult> controls;

  bool compliant() const;
  std::size_t passed_count() const;
  std::vector<ControlResult> failures() const;
};

class ComplianceAuditor {
 public:
  explicit ComplianceAuditor(HealthCloudInstance& instance);

  /// Runs every control check against live platform state.
  ComplianceReport audit() const;

 private:
  void check_administrative(ComplianceReport& report) const;
  void check_physical(ComplianceReport& report) const;
  void check_technical(ComplianceReport& report) const;
  void check_policies(ComplianceReport& report) const;

  HealthCloudInstance* instance_;
};

}  // namespace hc::platform
