#include "platform/log_anchor.h"

#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace hc::platform {

namespace {

Bytes serialize_record(const LogRecord& record) {
  crypto::Sha256 h;
  std::uint8_t time_bytes[8];
  for (int i = 0; i < 8; ++i) {
    time_bytes[i] =
        static_cast<std::uint8_t>(static_cast<std::uint64_t>(record.time) >> (56 - 8 * i));
  }
  h.update(time_bytes, 8);
  h.update(log_level_name(record.level));
  h.update(std::string_view("|"));
  h.update(record.component);
  h.update(std::string_view("|"));
  h.update(record.event);
  h.update(std::string_view("|"));
  h.update(record.detail);
  return h.finalize();
}

}  // namespace

LogAnchorService::LogAnchorService(LogService& log,
                                   blockchain::PermissionedLedger& ledger,
                                   std::string instance_name)
    : log_(&log), ledger_(&ledger), instance_name_(std::move(instance_name)) {}

Bytes LogAnchorService::span_root(std::size_t begin, std::size_t end) const {
  std::vector<Bytes> leaves;
  leaves.reserve(end - begin);
  const auto& records = log_->records();
  for (std::size_t i = begin; i < end; ++i) {
    leaves.push_back(serialize_record(records[i]));
  }
  return crypto::MerkleTree(leaves).root();
}

Result<LogCheckpoint> LogAnchorService::checkpoint() {
  std::size_t total = log_->records().size();
  if (total <= anchored_) {
    return Status(StatusCode::kFailedPrecondition, "no new log records to anchor");
  }

  LogCheckpoint cp;
  cp.begin = anchored_;
  cp.end = total;
  cp.root = span_root(cp.begin, cp.end);
  cp.ledger_ref = "log:" + instance_name_ + "/ckpt-" +
                  std::to_string(checkpoints_.size());

  auto committed = ledger_->submit_and_commit(
      "provenance",
      {{"action", "record_event"},
       {"record_ref", cp.ledger_ref},
       {"event", "received"},
       {"data_hash", hex_encode(cp.root)}},
      "log-anchor");
  if (!committed.is_ok()) return committed.status();

  // NOTE: committing the checkpoint itself appends audit records to the
  // log; they belong to the *next* span, which is why `end` was captured
  // before the commit.
  anchored_ = cp.end;
  checkpoints_.push_back(cp);
  return cp;
}

Status LogAnchorService::verify() const {
  for (std::size_t k = 0; k < checkpoints_.size(); ++k) {
    const LogCheckpoint& cp = checkpoints_[k];
    if (cp.end > log_->records().size()) {
      return Status(StatusCode::kIntegrityError,
                    "log shrank below checkpoint " + std::to_string(k));
    }
    Bytes recomputed = span_root(cp.begin, cp.end);
    if (!constant_time_equal(recomputed, cp.root)) {
      return Status(StatusCode::kIntegrityError,
                    "log span " + std::to_string(k) + " was modified");
    }
    // Cross-check the anchored root on the ledger.
    auto on_ledger = ledger_->state_value("provenance", cp.ledger_ref + "/last_hash");
    if (!on_ledger.is_ok() || *on_ledger != hex_encode(cp.root)) {
      return Status(StatusCode::kIntegrityError,
                    "ledger anchor missing or mismatched for span " +
                        std::to_string(k));
    }
  }
  return Status::ok();
}

}  // namespace hc::platform
