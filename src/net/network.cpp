#include "net/network.h"

#include <algorithm>

namespace hc::net {

LinkProfile LinkProfile::loopback() {
  return LinkProfile{1, 0, 1e9, 0.0};
}

LinkProfile LinkProfile::lan() {
  // 100us latency, 10 Gb/s ~= 1250 bytes/us
  return LinkProfile{100, 20, 1250.0, 0.0};
}

LinkProfile LinkProfile::wan() {
  // 40ms latency, 100 Mb/s ~= 12.5 bytes/us
  return LinkProfile{40 * kMillisecond, 5 * kMillisecond, 12.5, 0.0};
}

LinkProfile LinkProfile::mobile() {
  // 120ms latency, 10 Mb/s ~= 1.25 bytes/us, 0.5% loss
  return LinkProfile{120 * kMillisecond, 30 * kMillisecond, 1.25, 0.005};
}

LinkProfile LinkProfile::intercloud() {
  // 15ms latency, 1 Gb/s ~= 125 bytes/us
  return LinkProfile{15 * kMillisecond, 2 * kMillisecond, 125.0, 0.0};
}

LinkProfile LinkProfile::cluster() {
  // 50us latency, 25 Gb/s ~= 3125 bytes/us; deterministic (no jitter, no
  // loss) so cluster transfer totals are independent of charging order.
  return LinkProfile{50, 0, 3125.0, 0.0};
}

SimNetwork::SimNetwork(ClockPtr clock, Rng rng)
    : clock_(std::move(clock)), rng_(rng) {}

SimNetwork::LinkKey SimNetwork::key(const std::string& a, const std::string& b) {
  return a < b ? LinkKey{a, b} : LinkKey{b, a};
}

void SimNetwork::set_link(const std::string& a, const std::string& b,
                          LinkProfile profile) {
  links_[key(a, b)] = profile;
}

bool SimNetwork::has_link(const std::string& a, const std::string& b) const {
  return links_.contains(key(a, b));
}

const LinkProfile* SimNetwork::find_link(const std::string& a,
                                         const std::string& b) const {
  auto it = links_.find(key(a, b));
  return it == links_.end() ? nullptr : &it->second;
}

SimTime SimNetwork::cost_for(const LinkProfile& link, std::size_t bytes,
                             SimTime jitter) const {
  SimTime transmission =
      static_cast<SimTime>(static_cast<double>(bytes) / link.bandwidth_bytes_per_us);
  return link.base_latency + jitter + transmission;
}

Result<SimTime> SimNetwork::send(const std::string& from, const std::string& to,
                                 std::size_t bytes, Bytes* payload) {
  const LinkProfile* link = find_link(from, to);
  if (!link) {
    return Status(StatusCode::kFailedPrecondition,
                  "no link configured between " + from + " and " + to);
  }
  SimTime jitter =
      link->jitter > 0 ? static_cast<SimTime>(rng_.uniform_int(0, link->jitter)) : 0;
  SimTime cost = cost_for(*link, bytes, jitter);

  fault::FaultDecision decision;
  if (injector_) decision = injector_->on_message(from, to);
  cost += decision.extra_delay;

  // A crashed endpoint times the sender out after the attempt latency.
  clock_->advance(cost);
  stats_.busy_time += cost;
  if (injector_ && (injector_->host_down(from) || injector_->host_down(to))) {
    ++stats_.host_down_drops;
    const std::string& down = injector_->host_down(to) ? to : from;
    return Status(StatusCode::kUnavailable, "host " + down + " is down");
  }
  if (decision.drop || rng_.bernoulli(link->drop_probability)) {
    ++stats_.drops;
    return Status(StatusCode::kUnavailable,
                  "message dropped on link " + from + " -> " + to);
  }
  if (decision.duplicate) {
    // The spurious copy consumes link capacity but the receiver dedupes.
    ++stats_.duplicates;
    ++stats_.messages;
    stats_.bytes += bytes;
  }
  if (decision.corrupt) {
    ++stats_.corruptions;
    if (payload) {
      injector_->corrupt_payload(*payload);  // the receiver's MAC decides
    } else {
      return Status(StatusCode::kIntegrityError,
                    "message corrupted in flight on " + from + " -> " + to);
    }
  }
  ++stats_.messages;
  stats_.bytes += bytes;
  return cost;
}

Result<SimTime> SimNetwork::send_with_retry(const std::string& from,
                                            const std::string& to, std::size_t bytes,
                                            int max_attempts) {
  SimTime start = clock_->now();
  Status last(StatusCode::kInvalidArgument, "max_attempts must be positive");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto sent = send(from, to, bytes);
    if (sent.is_ok()) return clock_->now() - start;
    last = sent.status();
    if (last.code() != StatusCode::kUnavailable &&
        last.code() != StatusCode::kIntegrityError) {
      return last;  // not retryable
    }
  }
  return last;
}

Result<SimTime> SimNetwork::estimate(const std::string& from, const std::string& to,
                                     std::size_t bytes) const {
  const LinkProfile* link = find_link(from, to);
  if (!link) {
    return Status(StatusCode::kFailedPrecondition,
                  "no link configured between " + from + " and " + to);
  }
  return cost_for(*link, bytes, link->jitter / 2);
}

}  // namespace hc::net
