// TLS-like secure channel over the simulated network.
//
// Section IV.B.1: data "is transmitted over a secure channel such as over
// TLS". The channel does a hybrid handshake (client seals a fresh session
// key to the server's public key), then protects every message with
// AES-128-CBC + HMAC-SHA256 (encrypt-then-MAC). Because both endpoints live
// in one simulation process, a channel object holds both ends: transmit()
// encrypts at the sender, charges the network, authenticates and decrypts
// at the receiver, and hands back what the receiver saw.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "crypto/asymmetric.h"
#include "net/network.h"
#include "obs/metrics.h"

namespace hc::net {

class SecureChannel {
 public:
  /// Performs the handshake (2 network flights + asymmetric unwrap) and
  /// returns an established channel. Fails if the link is missing or drops
  /// both handshake attempts. When `metrics` is supplied, the channel
  /// records `hc.net.handshakes` / `hc.net.handshake_us` here and
  /// bytes/messages/auth-failure counters on every transmit.
  static Result<SecureChannel> establish(SimNetwork& network, std::string client,
                                         std::string server,
                                         const crypto::PublicKey& server_pub,
                                         const crypto::PrivateKey& server_priv,
                                         Rng& rng,
                                         obs::MetricsPtr metrics = nullptr);

  /// Sends client -> server. Returns the plaintext as decrypted and
  /// authenticated by the server side; kIntegrityError if `tamper_in_flight`
  /// testing hook flipped bits; kUnavailable on network drop.
  Result<Bytes> transmit(const Bytes& plaintext);

  /// Sends server -> client (responses).
  Result<Bytes> respond(const Bytes& plaintext);

  /// Testing hook: corrupt the next message on the wire.
  void tamper_next_message() { tamper_next_ = true; }

  SimTime handshake_cost() const { return handshake_cost_; }
  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  SecureChannel(SimNetwork& network, std::string client, std::string server,
                Bytes enc_key, Bytes mac_key, Rng rng, SimTime handshake_cost,
                obs::MetricsPtr metrics);

  Result<Bytes> protected_send(const std::string& from, const std::string& to,
                               const Bytes& plaintext);

  SimNetwork* network_;
  std::string client_;
  std::string server_;
  Bytes enc_key_;
  Bytes mac_key_;
  Rng rng_;
  SimTime handshake_cost_;
  obs::MetricsPtr metrics_;  // may be null
  std::uint64_t messages_sent_ = 0;
  bool tamper_next_ = false;
};

}  // namespace hc::net
