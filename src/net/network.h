// Simulated network substrate.
//
// The platform is evaluated as a discrete-event simulation (DESIGN.md):
// every cross-machine interaction — client to cloud, intra-cloud service
// hops, intercloud container transfer — charges latency and bandwidth on a
// shared SimClock. This is what lets the caching and enhanced-client
// benchmarks reproduce the paper's "orders of magnitude" remote-access gap
// deterministically.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace hc::net {

/// Latency/bandwidth/loss model of one (bidirectional) link.
struct LinkProfile {
  SimTime base_latency = 0;      // one-way propagation
  SimTime jitter = 0;            // uniform [0, jitter] added per message
  double bandwidth_bytes_per_us = 1e9;  // effectively infinite by default
  double drop_probability = 0.0;

  /// Same-machine / loopback: nanosecond-scale, modeled as 1us.
  static LinkProfile loopback();
  /// Intra-datacenter LAN: ~100us, 10 Gb/s.
  static LinkProfile lan();
  /// Client to cloud over WAN: ~40ms, 100 Mb/s.
  static LinkProfile wan();
  /// Mobile device on cellular: ~120ms, 10 Mb/s, small loss.
  static LinkProfile mobile();
  /// Cloud-to-cloud dedicated interconnect: ~15ms, 1 Gb/s.
  static LinkProfile intercloud();
  /// Intra-cluster shard fabric: ~50us, 25 Gb/s, zero jitter and zero
  /// loss — transfer cost is a pure function of the byte count, which is
  /// what keeps hc::cluster's scale-out artifacts byte-reproducible for
  /// any charging order (see src/cluster/cluster.h).
  static LinkProfile cluster();
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t drops = 0;           // link-profile and injected drops
  std::uint64_t duplicates = 0;      // injected duplicate deliveries
  std::uint64_t corruptions = 0;     // injected in-flight corruptions
  std::uint64_t host_down_drops = 0; // messages lost to a crashed endpoint
  SimTime busy_time = 0;  // total latency charged
};

/// Point-to-point message-cost simulator. Hosts are named endpoints; links
/// must be configured before use (an unconfigured pair is a programming
/// error, surfaced as kFailedPrecondition rather than a silent default).
class SimNetwork {
 public:
  SimNetwork(ClockPtr clock, Rng rng);

  /// Installs a symmetric link between two endpoints.
  void set_link(const std::string& a, const std::string& b, LinkProfile profile);

  bool has_link(const std::string& a, const std::string& b) const;

  /// Charges the clock for moving `bytes` from `from` to `to` and returns
  /// the latency charged. kUnavailable if the message was dropped (clock
  /// still advances by the attempt latency) or either endpoint is inside a
  /// scheduled crash window, kFailedPrecondition if no link is configured.
  ///
  /// When a fault injector is bound it is consulted per message: drops and
  /// crashed hosts fail the send, delay rules add latency, duplicates show
  /// up in the stats, and corrupt rules flip bits of `payload` in flight
  /// when one is supplied (the receiver's MAC check is what catches it) —
  /// for payload-less cost models a corruption surfaces directly as
  /// kIntegrityError.
  Result<SimTime> send(const std::string& from, const std::string& to,
                       std::size_t bytes, Bytes* payload = nullptr);

  /// send() without advancing the clock — a pure cost query used by
  /// planners (e.g. the service selector).
  Result<SimTime> estimate(const std::string& from, const std::string& to,
                           std::size_t bytes) const;

  /// send() with up to `max_attempts` tries on kUnavailable drops and
  /// kIntegrityError corruptions (each attempt charges its latency —
  /// retries are not free). The availability countermeasure client paths
  /// use on lossy mobile links.
  Result<SimTime> send_with_retry(const std::string& from, const std::string& to,
                                  std::size_t bytes, int max_attempts = 3);

  /// Binds the chaos schedule (nullptr detaches). The injector owns all
  /// fault randomness; the network's own rng keeps serving link jitter, so
  /// binding a no-op plan leaves behaviour byte-identical.
  void set_fault_injector(fault::FaultInjectorPtr injector) {
    injector_ = std::move(injector);
  }
  const fault::FaultInjectorPtr& fault_injector() const { return injector_; }

  /// True when `host` is currently crashed per the bound fault plan.
  bool host_down(const std::string& host) const {
    return injector_ && injector_->host_down(host);
  }

  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

  ClockPtr clock() const { return clock_; }

 private:
  using LinkKey = std::pair<std::string, std::string>;
  static LinkKey key(const std::string& a, const std::string& b);

  const LinkProfile* find_link(const std::string& a, const std::string& b) const;
  SimTime cost_for(const LinkProfile& link, std::size_t bytes, SimTime jitter) const;

  ClockPtr clock_;
  mutable Rng rng_;
  std::map<LinkKey, LinkProfile> links_;
  fault::FaultInjectorPtr injector_;  // may be null (fault-free network)
  NetworkStats stats_;
};

}  // namespace hc::net
