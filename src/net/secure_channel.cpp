#include "net/secure_channel.h"

#include "crypto/aes.h"
#include "crypto/sha256.h"

namespace hc::net {

namespace {
// ClientHello: wrapped session secret (~48B) plus nonces/framing.
constexpr std::size_t kHelloBytes = 128;
// ServerFinished: key-confirmation MAC plus framing.
constexpr std::size_t kFinishedBytes = 64;
}  // namespace

Result<SecureChannel> SecureChannel::establish(SimNetwork& network,
                                               std::string client,
                                               std::string server,
                                               const crypto::PublicKey& server_pub,
                                               const crypto::PrivateKey& server_priv,
                                               Rng& rng, obs::MetricsPtr metrics) {
  SimTime start = network.clock()->now();

  // Client generates the session secret and seals it to the server's key.
  Bytes session_secret = rng.bytes(32);
  Bytes wrapped = crypto::rsa_encrypt(server_pub, session_secret);

  auto hello = network.send(client, server, kHelloBytes + wrapped.size());
  if (!hello.is_ok()) return hello.status();

  // Server unwraps (this is the asymmetric cost the paper's shared-key
  // recommendation amortizes over the whole session).
  Bytes unwrapped = crypto::rsa_decrypt(server_priv, wrapped);

  auto finished = network.send(server, client, kFinishedBytes);
  if (!finished.is_ok()) return finished.status();

  // Derive directional keys from the shared secret.
  Bytes enc_key_full = crypto::sha256_concat(unwrapped, to_bytes("enc"));
  Bytes mac_key = crypto::sha256_concat(unwrapped, to_bytes("mac"));
  Bytes enc_key(enc_key_full.begin(), enc_key_full.begin() + crypto::kAesKeySize);

  SimTime cost = network.clock()->now() - start;
  if (metrics) {
    metrics->add("hc.net.handshakes");
    metrics->observe("hc.net.handshake_us", static_cast<double>(cost));
  }
  return SecureChannel(network, std::move(client), std::move(server),
                       std::move(enc_key), std::move(mac_key), rng.fork(), cost,
                       std::move(metrics));
}

SecureChannel::SecureChannel(SimNetwork& network, std::string client,
                             std::string server, Bytes enc_key, Bytes mac_key,
                             Rng rng, SimTime handshake_cost, obs::MetricsPtr metrics)
    : network_(&network),
      client_(std::move(client)),
      server_(std::move(server)),
      enc_key_(std::move(enc_key)),
      mac_key_(std::move(mac_key)),
      rng_(rng),
      handshake_cost_(handshake_cost),
      metrics_(std::move(metrics)) {}

Result<Bytes> SecureChannel::protected_send(const std::string& from,
                                            const std::string& to,
                                            const Bytes& plaintext) {
  auto ct = crypto::aes_encrypt_authenticated(enc_key_, mac_key_, plaintext, rng_);

  if (tamper_next_) {
    tamper_next_ = false;
    ct.ciphertext[ct.ciphertext.size() / 2] ^= 0x40;
  }

  // Ship ciphertext||tag as the wire image so an injected in-flight
  // corruption (FaultInjector bit flips) hits real authenticated bytes.
  Bytes wire = ct.ciphertext;
  wire.insert(wire.end(), ct.tag.begin(), ct.tag.end());
  auto sent = network_->send(from, to, wire.size(), &wire);
  if (!sent.is_ok()) return sent.status();
  std::size_t split = ct.ciphertext.size();
  ct.ciphertext.assign(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(split));
  ct.tag.assign(wire.begin() + static_cast<std::ptrdiff_t>(split), wire.end());
  ++messages_sent_;
  if (metrics_) {
    metrics_->add("hc.net.messages");
    metrics_->add("hc.net.bytes", ct.ciphertext.size() + ct.tag.size(), "bytes");
  }

  auto received = crypto::aes_decrypt_authenticated(enc_key_, mac_key_, ct);
  if (!received.authentic) {
    if (metrics_) metrics_->add("hc.net.auth_failures");
    return Status(StatusCode::kIntegrityError,
                  "message failed authentication on " + from + " -> " + to);
  }
  return received.plaintext;
}

Result<Bytes> SecureChannel::transmit(const Bytes& plaintext) {
  return protected_send(client_, server_, plaintext);
}

Result<Bytes> SecureChannel::respond(const Bytes& plaintext) {
  return protected_send(server_, client_, plaintext);
}

}  // namespace hc::net
