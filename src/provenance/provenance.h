// Hybrid-storage provenance (ROADMAP item 4).
//
// The seed ledger records one consensus round trip per provenance event,
// so at ingest line rate the chain is the throughput ceiling: every stored
// record costs two endorsement rounds and two block commits of
// PBFT-style voting. Following the hybrid-storage blockchain literature
// (PAPERS.md: "Fast Authenticated and Interoperable Multimedia Healthcare
// Data over Hybrid-Storage Blockchains", "SciChain"), bulk payloads stay
// off-chain in the DataLake and the chain anchors compact commitments:
//
//   * ingestion workers append ProvenanceEvents at line rate (a mutex-
//     guarded buffer push — no consensus on the hot path);
//   * flush() seals the buffer into Merkle-tree batches in a canonical
//     order (sorted by content hash, so batch composition and roots are a
//     pure function of the workload — independent of worker interleaving);
//   * batch sizes come from hc::sched's AdaptiveBatcher plan machinery,
//     the same partitioner the parallel ingestion drain uses;
//   * one anchor transaction per batch (32-byte root + manifest) goes
//     through consensus: endorsement is batched (one proposal + one vote
//     round covers every anchor in the flush, via
//     PermissionedLedger::submit_batch) and commit rounds are pipelined
//     across consecutive blocks (two-machine flow-shop makespan: block
//     i+1's proposal broadcast overlaps block i's vote rounds);
//   * the auditor serves membership proofs — prove(record_ref) -> path,
//     verify(root, path, leaf) — and sweeps the off-chain stores for
//     payloads that no longer match their anchored commitment.
//
// Crash consistency rides on the ledger's abort semantics: an unreachable
// commit vote returns the whole block to the pending pool, so a batch
// root is either fully on-chain or not at all — never partially. flush()
// after recovery re-anchors the same sealed batches byte-for-byte.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "blockchain/ledger.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/log.h"
#include "common/status.h"
#include "crypto/merkle.h"
#include "obs/metrics.h"
#include "sched/sched.h"
#include "storage/data_lake.h"

namespace hc::provenance {

/// One ingestion-pipeline event awaiting anchoring. The canonical identity
/// of an event is (content_hash, seq, event) — the DataLake reference is
/// an index key only and is never hashed, because reference ids are
/// assigned in worker-arrival order and would make roots depend on thread
/// interleaving.
struct ProvenanceEvent {
  std::string record_ref;        // DataLake handle (proof-serving index key)
  Bytes content_hash;            // sha256 of the stored plaintext
  std::string event;             // received | anonymized | exported | deleted
  std::uint32_t seq = 0;         // per-record event ordinal
  std::uint64_t payload_bytes = 0;  // off-chain body size (cost accounting)
};

/// Canonical leaf serialization: domain tag | hex(content_hash) | seq | event.
Bytes leaf_bytes(const ProvenanceEvent& event);

/// A serveable membership proof: leaf + Merkle path + the anchored root.
/// verify() checks the path alone; ProvenanceAuditor::verify_onchain also
/// checks the root against the committed chain state for batch_id.
struct MembershipProof {
  std::uint64_t batch_id = 0;
  Bytes leaf;
  crypto::MerkleProof path;
  Bytes root;
};

/// Wire format (see parse_proof for the strict grammar):
///   "HCP1" | u64 batch_id | u32 leaf_len | u32 path_len |
///   leaf bytes | 32-byte root | path_len x (side byte + 32-byte hash)
/// All integers little-endian. Every bit is load-bearing: any single-bit
/// flip either fails parsing or changes the parsed proof semantically.
Bytes serialize_proof(const MembershipProof& proof);

/// Strict parser for untrusted proof blobs. Rejects (kInvalidArgument)
/// bad magic, truncation, trailing bytes, length-field lies (lengths are
/// capped *before* any allocation), and malformed side bytes. Never
/// throws, never crashes.
Result<MembershipProof> parse_proof(const Bytes& blob);

/// Parser caps: a leaf is a short canonical string, a path is at most
/// log2(2^32) nodes deep. Anything larger is a lie.
inline constexpr std::size_t kMaxProofLeafBytes = 4096;
inline constexpr std::size_t kMaxProofPathNodes = 64;

/// On-chain side of the hybrid scheme. One transaction anchors one batch:
///   action=anchor_batch, batch_id, root (64 hex chars), leaf_count,
///   manifest (free-form summary, e.g. "events=256 bytes=262144")
/// State: "batch/<id>/root", "batch/<id>/leaves",
///        "batches" / "anchored_leaves" (running counters).
class AnchorContract : public blockchain::SmartContract {
 public:
  static constexpr std::string_view kName = "prov-anchor";
  std::string_view name() const override { return kName; }
  Status validate(const blockchain::Transaction& tx,
                  const blockchain::WorldState& state) const override;
  void apply(const blockchain::Transaction& tx,
             blockchain::WorldState& state) const override;
};

/// Deterministic consensus-latency model, used when the ledger runs
/// without a SimNetwork (the bench configuration). Mirrors the ledger's
/// five broadcast rounds: endorsement = proposal + vote round; commit =
/// block proposal + two vote rounds. Each round is (peers-1) sequential
/// follower messages of per_message_us + bytes/bytes_per_us.
struct ConsensusCostModel {
  std::size_t peers = 4;
  SimTime per_message_us = 120;  // LAN-ish per-follower hop
  double bytes_per_us = 1.25;    // ~10 Mbit/s consensus links

  SimTime round(std::uint64_t message_bytes) const;
  /// Endorsement cost for a proposal carrying `payload_bytes`.
  SimTime endorse(std::uint64_t payload_bytes) const;
  /// Commit cost: block proposal round (proposal + per-tx bytes) + 2 votes.
  SimTime commit(std::uint64_t payload_bytes) const;
  /// The seed path's cost for one full-record provenance event: one
  /// endorsement + one single-tx block commit, payload on both.
  SimTime full_record(std::uint64_t payload_bytes) const;
};

struct AnchorerConfig {
  /// kHybrid anchors Merkle roots over AdaptiveBatcher-planned batches;
  /// kFullRecord is the retained baseline: every event is its own batch
  /// and the whole payload rides through consensus (the seed behaviour,
  /// kept measurable for bench_provenance's comparison column).
  enum class Mode { kHybrid, kFullRecord };
  Mode mode = Mode::kHybrid;
  std::string submitter = "provenance-anchorer";
  /// Batch partitioner (hybrid mode). Larger ceilings than the ingestion
  /// drain's: an anchor batch amortizes five broadcast rounds.
  sched::BatcherConfig batcher{/*min_batch=*/1, /*max_batch=*/256,
                               /*target_dispatches=*/8,
                               /*max_linger=*/2 * kMillisecond};
  /// Overlap block i+1's proposal broadcast with block i's vote rounds.
  bool pipeline = true;
  /// On-chain bytes per anchor transaction: root + manifest.
  std::uint64_t manifest_bytes = 160;
  /// Engaged when the ledger has no SimNetwork: flush() advances the
  /// shared clock by the modelled (pipelined) consensus makespan. Leave
  /// empty when the ledger itself charges real broadcast rounds.
  std::optional<ConsensusCostModel> costs;
};

/// Line-rate event intake + deterministic batch anchoring. append() is
/// thread-safe (parallel ingestion workers); flush() and the inspection
/// accessors are for the quiesced single-threaded phase after a drain.
class BatchAnchorer {
 public:
  BatchAnchorer(blockchain::PermissionedLedger& ledger, ClockPtr clock,
                AnchorerConfig config = {}, obs::MetricsPtr metrics = nullptr,
                LogPtr log = nullptr);

  /// Registers the AnchorContract on a ledger (idempotent-unfriendly like
  /// every contract registration: once per ledger).
  static Status register_contract(blockchain::PermissionedLedger& ledger);

  /// Buffers one event. O(1) under a mutex — no hashing, no consensus.
  void append(ProvenanceEvent event);
  std::size_t buffered() const;

  /// Seals the buffer into batches (canonical sort -> AdaptiveBatcher
  /// plan -> one Merkle tree per batch), then anchors every sealed batch
  /// that is not yet on-chain — including batches a previous flush sealed
  /// but could not anchor (crashed peers). kUnavailable when the commit
  /// quorum is unreachable; sealed batches are retained and the next
  /// flush re-anchors the identical roots.
  Status flush();

  struct SealedBatch {
    std::uint64_t batch_id = 0;
    crypto::MerkleTree tree;                // leaves in canonical order
    std::vector<ProvenanceEvent> events;    // events[i] <-> tree leaf i
    std::vector<Bytes> leaves;              // leaf_bytes(events[i])
    bool anchored = false;
    std::string tx_id;                      // set once endorsed
  };
  const std::vector<SealedBatch>& batches() const { return batches_; }

  /// Index lookup: (batch index, leaf index) pairs for a record reference,
  /// in seal order. Empty when the record was never sealed.
  std::vector<std::pair<std::size_t, std::size_t>> locate(
      const std::string& record_ref) const;

  std::uint64_t sealed_batches() const { return batches_.size(); }
  std::uint64_t anchored_batches() const;
  std::uint64_t anchored_events() const;
  std::uint64_t bytes_onchain() const { return bytes_onchain_; }
  std::uint64_t bytes_offchain() const { return bytes_offchain_; }
  /// Total modelled consensus time, pipelined and serial-equivalent. Zero
  /// when no cost model is configured (network-bound ledger).
  SimTime anchor_us_total() const { return anchor_us_total_; }
  SimTime anchor_serial_us_total() const { return anchor_serial_us_total_; }

  const AnchorerConfig& config() const { return config_; }

 private:
  void seal_buffered();
  Status anchor_pending();
  bool root_on_chain(const SealedBatch& batch) const;
  std::map<std::string, std::string> manifest_args(const SealedBatch& batch) const;
  /// Flow-shop makespan of the flush's consensus rounds; also accumulates
  /// the serial-equivalent total for the pipelining-win metric.
  void charge_consensus(const std::vector<const SealedBatch*>& anchored);

  blockchain::PermissionedLedger& ledger_;
  ClockPtr clock_;
  AnchorerConfig config_;
  sched::AdaptiveBatcher batcher_;
  obs::MetricsPtr metrics_;  // may be null
  LogPtr log_;               // may be null

  mutable std::mutex buffer_mu_;
  std::vector<ProvenanceEvent> buffer_;

  std::vector<SealedBatch> batches_;
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>> index_;
  std::uint64_t next_batch_id_ = 0;
  std::uint64_t bytes_onchain_ = 0;
  std::uint64_t bytes_offchain_ = 0;
  SimTime anchor_us_total_ = 0;
  SimTime anchor_serial_us_total_ = 0;
};

/// Read-only provenance lens for the audit service: serves membership
/// proofs against anchored batches and sweeps the off-chain stores for
/// tampering. Use quiesced, like the ledger's chain()/state() accessors.
class ProvenanceAuditor {
 public:
  /// `clock` (nullable) charges a deterministic proof-serving cost and
  /// feeds the hc.prov.proof_us latency histogram when metrics are bound.
  ProvenanceAuditor(const BatchAnchorer& anchorer,
                    const blockchain::PermissionedLedger& ledger,
                    ClockPtr clock = nullptr, obs::MetricsPtr metrics = nullptr);

  /// Membership proof for one recorded event of `record_ref`.
  /// kNotFound when the record has no sealed event of that name;
  /// kFailedPrecondition when it is sealed but not yet anchored.
  Result<MembershipProof> prove(const std::string& record_ref,
                                const std::string& event = "received") const;

  /// Pure path check — verifiers need no platform, only the proof.
  static bool verify(const MembershipProof& proof);

  /// Path check plus the chain: the proof's root must equal the root the
  /// committed world state records for its batch id.
  Status verify_onchain(const MembershipProof& proof) const;

  /// Integrity sweep over every anchored record: the payload must decrypt
  /// cleanly from the lake, its sha256 must match the anchored leaf, and
  /// the metadata's content_hash must agree. Returns the references that
  /// fail any check, sorted and de-duplicated.
  std::vector<std::string> audit(const storage::MetadataStore& metadata,
                                 const storage::DataLake& lake) const;

 private:
  const BatchAnchorer& anchorer_;
  const blockchain::PermissionedLedger& ledger_;
  ClockPtr clock_;           // may be null
  obs::MetricsPtr metrics_;  // may be null
};

}  // namespace hc::provenance
