#include "provenance/provenance.h"

#include <algorithm>
#include <cmath>

#include "crypto/sha256.h"

namespace hc::provenance {

namespace {

constexpr char kMagic[4] = {'H', 'C', 'P', '1'};
constexpr std::size_t kRootBytes = 32;

/// Deterministic proof-serving cost: a state lookup plus one hash per
/// path node. Small, but nonzero — proof latency is a served quantity.
constexpr SimTime kProofBaseUs = 5;
constexpr SimTime kProofPerNodeUs = 1;

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_uint(const Bytes& in, std::size_t at, std::size_t n) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
  }
  return v;
}

Status invalid(const std::string& why) {
  return Status(StatusCode::kInvalidArgument, "proof blob: " + why);
}

/// Canonical order: content hash, then event ordinal, then event name.
/// A pure function of the event set — append interleaving across workers
/// never changes it (ties are exact duplicates, whose leaves are equal).
bool canonical_less(const ProvenanceEvent& a, const ProvenanceEvent& b) {
  if (a.content_hash != b.content_hash) return a.content_hash < b.content_hash;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.event < b.event;
}

std::optional<std::uint64_t> parse_u64_arg(const std::string& text) {
  if (text.empty() || text.size() > 19) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

bool is_hex_digest(const std::string& text) {
  if (text.size() != 2 * kRootBytes) return false;
  for (char c : text) {
    bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Bytes leaf_bytes(const ProvenanceEvent& event) {
  std::string text = "hc-prov-leaf-v1|";
  text += hex_encode(event.content_hash);
  text += '|';
  text += std::to_string(event.seq);
  text += '|';
  text += event.event;
  return to_bytes(text);
}

Bytes serialize_proof(const MembershipProof& proof) {
  Bytes out;
  out.reserve(4 + 8 + 4 + 4 + proof.leaf.size() + kRootBytes +
              proof.path.size() * (1 + kRootBytes));
  for (char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u64(out, proof.batch_id);
  put_u32(out, static_cast<std::uint32_t>(proof.leaf.size()));
  put_u32(out, static_cast<std::uint32_t>(proof.path.size()));
  out.insert(out.end(), proof.leaf.begin(), proof.leaf.end());
  out.insert(out.end(), proof.root.begin(), proof.root.end());
  for (const crypto::ProofNode& node : proof.path) {
    out.push_back(node.sibling_on_left ? 0x01 : 0x00);
    out.insert(out.end(), node.hash.begin(), node.hash.end());
  }
  return out;
}

Result<MembershipProof> parse_proof(const Bytes& blob) {
  constexpr std::size_t kHeader = 4 + 8 + 4 + 4;
  if (blob.size() < kHeader) return invalid("truncated header");
  for (std::size_t i = 0; i < 4; ++i) {
    if (blob[i] != static_cast<std::uint8_t>(kMagic[i])) return invalid("bad magic");
  }
  const std::uint64_t batch_id = get_uint(blob, 4, 8);
  const std::uint64_t leaf_len = get_uint(blob, 12, 4);
  const std::uint64_t path_len = get_uint(blob, 16, 4);
  // Cap the claimed lengths before doing any size arithmetic with them:
  // a length-field lie must die here, not in an allocation.
  if (leaf_len == 0 || leaf_len > kMaxProofLeafBytes) {
    return invalid("leaf length out of range");
  }
  if (path_len > kMaxProofPathNodes) return invalid("path length out of range");
  const std::size_t expected =
      kHeader + static_cast<std::size_t>(leaf_len) + kRootBytes +
      static_cast<std::size_t>(path_len) * (1 + kRootBytes);
  if (blob.size() != expected) {
    return invalid(blob.size() < expected ? "truncated body" : "trailing bytes");
  }

  MembershipProof proof;
  proof.batch_id = batch_id;
  std::size_t at = kHeader;
  proof.leaf.assign(blob.begin() + static_cast<std::ptrdiff_t>(at),
                    blob.begin() + static_cast<std::ptrdiff_t>(at + leaf_len));
  at += leaf_len;
  proof.root.assign(blob.begin() + static_cast<std::ptrdiff_t>(at),
                    blob.begin() + static_cast<std::ptrdiff_t>(at + kRootBytes));
  at += kRootBytes;
  proof.path.reserve(path_len);
  for (std::uint64_t i = 0; i < path_len; ++i) {
    const std::uint8_t side = blob[at];
    if (side > 0x01) return invalid("malformed path side byte");
    crypto::ProofNode node;
    node.sibling_on_left = side == 0x01;
    node.hash.assign(blob.begin() + static_cast<std::ptrdiff_t>(at + 1),
                     blob.begin() + static_cast<std::ptrdiff_t>(at + 1 + kRootBytes));
    proof.path.push_back(std::move(node));
    at += 1 + kRootBytes;
  }
  return proof;
}

// ------------------------------------------------------------ AnchorContract

Status AnchorContract::validate(const blockchain::Transaction& tx,
                                const blockchain::WorldState& state) const {
  auto arg = [&](const char* key) -> const std::string* {
    auto it = tx.args.find(key);
    return it == tx.args.end() ? nullptr : &it->second;
  };
  const std::string* action = arg("action");
  if (!action || *action != "anchor_batch") {
    return Status(StatusCode::kInvalidArgument, "prov-anchor: unknown action");
  }
  const std::string* batch_id = arg("batch_id");
  if (!batch_id || !parse_u64_arg(*batch_id)) {
    return Status(StatusCode::kInvalidArgument, "prov-anchor: bad batch_id");
  }
  const std::string* root = arg("root");
  if (!root || !is_hex_digest(*root)) {
    return Status(StatusCode::kInvalidArgument,
                  "prov-anchor: root must be 64 lowercase hex chars");
  }
  const std::string* leaf_count = arg("leaf_count");
  auto leaves = leaf_count ? parse_u64_arg(*leaf_count) : std::nullopt;
  if (!leaves || *leaves == 0) {
    return Status(StatusCode::kInvalidArgument, "prov-anchor: bad leaf_count");
  }
  auto ns = state.find(std::string(kName));
  if (ns != state.end() && ns->second.contains("batch/" + *batch_id + "/root")) {
    return Status(StatusCode::kAlreadyExists,
                  "prov-anchor: batch " + *batch_id + " already anchored");
  }
  return Status::ok();
}

void AnchorContract::apply(const blockchain::Transaction& tx,
                           blockchain::WorldState& state) const {
  auto& ns = state[std::string(kName)];
  const std::string& batch_id = tx.args.at("batch_id");
  const std::string& leaf_count = tx.args.at("leaf_count");
  ns["batch/" + batch_id + "/root"] = tx.args.at("root");
  ns["batch/" + batch_id + "/leaves"] = leaf_count;
  auto bump = [&ns](const std::string& key, std::uint64_t delta) {
    auto it = ns.find(key);
    std::uint64_t current =
        it == ns.end() ? 0 : parse_u64_arg(it->second).value_or(0);
    ns[key] = std::to_string(current + delta);
  };
  bump("batches", 1);
  bump("anchored_leaves", parse_u64_arg(leaf_count).value_or(0));
}

// -------------------------------------------------------- ConsensusCostModel

SimTime ConsensusCostModel::round(std::uint64_t message_bytes) const {
  const std::size_t followers = peers > 1 ? peers - 1 : 0;
  const SimTime per_follower =
      per_message_us +
      static_cast<SimTime>(std::llround(static_cast<double>(message_bytes) / bytes_per_us));
  return static_cast<SimTime>(followers) * per_follower;
}

SimTime ConsensusCostModel::endorse(std::uint64_t payload_bytes) const {
  return round(512 + payload_bytes) + round(96);
}

SimTime ConsensusCostModel::commit(std::uint64_t payload_bytes) const {
  return round(512 + payload_bytes + 256) + 2 * round(96);
}

SimTime ConsensusCostModel::full_record(std::uint64_t payload_bytes) const {
  return endorse(payload_bytes) + commit(payload_bytes);
}

// ------------------------------------------------------------- BatchAnchorer

BatchAnchorer::BatchAnchorer(blockchain::PermissionedLedger& ledger, ClockPtr clock,
                             AnchorerConfig config, obs::MetricsPtr metrics,
                             LogPtr log)
    : ledger_(ledger),
      clock_(std::move(clock)),
      config_(std::move(config)),
      batcher_(config_.mode == AnchorerConfig::Mode::kFullRecord
                   ? sched::BatcherConfig{1, 1, 1, config_.batcher.max_linger}
                   : config_.batcher),
      metrics_(std::move(metrics)),
      log_(std::move(log)) {}

Status BatchAnchorer::register_contract(blockchain::PermissionedLedger& ledger) {
  return ledger.register_contract(std::make_unique<AnchorContract>());
}

void BatchAnchorer::append(ProvenanceEvent event) {
  {
    std::lock_guard lock(buffer_mu_);
    buffer_.push_back(std::move(event));
  }
  if (metrics_) metrics_->add("hc.prov.events");
}

std::size_t BatchAnchorer::buffered() const {
  std::lock_guard lock(buffer_mu_);
  return buffer_.size();
}

std::vector<std::pair<std::size_t, std::size_t>> BatchAnchorer::locate(
    const std::string& record_ref) const {
  auto it = index_.find(record_ref);
  return it == index_.end() ? std::vector<std::pair<std::size_t, std::size_t>>{}
                            : it->second;
}

std::uint64_t BatchAnchorer::anchored_batches() const {
  std::uint64_t n = 0;
  for (const SealedBatch& batch : batches_) n += batch.anchored ? 1 : 0;
  return n;
}

std::uint64_t BatchAnchorer::anchored_events() const {
  std::uint64_t n = 0;
  for (const SealedBatch& batch : batches_) {
    if (batch.anchored) n += batch.events.size();
  }
  return n;
}

void BatchAnchorer::seal_buffered() {
  std::vector<ProvenanceEvent> events;
  {
    std::lock_guard lock(buffer_mu_);
    events.swap(buffer_);
  }
  if (events.empty()) return;

  // Canonical order first: batch composition must be a pure function of
  // the event *set*, not of which worker appended first.
  std::stable_sort(events.begin(), events.end(), canonical_less);

  std::size_t at = 0;
  for (std::size_t take : batcher_.plan(events.size())) {
    SealedBatch batch{next_batch_id_++,
                      crypto::MerkleTree(std::vector<Bytes>{}),
                      {},
                      {},
                      false,
                      ""};
    batch.events.assign(events.begin() + static_cast<std::ptrdiff_t>(at),
                        events.begin() + static_cast<std::ptrdiff_t>(at + take));
    at += take;
    batch.leaves.reserve(batch.events.size());
    for (const ProvenanceEvent& event : batch.events) {
      batch.leaves.push_back(leaf_bytes(event));
    }
    batch.tree = crypto::MerkleTree(batch.leaves);
    for (std::size_t i = 0; i < batch.events.size(); ++i) {
      index_[batch.events[i].record_ref].emplace_back(batches_.size(), i);
    }
    if (metrics_) {
      metrics_->observe("hc.prov.batch_size",
                        static_cast<double>(batch.events.size()), "1",
                        &sched::batch_size_bounds());
      metrics_->add("hc.prov.batches_sealed");
    }
    batches_.push_back(std::move(batch));
  }
}

std::map<std::string, std::string> BatchAnchorer::manifest_args(
    const SealedBatch& batch) const {
  std::uint64_t payload = 0;
  for (const ProvenanceEvent& event : batch.events) payload += event.payload_bytes;
  return {{"action", "anchor_batch"},
          {"batch_id", std::to_string(batch.batch_id)},
          {"root", hex_encode(batch.tree.root())},
          {"leaf_count", std::to_string(batch.events.size())},
          {"manifest", "events=" + std::to_string(batch.events.size()) +
                           " payload_bytes=" + std::to_string(payload)}};
}

bool BatchAnchorer::root_on_chain(const SealedBatch& batch) const {
  auto value = ledger_.state_value(std::string(AnchorContract::kName),
                                   "batch/" + std::to_string(batch.batch_id) + "/root");
  return value.is_ok() && *value == hex_encode(batch.tree.root());
}

void BatchAnchorer::charge_consensus(const std::vector<const SealedBatch*>& anchored) {
  if (!config_.costs || anchored.empty()) return;
  const ConsensusCostModel& costs = *config_.costs;
  const bool full = config_.mode == AnchorerConfig::Mode::kFullRecord;

  // Per-batch consensus stages. Hybrid anchors carry only root+manifest;
  // the full-record baseline hauls the payload through both phases.
  std::vector<std::uint64_t> onchain_bytes;
  onchain_bytes.reserve(anchored.size());
  for (const SealedBatch* batch : anchored) {
    std::uint64_t onchain = config_.manifest_bytes;
    if (full) {
      onchain = 0;
      for (const ProvenanceEvent& event : batch->events) {
        onchain += event.payload_bytes;
      }
    }
    onchain_bytes.push_back(onchain);
  }
  // Batched endorsement: one proposal + one vote round covers the whole
  // flush, sized by the largest manifest, instead of per-anchor rounds.
  SimTime endorse_serial = 0;
  SimTime endorse_batched = 0;
  for (std::uint64_t bytes : onchain_bytes) {
    endorse_serial += costs.endorse(bytes);
    endorse_batched = std::max(endorse_batched, costs.endorse(bytes));
  }

  SimTime serial = endorse_serial;
  for (std::uint64_t bytes : onchain_bytes) serial += costs.commit(bytes);

  SimTime makespan;
  if (config_.pipeline && !full) {
    // Two-machine flow shop: block i+1's proposal broadcast overlaps
    // block i's vote rounds. Stage A = the block proposal round, stage
    // B = the two vote rounds.
    SimTime a_done = endorse_batched;
    SimTime b_done = endorse_batched;
    for (std::uint64_t bytes : onchain_bytes) {
      const SimTime proposal = costs.round(512 + bytes + 256);
      const SimTime votes = 2 * costs.round(96);
      a_done += proposal;
      b_done = std::max(b_done, a_done) + votes;
    }
    makespan = b_done;
  } else if (full) {
    makespan = serial;  // the seed path: nothing batched, nothing overlapped
  } else {
    makespan = endorse_batched + (serial - endorse_serial);
  }

  clock_->advance(makespan);
  anchor_us_total_ += makespan;
  anchor_serial_us_total_ += serial;
  if (metrics_) {
    metrics_->observe("hc.prov.anchor_us", static_cast<double>(makespan));
    metrics_->add("hc.prov.anchor_us_total", static_cast<std::uint64_t>(makespan), "us");
    metrics_->add("hc.prov.anchor_serial_us_total",
                  static_cast<std::uint64_t>(serial), "us");
  }
}

Status BatchAnchorer::anchor_pending() {
  // Pass 1: a previous flush may have left endorsed anchors in the pool
  // (commit vote unreachable). Drain them before submitting new work so a
  // batch is never endorsed twice.
  while (ledger_.pending_count() > 0) {
    auto receipt = ledger_.commit_block();
    if (!receipt.is_ok()) return receipt.status();
  }

  std::vector<SealedBatch*> todo;
  for (SealedBatch& batch : batches_) {
    if (batch.anchored) continue;
    if (root_on_chain(batch)) {
      batch.anchored = true;  // a drained leftover just committed it
      if (metrics_) {
        metrics_->add("hc.prov.batches_anchored");
        metrics_->add("hc.prov.events_anchored", batch.events.size());
      }
      continue;
    }
    todo.push_back(&batch);
  }
  if (todo.empty()) return Status::ok();

  // Batched endorsement: every anchor in the flush is endorsed in one
  // proposal + one vote round.
  std::vector<std::map<std::string, std::string>> args_list;
  args_list.reserve(todo.size());
  for (SealedBatch* batch : todo) args_list.push_back(manifest_args(*batch));
  auto ids = ledger_.submit_batch(std::string(AnchorContract::kName),
                                  std::move(args_list), config_.submitter);
  if (!ids.is_ok()) return ids.status();
  for (std::size_t i = 0; i < todo.size(); ++i) todo[i]->tx_id = (*ids)[i];

  // Commit until the pool drains; each block carries up to
  // max_block_transactions anchors, each anchor covering a whole batch.
  while (ledger_.pending_count() > 0) {
    auto receipt = ledger_.commit_block();
    if (!receipt.is_ok()) {
      // Aborted commits return the block to the pool: nothing partial is
      // on-chain, and the next flush()'s pass 1 retries the identical txs.
      return receipt.status();
    }
  }

  std::vector<const SealedBatch*> anchored_now;
  for (SealedBatch* batch : todo) {
    if (!root_on_chain(*batch)) continue;
    batch->anchored = true;
    anchored_now.push_back(batch);
    std::uint64_t payload = 0;
    for (const ProvenanceEvent& event : batch->events) payload += event.payload_bytes;
    const bool full = config_.mode == AnchorerConfig::Mode::kFullRecord;
    bytes_onchain_ += full ? payload : config_.manifest_bytes;
    bytes_offchain_ += payload;
    if (metrics_) {
      metrics_->add("hc.prov.batches_anchored");
      metrics_->add("hc.prov.events_anchored", batch->events.size());
    }
  }
  if (metrics_) {
    metrics_->set_gauge("hc.prov.bytes_onchain_total",
                        static_cast<double>(bytes_onchain_), "By");
    metrics_->set_gauge("hc.prov.bytes_offchain_total",
                        static_cast<double>(bytes_offchain_), "By");
  }
  charge_consensus(anchored_now);
  return Status::ok();
}

Status BatchAnchorer::flush() {
  seal_buffered();
  Status status = anchor_pending();
  if (!status.is_ok() && log_) {
    log_->warn("provenance", "anchor_deferred", status.to_string());
  }
  return status;
}

// --------------------------------------------------------- ProvenanceAuditor

ProvenanceAuditor::ProvenanceAuditor(const BatchAnchorer& anchorer,
                                     const blockchain::PermissionedLedger& ledger,
                                     ClockPtr clock, obs::MetricsPtr metrics)
    : anchorer_(anchorer),
      ledger_(ledger),
      clock_(std::move(clock)),
      metrics_(std::move(metrics)) {}

Result<MembershipProof> ProvenanceAuditor::prove(const std::string& record_ref,
                                                 const std::string& event) const {
  bool sealed_unanchored = false;
  for (const auto& [batch_index, leaf_index] : anchorer_.locate(record_ref)) {
    const BatchAnchorer::SealedBatch& batch = anchorer_.batches()[batch_index];
    if (batch.events[leaf_index].event != event) continue;
    if (!batch.anchored) {
      sealed_unanchored = true;
      continue;
    }
    MembershipProof proof;
    proof.batch_id = batch.batch_id;
    proof.leaf = batch.leaves[leaf_index];
    proof.path = batch.tree.prove(leaf_index);
    proof.root = batch.tree.root();
    const SimTime cost =
        kProofBaseUs + kProofPerNodeUs * static_cast<SimTime>(proof.path.size());
    if (clock_) clock_->advance(cost);
    if (metrics_) {
      metrics_->add("hc.prov.proofs_served");
      metrics_->observe("hc.prov.proof_us", static_cast<double>(cost));
    }
    return proof;
  }
  if (sealed_unanchored) {
    return Status(StatusCode::kFailedPrecondition,
                  record_ref + "/" + event + " is sealed but not yet anchored");
  }
  return Status(StatusCode::kNotFound,
                "no anchored provenance for " + record_ref + "/" + event);
}

bool ProvenanceAuditor::verify(const MembershipProof& proof) {
  return crypto::MerkleTree::verify(proof.leaf, proof.path, proof.root);
}

Status ProvenanceAuditor::verify_onchain(const MembershipProof& proof) const {
  if (!verify(proof)) {
    return Status(StatusCode::kIntegrityError, "membership path does not verify");
  }
  auto root = ledger_.state_value(
      std::string(AnchorContract::kName),
      "batch/" + std::to_string(proof.batch_id) + "/root");
  if (!root.is_ok()) {
    return Status(StatusCode::kNotFound,
                  "batch " + std::to_string(proof.batch_id) + " is not anchored");
  }
  if (*root != hex_encode(proof.root)) {
    return Status(StatusCode::kIntegrityError,
                  "proof root disagrees with the anchored root for batch " +
                      std::to_string(proof.batch_id));
  }
  if (metrics_) metrics_->add("hc.prov.proofs_verified");
  return Status::ok();
}

std::vector<std::string> ProvenanceAuditor::audit(
    const storage::MetadataStore& metadata, const storage::DataLake& lake) const {
  std::vector<std::string> flagged;
  std::map<std::string, const ProvenanceEvent*> seen;  // ref -> anchored event
  for (const BatchAnchorer::SealedBatch& batch : anchorer_.batches()) {
    if (!batch.anchored) continue;
    for (const ProvenanceEvent& event : batch.events) {
      seen.emplace(event.record_ref, &event);  // first anchored event wins
    }
  }
  for (const auto& [ref, event] : seen) {
    auto md = metadata.get(ref);
    if (!md.is_ok() || !constant_time_equal(md->content_hash, event->content_hash)) {
      flagged.push_back(ref);
      continue;
    }
    auto payload = lake.get(ref);
    if (!payload.is_ok() ||
        !constant_time_equal(crypto::sha256(*payload), event->content_hash)) {
      flagged.push_back(ref);
    }
  }
  if (metrics_ && !flagged.empty()) {
    metrics_->add("hc.prov.tamper_flagged", flagged.size());
  }
  if (metrics_) metrics_->add("hc.prov.audit_sweeps");
  return flagged;  // map iteration order: already sorted and unique
}

}  // namespace hc::provenance
