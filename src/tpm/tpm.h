// Software emulation of a Trusted Platform Module.
//
// Section II.A: "create a root of trust at the hardware level (using TPMs
// and Attestation Service) for each server and then extend it, via a
// transitive trust model, to the hypervisor" and onward to guests and
// containers (Fig 5). The emulator implements the minimal TPM surface the
// platform needs: PCR banks with the standard extend semantics
// (pcr' = SHA256(pcr || measurement)), an endorsement keypair created at
// "manufacture", and signed quotes binding PCR state to a verifier nonce.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "crypto/asymmetric.h"

namespace hc::tpm {

constexpr std::size_t kPcrCount = 24;

/// A quote: signed snapshot of selected PCRs, bound to a fresh nonce so
/// replayed quotes are rejected.
struct Quote {
  std::string tpm_id;
  std::vector<std::uint32_t> pcr_indices;
  std::vector<Bytes> pcr_values;
  Bytes nonce;
  Bytes signature;  // endorsement-key signature over the serialized quote

  /// Canonical byte serialization covered by the signature.
  Bytes serialize_for_signing() const;
};

class Tpm {
 public:
  /// `id` names the hardware unit; `rng` seeds the endorsement keypair.
  Tpm(std::string id, Rng& rng);

  /// Construction with an externally supplied endorsement keypair — used
  /// when the platform owner must also hold the signing half (e.g. the
  /// vTPM manager certifying child vTPMs with the hardware key).
  Tpm(std::string id, crypto::KeyPair keys);

  const std::string& id() const { return id_; }

  /// Public endorsement key — registered with the attestation service.
  const crypto::PublicKey& endorsement_key() const { return keys_.pub; }

  /// pcr' = SHA256(pcr || measurement). Throws std::out_of_range on index.
  void extend(std::uint32_t pcr, const Bytes& measurement);

  const Bytes& pcr(std::uint32_t index) const;

  /// Signs the selected PCRs and nonce with the endorsement key.
  Quote quote(const std::vector<std::uint32_t>& pcr_indices, const Bytes& nonce) const;

  /// Verifies a quote against a known endorsement public key. Checks the
  /// signature only; comparing the PCR values against golden measurements
  /// is the attestation service's job.
  static bool verify_quote_signature(const Quote& quote, const crypto::PublicKey& ek);

  /// Resets PCRs to zero (platform reboot). The endorsement key survives.
  void reset();

 private:
  std::string id_;
  crypto::KeyPair keys_;
  std::array<Bytes, kPcrCount> pcrs_;
};

}  // namespace hc::tpm
