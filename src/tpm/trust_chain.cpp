#include "tpm/trust_chain.h"

namespace hc::tpm {

std::map<std::uint32_t, Bytes> replay_log(const MeasurementLog& log) {
  std::map<std::uint32_t, Bytes> pcrs;
  for (const auto& event : log) {
    auto it = pcrs.find(event.pcr);
    if (it == pcrs.end()) {
      Bytes zero(crypto::kSha256DigestSize, 0);
      it = pcrs.emplace(event.pcr, std::move(zero)).first;
    }
    it->second = crypto::sha256_concat(it->second, event.digest);
  }
  return pcrs;
}

std::vector<Component> standard_vm_stack(const Bytes& bios, const Bytes& kernel,
                                         const std::vector<Bytes>& libraries) {
  std::vector<Component> stack;
  stack.push_back(Component{"crtm-bios", bios, kFirmwarePcr});
  stack.push_back(Component{"kernel", kernel, kKernelPcr});
  for (std::size_t i = 0; i < libraries.size(); ++i) {
    stack.push_back(Component{"library-" + std::to_string(i), libraries[i], kLibraryPcr});
  }
  return stack;
}

}  // namespace hc::tpm
