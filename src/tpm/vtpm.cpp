#include "tpm/vtpm.h"

#include "crypto/sha256.h"

namespace hc::tpm {

Bytes VTpmCertificate::serialize_for_signing() const {
  crypto::Sha256 h;
  h.update(vtpm_id);
  h.update(std::string_view("|"));
  h.update(parent_tpm_id);
  h.update(std::string_view("|"));
  h.update(to_bytes(vtpm_key.fingerprint()));
  return h.finalize();
}

VTpm::VTpm(std::string id, Rng& rng, VTpmCertificate certificate)
    : tpm_(std::move(id), rng), certificate_(std::move(certificate)) {}

VTpmManager::VTpmManager(const Tpm& hardware_tpm, const crypto::PrivateKey& hardware_priv,
                         Rng rng)
    : hardware_id_(hardware_tpm.id()), hardware_priv_(hardware_priv), rng_(rng) {}

VTpm& VTpmManager::create(const std::string& vtpm_id) {
  auto it = vtpms_.find(vtpm_id);
  if (it != vtpms_.end()) return *it->second;

  // Generate the vTPM (which creates its own key), then certify that key
  // with the hardware endorsement key the manager guards.
  auto vtpm = std::make_unique<VTpm>(vtpm_id, rng_, VTpmCertificate{});
  VTpmCertificate cert;
  cert.vtpm_id = vtpm_id;
  cert.parent_tpm_id = hardware_id_;
  cert.vtpm_key = vtpm->key();
  cert.signature = crypto::rsa_sign(hardware_priv_, cert.serialize_for_signing());
  vtpm->set_certificate(std::move(cert));

  auto [pos, inserted] = vtpms_.emplace(vtpm_id, std::move(vtpm));
  (void)inserted;
  return *pos->second;
}

Result<VTpm*> VTpmManager::find(const std::string& vtpm_id) {
  auto it = vtpms_.find(vtpm_id);
  if (it == vtpms_.end()) {
    return Status(StatusCode::kNotFound, "no vTPM named " + vtpm_id);
  }
  return it->second.get();
}

bool VTpmManager::verify_certificate(const VTpmCertificate& cert,
                                     const crypto::PublicKey& hardware_ek) {
  return crypto::rsa_verify(hardware_ek, cert.serialize_for_signing(), cert.signature);
}

}  // namespace hc::tpm
