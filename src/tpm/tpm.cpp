#include "tpm/tpm.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace hc::tpm {

Bytes Quote::serialize_for_signing() const {
  crypto::Sha256 h;
  h.update(tpm_id);
  for (std::size_t i = 0; i < pcr_indices.size(); ++i) {
    std::uint8_t idx[4];
    for (int b = 0; b < 4; ++b) {
      idx[b] = static_cast<std::uint8_t>(pcr_indices[i] >> (24 - 8 * b));
    }
    h.update(idx, 4);
    h.update(pcr_values[i]);
  }
  h.update(nonce);
  return h.finalize();
}

Tpm::Tpm(std::string id, Rng& rng) : id_(std::move(id)), keys_(crypto::generate_keypair(rng)) {
  reset();
}

Tpm::Tpm(std::string id, crypto::KeyPair keys) : id_(std::move(id)), keys_(std::move(keys)) {
  reset();
}

void Tpm::reset() {
  for (auto& pcr : pcrs_) pcr = Bytes(crypto::kSha256DigestSize, 0);
}

void Tpm::extend(std::uint32_t pcr, const Bytes& measurement) {
  if (pcr >= kPcrCount) throw std::out_of_range("Tpm::extend: bad PCR index");
  pcrs_[pcr] = crypto::sha256_concat(pcrs_[pcr], measurement);
}

const Bytes& Tpm::pcr(std::uint32_t index) const {
  if (index >= kPcrCount) throw std::out_of_range("Tpm::pcr: bad PCR index");
  return pcrs_[index];
}

Quote Tpm::quote(const std::vector<std::uint32_t>& pcr_indices, const Bytes& nonce) const {
  Quote q;
  q.tpm_id = id_;
  q.pcr_indices = pcr_indices;
  q.pcr_values.reserve(pcr_indices.size());
  for (auto idx : pcr_indices) q.pcr_values.push_back(pcr(idx));
  q.nonce = nonce;
  q.signature = crypto::rsa_sign(keys_.priv, q.serialize_for_signing());
  return q;
}

bool Tpm::verify_quote_signature(const Quote& quote, const crypto::PublicKey& ek) {
  if (quote.pcr_indices.size() != quote.pcr_values.size()) return false;
  return crypto::rsa_verify(ek, quote.serialize_for_signing(), quote.signature);
}

}  // namespace hc::tpm
