#include "tpm/image.h"

#include "crypto/sha256.h"

namespace hc::tpm {

Bytes ImageManifest::serialize_for_signing() const {
  crypto::Sha256 h;
  h.update(name);
  h.update(std::string_view("|"));
  h.update(version);
  h.update(std::string_view("|"));
  h.update(content_digest);
  for (const auto& pkg : package_digests) h.update(pkg);
  return h.finalize();
}

ImageManifest sign_image(const std::string& name, const std::string& version,
                         const Bytes& content, const std::vector<Bytes>& packages,
                         const crypto::KeyPair& signer) {
  ImageManifest m;
  m.name = name;
  m.version = version;
  m.content_digest = crypto::sha256(content);
  m.package_digests.reserve(packages.size());
  for (const auto& pkg : packages) m.package_digests.push_back(crypto::sha256(pkg));
  m.signer_fingerprint = signer.pub.fingerprint();
  m.signature = crypto::rsa_sign(signer.priv, m.serialize_for_signing());
  return m;
}

void ImageManagementService::approve_key(const crypto::PublicKey& key) {
  approved_keys_[key.fingerprint()] = key;
}

void ImageManagementService::revoke_key(const std::string& fingerprint) {
  approved_keys_.erase(fingerprint);
}

bool ImageManagementService::is_approved(const std::string& fingerprint) const {
  return approved_keys_.contains(fingerprint);
}

std::string ImageManagementService::image_key(const std::string& name,
                                              const std::string& version) {
  return name + "@" + version;
}

Status ImageManagementService::verify_image(const ImageManifest& manifest,
                                            const Bytes& content) const {
  if (!constant_time_equal(crypto::sha256(content), manifest.content_digest)) {
    return Status(StatusCode::kIntegrityError,
                  "image content does not match manifest digest");
  }
  auto key_it = approved_keys_.find(manifest.signer_fingerprint);
  if (key_it == approved_keys_.end()) {
    return Status(StatusCode::kPermissionDenied,
                  "image signer is not on the approved key list: " +
                      manifest.signer_fingerprint);
  }
  if (!crypto::rsa_verify(key_it->second, manifest.serialize_for_signing(),
                          manifest.signature)) {
    return Status(StatusCode::kIntegrityError, "image signature invalid");
  }
  return Status::ok();
}

Status ImageManagementService::register_image(const ImageManifest& manifest,
                                              const Bytes& content) {
  if (Status s = verify_image(manifest, content); !s.is_ok()) return s;
  std::string key = image_key(manifest.name, manifest.version);
  if (images_.contains(key)) {
    return Status(StatusCode::kAlreadyExists, "image already registered: " + key);
  }
  images_.emplace(key, StoredImage{manifest, content});
  return Status::ok();
}

Result<ImageManifest> ImageManagementService::manifest(const std::string& name,
                                                       const std::string& version) const {
  auto it = images_.find(image_key(name, version));
  if (it == images_.end()) {
    return Status(StatusCode::kNotFound, "no image " + image_key(name, version));
  }
  return it->second.manifest;
}

Result<Bytes> ImageManagementService::content(const std::string& name,
                                              const std::string& version) const {
  auto it = images_.find(image_key(name, version));
  if (it == images_.end()) {
    return Status(StatusCode::kNotFound, "no image " + image_key(name, version));
  }
  return it->second.content;
}

}  // namespace hc::tpm
