// Measured launch and the transitive trust chain (Section II.A, Fig 5).
//
// "the Core Root of Trust Measurement (CRTM) code runs in the VM's BIOS
// ... the trusted kernel extends the root of trust transitively to
// libraries and drivers" and, in this platform, to analytics containers.
// Each loaded component is hashed, the hash is extended into a PCR, and an
// IMA-style measurement log records the event so a verifier can replay it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace hc::tpm {

/// One software component loaded during measured launch.
struct Component {
  std::string name;     // "crtm-bios", "kernel-5.10", "libssl", "model-ctr:v3"
  Bytes content;        // what gets hashed
  std::uint32_t pcr = 0;  // which register it extends
};

/// IMA-style measurement log entry.
struct MeasurementEvent {
  std::uint32_t pcr = 0;
  std::string component;
  Bytes digest;  // sha256(content)
};

using MeasurementLog = std::vector<MeasurementEvent>;

/// Hashes each component, extends it into the given TPM (hardware Tpm or
/// VTpm — anything with an `extend(pcr, digest)` member), and returns the
/// measurement log. Call order defines the chain: CRTM first, then kernel,
/// then drivers/libraries, then workload containers.
template <typename TpmLike>
MeasurementLog measured_launch(TpmLike& tpm, const std::vector<Component>& components) {
  MeasurementLog log;
  log.reserve(components.size());
  for (const auto& c : components) {
    MeasurementEvent event{c.pcr, c.name, crypto::sha256(c.content)};
    tpm.extend(event.pcr, event.digest);
    log.push_back(std::move(event));
  }
  return log;
}

/// Replays a measurement log into the PCR values it should produce:
/// pcr' = SHA256(pcr || digest) folded from all-zero registers.
std::map<std::uint32_t, Bytes> replay_log(const MeasurementLog& log);

/// The standard boot stack of a health-cloud VM, used by tests, benches
/// and the platform module. `workload` components (containers) extend
/// PCR 10; firmware/OS layers extend PCRs 0-4.
std::vector<Component> standard_vm_stack(const Bytes& bios, const Bytes& kernel,
                                         const std::vector<Bytes>& libraries);

constexpr std::uint32_t kFirmwarePcr = 0;
constexpr std::uint32_t kKernelPcr = 2;
constexpr std::uint32_t kLibraryPcr = 4;
constexpr std::uint32_t kWorkloadPcr = 10;

}  // namespace hc::tpm
