// Virtual TPMs (Berger et al. [9]) and the per-VM vTPM manager (Fig 5).
//
// A vTPM gives each VM (and, through the vTPM manager container, each
// analytics container) its own PCR bank and quoting key while anchoring its
// identity in the hardware TPM: the hardware endorsement key signs a
// certificate over each vTPM's public key, forming the transitive link in
// the chain of trust.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "tpm/tpm.h"

namespace hc::tpm {

/// Certificate binding a vTPM's public key to its parent TPM.
struct VTpmCertificate {
  std::string vtpm_id;
  std::string parent_tpm_id;
  crypto::PublicKey vtpm_key;
  Bytes signature;  // parent endorsement-key signature

  Bytes serialize_for_signing() const;
};

/// A software TPM instance: same PCR/quote semantics as the hardware Tpm,
/// plus a certificate proving its lineage.
class VTpm {
 public:
  VTpm(std::string id, Rng& rng, VTpmCertificate certificate);

  const std::string& id() const { return tpm_.id(); }
  const crypto::PublicKey& key() const { return tpm_.endorsement_key(); }
  const VTpmCertificate& certificate() const { return certificate_; }

  void extend(std::uint32_t pcr, const Bytes& measurement) { tpm_.extend(pcr, measurement); }
  const Bytes& pcr(std::uint32_t index) const { return tpm_.pcr(index); }
  Quote quote(const std::vector<std::uint32_t>& pcrs, const Bytes& nonce) const {
    return tpm_.quote(pcrs, nonce);
  }

  /// Installed by VTpmManager once the parent TPM has signed the key.
  void set_certificate(VTpmCertificate certificate) {
    certificate_ = std::move(certificate);
  }

 private:
  Tpm tpm_;  // reuse the emulator; the certificate is what makes it "virtual"
  VTpmCertificate certificate_;
};

/// Runs in a dedicated VM (Fig 5): creates vTPM instances for guest VMs and
/// containers, certifying each with the hardware TPM's endorsement key.
/// The hardware TPM's *private* key never leaves this manager — mirroring
/// the server-side driver arrangement in the paper.
class VTpmManager {
 public:
  /// The manager needs the hardware TPM's signing capability; we model that
  /// as constructing the manager with the private key it guards.
  VTpmManager(const Tpm& hardware_tpm, const crypto::PrivateKey& hardware_priv, Rng rng);

  /// Creates (or returns existing) vTPM for a VM/container name.
  VTpm& create(const std::string& vtpm_id);

  Result<VTpm*> find(const std::string& vtpm_id);

  /// Verifies a vTPM certificate chain against the hardware TPM's public key.
  static bool verify_certificate(const VTpmCertificate& cert,
                                 const crypto::PublicKey& hardware_ek);

  std::size_t vtpm_count() const { return vtpms_.size(); }

 private:
  std::string hardware_id_;
  crypto::PrivateKey hardware_priv_;
  Rng rng_;
  std::map<std::string, std::unique_ptr<VTpm>> vtpms_;
};

}  // namespace hc::tpm
