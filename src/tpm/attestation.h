// Attestation Service (Fig 1, Sections II.A and II.C).
//
// The verifier side of the trust chain: it knows every registered TPM's
// endorsement key, the vTPM certificate lineage, and the golden (approved)
// measurement for every software component — updated by the Change
// Management service when changes are approved. A host/VM/container proves
// trustworthiness by returning a fresh-nonce quote plus its measurement
// log; the service replays the log, compares the folded values to the
// quoted PCRs, and checks every component against the golden set.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/bytes.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/status.h"
#include "tpm/tpm.h"
#include "tpm/trust_chain.h"
#include "tpm/vtpm.h"

namespace hc::tpm {

struct AttestationVerdict {
  bool trusted = false;
  std::string reason;  // empty when trusted
};

class AttestationService {
 public:
  explicit AttestationService(Rng rng, LogPtr log = nullptr);

  // --- registry -----------------------------------------------------
  /// Registers a hardware TPM's endorsement key.
  void register_tpm(const std::string& tpm_id, const crypto::PublicKey& ek);

  /// Registers a vTPM after verifying its certificate chains to a known
  /// hardware TPM. kIntegrityError if the chain does not verify.
  Status register_vtpm(const VTpmCertificate& cert);

  bool knows_tpm(const std::string& tpm_id) const;

  // --- golden measurements (driven by change management) -------------
  void approve_component(const std::string& component, const Bytes& digest);
  void revoke_component(const std::string& component);
  bool is_approved(const std::string& component, const Bytes& digest) const;

  // --- challenge/response --------------------------------------------
  /// Issues a fresh nonce; each nonce is single-use.
  Bytes challenge();

  /// Full verification of a quote + measurement log:
  ///  1. quoting key is registered (directly or via vTPM certificate),
  ///  2. signature valid,
  ///  3. nonce was issued by us and not yet consumed,
  ///  4. replaying the log reproduces the quoted PCR values,
  ///  5. every logged component is on the golden list.
  AttestationVerdict verify(const Quote& quote, const MeasurementLog& log);

  std::size_t approved_component_count() const { return golden_.size(); }

 private:
  Rng rng_;
  LogPtr log_;
  std::map<std::string, crypto::PublicKey> tpm_keys_;  // id -> EK (hw and vTPM)
  std::map<std::string, std::set<std::string>> golden_;  // component -> hex digests
  std::set<std::string> outstanding_nonces_;             // hex-encoded
};

}  // namespace hc::tpm
