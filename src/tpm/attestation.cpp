#include "tpm/attestation.h"

#include "crypto/sha256.h"

namespace hc::tpm {

AttestationService::AttestationService(Rng rng, LogPtr log)
    : rng_(rng), log_(std::move(log)) {}

void AttestationService::register_tpm(const std::string& tpm_id,
                                      const crypto::PublicKey& ek) {
  tpm_keys_[tpm_id] = ek;
  if (log_) log_->audit("attestation", "tpm_registered", tpm_id);
}

Status AttestationService::register_vtpm(const VTpmCertificate& cert) {
  auto parent = tpm_keys_.find(cert.parent_tpm_id);
  if (parent == tpm_keys_.end()) {
    return Status(StatusCode::kNotFound,
                  "vTPM parent not registered: " + cert.parent_tpm_id);
  }
  if (!VTpmManager::verify_certificate(cert, parent->second)) {
    if (log_) log_->error("attestation", "vtpm_cert_rejected", cert.vtpm_id);
    return Status(StatusCode::kIntegrityError,
                  "vTPM certificate does not verify against parent TPM");
  }
  tpm_keys_[cert.vtpm_id] = cert.vtpm_key;
  if (log_) log_->audit("attestation", "vtpm_registered", cert.vtpm_id);
  return Status::ok();
}

bool AttestationService::knows_tpm(const std::string& tpm_id) const {
  return tpm_keys_.contains(tpm_id);
}

void AttestationService::approve_component(const std::string& component,
                                           const Bytes& digest) {
  golden_[component].insert(hex_encode(digest));
  if (log_) log_->audit("attestation", "component_approved", component);
}

void AttestationService::revoke_component(const std::string& component) {
  golden_.erase(component);
  if (log_) log_->audit("attestation", "component_revoked", component);
}

bool AttestationService::is_approved(const std::string& component,
                                     const Bytes& digest) const {
  auto it = golden_.find(component);
  return it != golden_.end() && it->second.contains(hex_encode(digest));
}

Bytes AttestationService::challenge() {
  Bytes nonce = rng_.bytes(16);
  outstanding_nonces_.insert(hex_encode(nonce));
  return nonce;
}

AttestationVerdict AttestationService::verify(const Quote& quote,
                                              const MeasurementLog& log) {
  auto fail = [this](std::string reason) {
    if (log_) log_->warn("attestation", "attestation_failed", reason);
    return AttestationVerdict{false, std::move(reason)};
  };

  // 1. known quoting key
  auto key_it = tpm_keys_.find(quote.tpm_id);
  if (key_it == tpm_keys_.end()) {
    return fail("unknown TPM: " + quote.tpm_id);
  }

  // 2. signature
  if (!Tpm::verify_quote_signature(quote, key_it->second)) {
    return fail("quote signature invalid for " + quote.tpm_id);
  }

  // 3. single-use nonce
  std::string nonce_hex = hex_encode(quote.nonce);
  auto nonce_it = outstanding_nonces_.find(nonce_hex);
  if (nonce_it == outstanding_nonces_.end()) {
    return fail("nonce not issued or already consumed (replay?)");
  }
  outstanding_nonces_.erase(nonce_it);

  // 4. log replay must reproduce the quoted PCRs
  auto expected = replay_log(log);
  for (std::size_t i = 0; i < quote.pcr_indices.size(); ++i) {
    std::uint32_t pcr = quote.pcr_indices[i];
    auto exp_it = expected.find(pcr);
    Bytes expected_value = exp_it != expected.end()
                               ? exp_it->second
                               : Bytes(crypto::kSha256DigestSize, 0);
    if (!constant_time_equal(expected_value, quote.pcr_values[i])) {
      return fail("PCR " + std::to_string(pcr) + " does not match measurement log");
    }
  }

  // 5. every component golden
  for (const auto& event : log) {
    if (!is_approved(event.component, event.digest)) {
      return fail("component not approved: " + event.component);
    }
  }

  if (log_) log_->audit("attestation", "attestation_ok", quote.tpm_id);
  return AttestationVerdict{true, ""};
}

}  // namespace hc::tpm
