// Image Management Service (Fig 1, Section II.A).
//
// "The Image Management Service accepts only those VM images that are
// signed by an approved list of keys managed by an attestation service."
// Images (VM or container) are content-addressed, signed by their builder,
// and admission checks both the signature and the signer's membership in
// the approved-key list. Section IV.B.2's aggregate package signatures are
// supported via per-package digests folded into the manifest.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/asymmetric.h"

namespace hc::tpm {

struct ImageManifest {
  std::string name;
  std::string version;
  Bytes content_digest;               // sha256 of the image payload
  std::vector<Bytes> package_digests; // per-package hashes (aggregate signing)
  std::string signer_fingerprint;
  Bytes signature;

  Bytes serialize_for_signing() const;
};

/// Builder-side helper: hash, fill and sign a manifest.
ImageManifest sign_image(const std::string& name, const std::string& version,
                         const Bytes& content, const std::vector<Bytes>& packages,
                         const crypto::KeyPair& signer);

class ImageManagementService {
 public:
  /// Adds a key to the approved list (driven by the change-management
  /// service in the full platform).
  void approve_key(const crypto::PublicKey& key);

  /// Removes a key; images it signed stop being admissible.
  void revoke_key(const std::string& fingerprint);

  bool is_approved(const std::string& fingerprint) const;

  /// Admits an image: verifies digest, signature, and signer approval.
  /// Stored images can then be fetched by (name, version).
  Status register_image(const ImageManifest& manifest, const Bytes& content);

  Result<ImageManifest> manifest(const std::string& name, const std::string& version) const;
  Result<Bytes> content(const std::string& name, const std::string& version) const;

  /// Re-checks an already-fetched image (e.g. after intercloud transfer).
  Status verify_image(const ImageManifest& manifest, const Bytes& content) const;

  std::size_t image_count() const { return images_.size(); }

 private:
  struct StoredImage {
    ImageManifest manifest;
    Bytes content;
  };

  static std::string image_key(const std::string& name, const std::string& version);

  std::map<std::string, crypto::PublicKey> approved_keys_;  // by fingerprint
  std::map<std::string, StoredImage> images_;
};

}  // namespace hc::tpm
