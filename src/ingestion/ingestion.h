// The Data Ingestion service (Sections II.B and IV.B.1).
//
// Asynchronous by design: upload() stages the client-encrypted blob,
// enqueues a message, and returns a status URL immediately. The background
// worker (process_next / process_all) then runs each upload through the
// paper's pipeline:
//
//   decrypt (client key from the KMS)           -> kDecrypting
//   validate/curate the FHIR bundle             -> kValidating
//   malware filtration (+ malware ledger)       -> kScanning
//   patient consent check (consent ledger)      -> kVerifyingConsent
//   de-identify + anonymization verification
//     (+ privacy ledger)                        -> kDeIdentifying
//   encrypt & store in the data lake, metadata,
//     re-identification map, provenance events  -> kStored
//
// Any failure marks the upload kFailed with the reason; rejected records
// never reach the lake.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blockchain/contracts.h"
#include "blockchain/ledger.h"
#include "common/clock.h"
#include "common/id.h"
#include "common/log.h"
#include "common/status.h"
#include "crypto/asymmetric.h"
#include "crypto/kms.h"
#include "crypto/session_cache.h"
#include "fhir/resources.h"
#include "ingestion/malware.h"
#include "obs/metrics.h"
#include "privacy/deid.h"
#include "privacy/verification.h"
#include "provenance/provenance.h"
#include "sched/sched.h"
#include "storage/data_lake.h"
#include "storage/staging.h"
#include "storage/status_tracker.h"

namespace hc::cluster {
class Cluster;
class ShardedLake;
}  // namespace hc::cluster

namespace hc::ingestion {

/// Everything the service needs, owned elsewhere (typically by the
/// HealthCloudInstance in the platform module).
struct IngestionDeps {
  ClockPtr clock;
  LogPtr log;                                      // may be null
  crypto::KeyManagementService* kms = nullptr;
  storage::StagingArea* staging = nullptr;
  storage::MessageQueue* queue = nullptr;
  storage::StatusTracker* tracker = nullptr;
  storage::DataLake* lake = nullptr;
  storage::MetadataStore* metadata = nullptr;
  blockchain::PermissionedLedger* ledger = nullptr;  // may be null (no provenance)
  privacy::AnonymizationVerificationService* verifier = nullptr;
  privacy::ReidentificationMap* reid_map = nullptr;
  obs::MetricsPtr metrics;  // may be null (no metrics recorded)
  /// QoS layer (hc::sched), both optional. `admission` sheds uploads whose
  /// deadline cannot be met at the current queue backlog, *before* they
  /// cost staging or queue space. `batcher` turns the parallel worker's
  /// per-claim batch size into a scheduler decision (see process_all).
  sched::AdmissionController* admission = nullptr;
  sched::AdaptiveBatcher* batcher = nullptr;
  /// Hybrid-storage provenance (optional). When bound, per-record
  /// provenance events are appended to the anchorer at line rate instead
  /// of costing a consensus round trip each; process_all() flushes the
  /// buffer into Merkle-anchored batches after the drain. When null, the
  /// historical per-record submit_and_commit path runs unchanged.
  provenance::BatchAnchorer* anchorer = nullptr;
  /// Cluster scale-out (optional, both-or-neither). When bound, the store
  /// stage routes records to their owner shard-host through the sharded
  /// lake (placement by content hash — a pure function of the workload),
  /// upload() charges the staging-shard transfer, and `lake` is bypassed
  /// for record bodies. When null, the historical single-lake path runs
  /// byte-identically.
  cluster::Cluster* cluster = nullptr;
  cluster::ShardedLake* cluster_lake = nullptr;
  /// Per-tenant session-key cache (optional). When bound, the batched
  /// worker path resolves each envelope's RSA-wrapped session key through
  /// the cache — one private-key fetch + RSA unwrap per *distinct* session
  /// instead of per upload. When null, every envelope pays the full unwrap,
  /// byte-identical to the historical path.
  crypto::SessionKeyCache* session_cache = nullptr;
};

/// Per-upload scheduling hints carried into the message queue.
struct UploadQos {
  std::string tenant;      // fair-queue lane; empty = shared default lane
  std::uint64_t cost = 1;  // cost units (≈ KB of pipeline work)
  SimTime deadline = 0;    // absolute sim-time deadline; 0 = none
};

/// Simulated processing cost per pipeline stage, charged on the shared
/// clock so end-to-end ingestion throughput is measurable in sim time.
/// Defaults approximate the measured wall costs of the corresponding
/// crypto/parse/scan operations at 1KB-bundle scale.
struct StageCosts {
  SimTime decrypt_per_kb = 60;     // envelope unwrap + AES-CBC
  SimTime validate_fixed = 200;    // parse + structural checks
  SimTime scan_per_kb = 20;        // signature scan
  SimTime consent_fixed = 300;     // ledger state lookup
  SimTime deidentify_fixed = 150;  // field scrub + pseudonym + verification
  SimTime store_per_kb = 40;       // re-encrypt + lake write + metadata
};

struct UploadReceipt {
  std::string upload_id;
  std::string status_url;
};

struct ProcessOutcome {
  std::string upload_id;
  bool stored = false;
  std::string reference_id;    // when stored
  std::string failure_reason;  // when rejected
};

class IngestionService {
 public:
  /// `lake_key` is the data-lake encryption key id; `pseudonym_key` drives
  /// stable pseudonyms; `principal` is the identity the worker uses with
  /// the KMS (must be authorized on lake_key and on client keys).
  IngestionService(IngestionDeps deps, crypto::KeyId lake_key, Bytes pseudonym_key,
                   std::string principal);

  /// Client-facing entry: accepts an envelope sealed to the client's
  /// platform-issued keypair (`client_key_id` in the KMS). Returns
  /// immediately with a status URL (Section II.B).
  Result<UploadReceipt> upload(const crypto::Envelope& envelope,
                               const std::string& uploader_user,
                               const std::string& consent_group,
                               const crypto::KeyId& client_key_id);

  /// QoS-aware entry: same pipeline, but the upload is admission-checked
  /// against its deadline and queued on its tenant's fair-queue lane. A
  /// shed upload (admission) or a full queue (backpressure) returns a
  /// retryable kUnavailable and leaves no staged state behind.
  Result<UploadReceipt> upload(const crypto::Envelope& envelope,
                               const std::string& uploader_user,
                               const std::string& consent_group,
                               const crypto::KeyId& client_key_id,
                               const UploadQos& qos);

  /// Background worker: processes one queued upload end to end.
  /// kFailedPrecondition when the queue is empty. A *rejected* upload is a
  /// successful ProcessOutcome with stored=false — pipeline errors are data
  /// verdicts, not service failures.
  Result<ProcessOutcome> process_next();

  /// Drains the queue; returns how many uploads were stored.
  ///
  /// `n_workers <= 1` runs the historical serial loop: every stage cost is
  /// charged on the shared clock in order, byte-identical to process_next
  /// in a loop. `n_workers > 1` drains the queue across an exec::ThreadPool:
  /// each worker pops message batches, verifies their envelope HMACs in one
  /// batched pass, and charges stage costs to a worker-local sim lane. The
  /// shared clock then advances once by the parallel makespan
  /// ceil(total_cost / n_workers) — a deterministic quantity (total cost
  /// depends only on the workload, not on which worker drew which batch),
  /// so repeated runs produce identical aggregate metrics and sim time.
  ///
  /// With deps.batcher bound and `n_workers >= 1`, the pooled path is used
  /// for every worker count and batch sizes come from the scheduler: the
  /// queue depth at drain start is partitioned by AdaptiveBatcher::plan()
  /// into claim sizes, workers claim plan slots off an atomic cursor, and
  /// each claim's size lands in the hc.sched.batch_size histogram. The
  /// plan depends only on the depth — never on the worker count or OS
  /// interleaving — so aggregate metrics stay byte-identical across
  /// 1/2/4/8 workers and across reruns.
  std::size_t process_all(std::size_t n_workers = 0);

  /// The per-patient data key (Section IV.B.1 "encryption-based record
  /// deletion"): every pseudonym's records are encrypted under their own
  /// KMS key, so destroying that one key crypto-shreds the patient's data
  /// everywhere — including backups outside this process's reach.
  Result<crypto::KeyId> patient_key(const std::string& pseudonym) const;

  MalwareScanner& scanner() { return scanner_; }
  StageCosts& stage_costs() { return costs_; }

 private:
  /// Messages a parallel worker claims from the queue per pop — large
  /// enough to amortize the batched HMAC pass, small enough to keep the
  /// tail of the queue balanced across workers.
  static constexpr std::size_t kWorkerBatch = 8;

  /// Charges the stage cost and records it in the
  /// `hc.ingestion.stage.<stage>_us` histogram when metrics are bound.
  /// With `lane == nullptr` the shared clock advances immediately (serial
  /// mode); otherwise the cost accumulates in the worker's sim lane and the
  /// clock advances once at the end of process_all.
  void charge(const char* stage, SimTime fixed, SimTime per_kb,
              std::size_t bytes, SimTime* lane);
  /// Marks the upload failed and bumps `hc.ingestion.reject.<category>`.
  void fail(const char* category, const std::string& upload_id,
            const std::string& reason, ProcessOutcome& outcome);
  void record_provenance(const std::string& record_ref, const std::string& event,
                         const Bytes& data_hash, std::uint32_t seq,
                         std::size_t payload_bytes);

  /// One upload end to end (the body of process_next).
  ProcessOutcome process_message(const storage::IngestionMessage& message,
                                 SimTime* lane);
  /// Post-decryption stages: validate -> scan -> consent -> de-identify ->
  /// store. Shared by the serial and batched paths.
  void process_decrypted(const storage::IngestionMessage& message,
                         const Bytes& plaintext, ProcessOutcome& outcome,
                         SimTime* lane);
  /// Batch path used by parallel workers: unwraps every envelope's session
  /// key, verifies all HMAC tags in one crypto::hmac_verify_batch pass,
  /// then runs the survivors through process_decrypted. Returns how many
  /// of the batch were stored.
  std::size_t process_batch(std::vector<storage::IngestionMessage> batch,
                            SimTime* lane);

  /// Find-or-create of the per-patient data key, atomic under keys_mu_ so
  /// two workers storing for the same pseudonym agree on one key.
  crypto::KeyId patient_key_for_store(const std::string& pseudonym);

  IngestionDeps deps_;
  crypto::KeyId lake_key_;  // default key for non-patient objects
  privacy::Pseudonymizer pseudonymizer_;
  std::string principal_;
  StageCosts costs_;
  MalwareScanner scanner_;
  mutable std::mutex keys_mu_;  // guards patient_keys_
  std::map<std::string, crypto::KeyId> patient_keys_;  // pseudonym -> key
  std::mutex ids_mu_;  // guards ids_
  IdGenerator ids_;
  privacy::FieldSchema schema_ = privacy::FieldSchema::standard_patient();
};

}  // namespace hc::ingestion
