// The Export service (Section II.B).
//
// "i) Anonymized export, that anonymizes the data to protect privacy, and
// ii) Full export where the re-identified consented data is provided to the
// client. This is typically needed by Clinical Research Organizations
// (CRO)..."
//
// Anonymized export pulls every record consented to a study group,
// extracts patient rows, and k-anonymizes them before they leave.
// Full export re-identifies through the ReidentificationMap — callers must
// have passed RBAC/consent checks (enforced by the platform gateway), and
// every export is recorded on the provenance ledger.
#pragma once

#include <string>
#include <vector>

#include "blockchain/ledger.h"
#include "common/status.h"
#include "privacy/deid.h"
#include "privacy/kanonymity.h"
#include "storage/data_lake.h"

namespace hc::ingestion {

struct AnonymizedExport {
  std::vector<privacy::FieldMap> rows;  // k-anonymous patient rows
  std::size_t suppressed = 0;
  std::size_t record_count = 0;  // lake records that contributed
};

struct FullExportRecord {
  std::string reference_id;
  std::string patient_id;  // re-identified
  Bytes bundle_bytes;      // the original (identified) bundle when retained,
                           // otherwise the de-identified copy
};

class ExportService {
 public:
  ExportService(storage::DataLake& lake, storage::MetadataStore& metadata,
                privacy::ReidentificationMap& reid_map,
                blockchain::PermissionedLedger* ledger = nullptr);

  /// k-anonymized demographic rows for a consent group.
  Result<AnonymizedExport> export_anonymized(const std::string& consent_group,
                                             std::size_t k);

  /// Re-identified records for a consent group (CRO path).
  Result<std::vector<FullExportRecord>> export_full(const std::string& consent_group,
                                                    const std::string& requester);

 private:
  void record_export(const std::string& reference_id, const std::string& requester);

  storage::DataLake* lake_;
  storage::MetadataStore* metadata_;
  privacy::ReidentificationMap* reid_map_;
  blockchain::PermissionedLedger* ledger_;
};

}  // namespace hc::ingestion
