#include "ingestion/export.h"

#include "crypto/sha256.h"
#include "fhir/resources.h"

namespace hc::ingestion {

ExportService::ExportService(storage::DataLake& lake, storage::MetadataStore& metadata,
                             privacy::ReidentificationMap& reid_map,
                             blockchain::PermissionedLedger* ledger)
    : lake_(&lake), metadata_(&metadata), reid_map_(&reid_map), ledger_(ledger) {}

void ExportService::record_export(const std::string& reference_id,
                                  const std::string& requester) {
  if (!ledger_) return;
  (void)ledger_->submit_and_commit(
      "provenance",
      {{"action", "record_event"},
       {"record_ref", reference_id},
       {"event", "exported"},
       {"data_hash", requester}},
      "export-service");
}

Result<AnonymizedExport> ExportService::export_anonymized(
    const std::string& consent_group, std::size_t k) {
  auto records = metadata_->by_group(consent_group);
  if (records.empty()) {
    return Status(StatusCode::kNotFound,
                  "no records consented to group " + consent_group);
  }

  std::vector<privacy::FieldMap> rows;
  AnonymizedExport result;
  for (const auto& md : records) {
    auto bytes = lake_->get(md.reference_id);
    if (!bytes.is_ok()) return bytes.status();
    auto bundle = fhir::parse_bundle(*bytes);
    if (!bundle.is_ok()) return bundle.status();
    for (const auto& resource : bundle->resources) {
      if (const auto* patient = std::get_if<fhir::Patient>(&resource)) {
        // Stored patients carry generalized bands; re-derive numeric QI
        // values from the band lower bound for Mondrian.
        privacy::FieldMap row;
        row["age"] = std::to_string(patient->age);
        row["zip"] = patient->zip.size() >= 3 ? patient->zip.substr(0, 3) : "0";
        row["gender"] = patient->gender;
        row["pseudonym"] = patient->id;
        rows.push_back(std::move(row));
      }
    }
    ++result.record_count;
  }

  auto anonymized = privacy::k_anonymize(rows, {"age", "zip"}, k);
  if (!anonymized.is_ok()) return anonymized.status();
  result.rows = std::move(anonymized->records);
  result.suppressed = anonymized->suppressed;
  return result;
}

Result<std::vector<FullExportRecord>> ExportService::export_full(
    const std::string& consent_group, const std::string& requester) {
  auto records = metadata_->by_group(consent_group);
  if (records.empty()) {
    return Status(StatusCode::kNotFound,
                  "no records consented to group " + consent_group);
  }

  std::vector<FullExportRecord> out;
  out.reserve(records.size());
  for (const auto& md : records) {
    auto bytes = lake_->get(md.reference_id);
    if (!bytes.is_ok()) return bytes.status();
    auto identity = reid_map_->identity(md.pseudonym);
    if (!identity.is_ok()) {
      // Patient exercised right-to-forget; their records cannot be
      // re-identified and are excluded from full export.
      continue;
    }
    FullExportRecord record;
    record.reference_id = md.reference_id;
    record.patient_id = *identity;
    // Prefer the stored *original* bundle (Section IV.B.1 keeps both); fall
    // back to the de-identified copy when no original was retained.
    if (!md.original_reference_id.empty()) {
      auto original = lake_->get(md.original_reference_id);
      if (original.is_ok()) {
        record.bundle_bytes = std::move(*original);
      } else {
        record.bundle_bytes = std::move(*bytes);
      }
    } else {
      record.bundle_bytes = std::move(*bytes);
    }
    record_export(md.reference_id, requester);
    out.push_back(std::move(record));
  }
  return out;
}

}  // namespace hc::ingestion
