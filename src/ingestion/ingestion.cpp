#include "ingestion/ingestion.h"

#include <atomic>

#include "cluster/cluster.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "exec/executor.h"

namespace hc::ingestion {

namespace {

/// Serializes an Envelope for staging (wrapped key || body with a length
/// prefix) so the staging area holds one opaque blob per upload.
constexpr std::size_t kTagSize = 32;  // hmac-sha256

Bytes pack_envelope(const crypto::Envelope& envelope) {
  Bytes out;
  out.reserve(8 + envelope.wrapped_key.size() + kTagSize + envelope.body.size());
  std::uint64_t n = envelope.wrapped_key.size();
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
  out.insert(out.end(), envelope.wrapped_key.begin(), envelope.wrapped_key.end());
  out.insert(out.end(), envelope.tag.begin(), envelope.tag.end());
  out.insert(out.end(), envelope.body.begin(), envelope.body.end());
  return out;
}

Result<crypto::Envelope> unpack_envelope(const Bytes& blob) {
  if (blob.size() < 8) {
    return Status(StatusCode::kInvalidArgument, "staged blob too short");
  }
  std::uint64_t n = 0;
  for (int i = 0; i < 8; ++i) n = (n << 8) | blob[static_cast<std::size_t>(i)];
  if (n + kTagSize > blob.size() - 8) {
    return Status(StatusCode::kInvalidArgument, "staged blob corrupt");
  }
  crypto::Envelope env;
  auto wrapped_end = blob.begin() + 8 + static_cast<std::ptrdiff_t>(n);
  env.wrapped_key.assign(blob.begin() + 8, wrapped_end);
  env.tag.assign(wrapped_end, wrapped_end + kTagSize);
  env.body.assign(wrapped_end + kTagSize, blob.end());
  return env;
}

/// Zero-copy flavor of unpack_envelope: the view spans the blob in place
/// (the blob must outlive it). Same framing, same rejection messages.
Result<crypto::EnvelopeView> view_envelope(const Bytes& blob) {
  if (blob.size() < 8) {
    return Status(StatusCode::kInvalidArgument, "staged blob too short");
  }
  std::uint64_t n = 0;
  for (int i = 0; i < 8; ++i) n = (n << 8) | blob[static_cast<std::size_t>(i)];
  if (n + kTagSize > blob.size() - 8) {
    return Status(StatusCode::kInvalidArgument, "staged blob corrupt");
  }
  crypto::EnvelopeView view;
  view.wrapped_key = blob.data() + 8;
  view.wrapped_key_len = static_cast<std::size_t>(n);
  view.tag = view.wrapped_key + view.wrapped_key_len;
  view.tag_len = kTagSize;
  view.body = view.tag + kTagSize;
  view.body_len = blob.size() - 8 - view.wrapped_key_len - kTagSize;
  return view;
}

}  // namespace

IngestionService::IngestionService(IngestionDeps deps, crypto::KeyId lake_key,
                                   Bytes pseudonym_key, std::string principal)
    : deps_(std::move(deps)),
      lake_key_(std::move(lake_key)),
      pseudonymizer_(std::move(pseudonym_key)),
      principal_(std::move(principal)) {}

Result<UploadReceipt> IngestionService::upload(const crypto::Envelope& envelope,
                                               const std::string& uploader_user,
                                               const std::string& consent_group,
                                               const crypto::KeyId& client_key_id) {
  return upload(envelope, uploader_user, consent_group, client_key_id, UploadQos{});
}

Result<UploadReceipt> IngestionService::upload(const crypto::Envelope& envelope,
                                               const std::string& uploader_user,
                                               const std::string& consent_group,
                                               const crypto::KeyId& client_key_id,
                                               const UploadQos& qos) {
  if (consent_group.empty()) {
    return Status(StatusCode::kInvalidArgument, "upload requires a consent group");
  }
  if (deps_.admission) {
    Status admitted = deps_.admission->admit(
        qos.tenant.empty() ? "default" : qos.tenant,
        static_cast<double>(qos.cost == 0 ? 1 : qos.cost), qos.deadline,
        static_cast<double>(deps_.queue->backlog_cost()));
    if (!admitted.is_ok()) {
      if (deps_.log) {
        deps_.log->warn("ingestion", "upload_shed", admitted.message());
      }
      return admitted;
    }
  }
  UploadReceipt receipt;
  {
    std::lock_guard lock(ids_mu_);
    receipt.upload_id = "upload-" + ids_.next_uuid();
  }

  Bytes staged_blob = pack_envelope(envelope);
  const std::size_t staged_bytes = staged_blob.size();
  if (Status s = deps_.staging->put(receipt.upload_id, std::move(staged_blob));
      !s.is_ok()) {
    return s;
  }
  if (Status s = deps_.queue->push(
          storage::IngestionMessage{receipt.upload_id, uploader_user,
                                    consent_group, client_key_id, qos.tenant,
                                    qos.cost, qos.deadline});
      !s.is_ok()) {
    // Backpressure: undo the staged blob so a rejected upload leaves no
    // residue, and surface the retryable status to the client.
    (void)deps_.staging->remove(receipt.upload_id);
    if (deps_.metrics) deps_.metrics->add("hc.ingestion.backpressure");
    if (deps_.log) {
      deps_.log->warn("ingestion", "upload_backpressure", s.message());
    }
    return s;
  }
  receipt.status_url = deps_.tracker->track(receipt.upload_id);
  if (deps_.cluster) {
    // The staged blob lands on its staging shard-host. Cost is a pure
    // function of the byte count (zero-jitter cluster link), so upload
    // accounting is invariant to the host count.
    if (const std::string* host = deps_.cluster->staging_owner(receipt.upload_id)) {
      deps_.cluster->charge_transfer(deps_.cluster->origin(), *host, staged_bytes);
    }
  }
  if (deps_.metrics) deps_.metrics->add("hc.ingestion.uploads");
  if (deps_.log) {
    deps_.log->info("ingestion", "upload_received",
                    receipt.upload_id + " from " + uploader_user);
  }
  return receipt;
}

void IngestionService::charge(const char* stage, SimTime fixed, SimTime per_kb,
                              std::size_t bytes, SimTime* lane) {
  SimTime cost = fixed + per_kb * static_cast<SimTime>(bytes / 1024 + 1);
  if (lane) {
    *lane += cost;
  } else {
    deps_.clock->advance(cost);
  }
  if (deps_.metrics) {
    deps_.metrics->observe(std::string("hc.ingestion.stage.") + stage + "_us",
                           static_cast<double>(cost));
  }
}

void IngestionService::fail(const char* category, const std::string& upload_id,
                            const std::string& reason, ProcessOutcome& outcome) {
  deps_.tracker->set_failed(upload_id, reason);
  (void)deps_.staging->remove(upload_id);
  outcome.stored = false;
  outcome.failure_reason = reason;
  if (deps_.metrics) {
    deps_.metrics->add("hc.ingestion.rejects");
    deps_.metrics->add(std::string("hc.ingestion.reject.") + category);
  }
  if (deps_.log) deps_.log->warn("ingestion", "upload_rejected", upload_id + ": " + reason);
}

void IngestionService::record_provenance(const std::string& record_ref,
                                         const std::string& event,
                                         const Bytes& data_hash, std::uint32_t seq,
                                         std::size_t payload_bytes) {
  if (deps_.anchorer) {
    // Hybrid-storage path: buffer at line rate; the Merkle root goes
    // through consensus once per batch when process_all() flushes.
    deps_.anchorer->append({record_ref, data_hash, event, seq,
                            static_cast<std::uint64_t>(payload_bytes)});
    return;
  }
  if (!deps_.ledger) return;
  (void)deps_.ledger->submit_and_commit(
      "provenance",
      {{"action", "record_event"},
       {"record_ref", record_ref},
       {"event", event},
       {"data_hash", hex_encode(data_hash)}},
      "ingestion-service");
}

Result<ProcessOutcome> IngestionService::process_next() {
  auto message = deps_.queue->pop();
  if (!message) {
    return Status(StatusCode::kFailedPrecondition, "ingestion queue is empty");
  }
  return process_message(*message, /*lane=*/nullptr);
}

ProcessOutcome IngestionService::process_message(
    const storage::IngestionMessage& message, SimTime* lane) {
  ProcessOutcome outcome;
  outcome.upload_id = message.upload_id;

  auto blob = deps_.staging->get(message.upload_id);
  if (!blob.is_ok()) {
    fail("staging", message.upload_id,
         "staged blob missing: " + blob.status().to_string(), outcome);
    return outcome;
  }

  // --- decrypt ---------------------------------------------------------
  deps_.tracker->set_stage(message.upload_id, storage::IngestionStage::kDecrypting);
  charge("decrypt", 0, costs_.decrypt_per_kb, blob->size(), lane);
  auto envelope = unpack_envelope(*blob);
  if (!envelope.is_ok()) {
    fail("decrypt", message.upload_id, envelope.status().message(), outcome);
    return outcome;
  }
  auto client_key = deps_.kms->private_key(message.key_id, principal_);
  if (!client_key.is_ok()) {
    fail("decrypt", message.upload_id,
         "client key unavailable: " + client_key.status().to_string(), outcome);
    return outcome;
  }
  Bytes plaintext;
  try {
    plaintext = crypto::envelope_open(*client_key, *envelope);
  } catch (const std::invalid_argument& e) {
    fail("decrypt", message.upload_id, std::string("decryption failed: ") + e.what(),
         outcome);
    return outcome;
  }

  process_decrypted(message, plaintext, outcome, lane);
  return outcome;
}

void IngestionService::process_decrypted(const storage::IngestionMessage& message,
                                         const Bytes& plaintext,
                                         ProcessOutcome& outcome, SimTime* lane) {
  // --- validate --------------------------------------------------------
  deps_.tracker->set_stage(message.upload_id, storage::IngestionStage::kValidating);
  charge("validate", costs_.validate_fixed, 0, 0, lane);
  auto bundle = fhir::parse_bundle(plaintext);
  if (!bundle.is_ok()) {
    fail("parse", message.upload_id, "parse error: " + bundle.status().message(),
         outcome);
    return;
  }
  if (Status s = fhir::validate_bundle(*bundle); !s.is_ok()) {
    fail("validate", message.upload_id, "validation error: " + s.message(), outcome);
    return;
  }

  // --- malware scan ------------------------------------------------------
  deps_.tracker->set_stage(message.upload_id, storage::IngestionStage::kScanning);
  charge("scan", 0, costs_.scan_per_kb, plaintext.size(), lane);
  auto scan = scanner_.scan(plaintext);
  if (scan.infected) {
    if (deps_.ledger) {
      (void)deps_.ledger->submit_and_commit(
          "malware",
          {{"action", "report"},
           {"record_ref", message.upload_id},
           {"verdict", "infected"},
           {"sender", message.uploader_user_id}},
          "ingestion-service");
    }
    fail("malware", message.upload_id, "malware detected: " + scan.signature_name,
         outcome);
    return;
  }

  // --- consent -----------------------------------------------------------
  deps_.tracker->set_stage(message.upload_id,
                           storage::IngestionStage::kVerifyingConsent);
  charge("consent", costs_.consent_fixed, 0, 0, lane);
  const fhir::Patient* patient = nullptr;
  for (const auto& resource : bundle->resources) {
    if (const auto* p = std::get_if<fhir::Patient>(&resource)) {
      patient = p;
      break;
    }
  }
  if (!patient) {
    fail("no_patient", message.upload_id, "bundle carries no Patient resource", outcome);
    return;
  }
  if (deps_.ledger &&
      !blockchain::ConsentContract::has_consent(*deps_.ledger, patient->id,
                                                message.consent_group)) {
    fail("consent", message.upload_id,
         "patient has not consented to group " + message.consent_group, outcome);
    return;
  }

  // --- de-identify + verify anonymization --------------------------------
  deps_.tracker->set_stage(message.upload_id, storage::IngestionStage::kDeIdentifying);
  charge("deidentify", costs_.deidentify_fixed, 0, 0, lane);
  auto deidentified =
      privacy::deidentify(fhir::patient_fields(*patient), schema_, pseudonymizer_);
  if (!deidentified.is_ok()) {
    fail("anonymization", message.upload_id, deidentified.status().message(), outcome);
    return;
  }
  auto degree = deps_.verifier->verify(deidentified->fields, {"age", "zip", "gender"});
  if (!degree.acceptable) {
    fail("anonymization", message.upload_id,
         "anonymization insufficient: " + degree.reason, outcome);
    return;
  }

  // Rewrite the bundle: de-identified patient, pseudonymized references.
  fhir::Bundle stored_bundle;
  stored_bundle.id = bundle->id;
  const std::string& pseudonym = deidentified->pseudonym;
  for (auto& resource : bundle->resources) {
    if (std::holds_alternative<fhir::Patient>(resource)) {
      fhir::Patient deid_patient =
          fhir::apply_deidentified_fields(deidentified->fields, pseudonym);
      stored_bundle.resources.emplace_back(std::move(deid_patient));
    } else if (auto* o = std::get_if<fhir::Observation>(&resource)) {
      fhir::Observation obs = *o;
      obs.patient_id = pseudonym;
      stored_bundle.resources.emplace_back(std::move(obs));
    } else if (auto* m = std::get_if<fhir::MedicationRequest>(&resource)) {
      fhir::MedicationRequest med = *m;
      med.patient_id = pseudonym;
      stored_bundle.resources.emplace_back(std::move(med));
    } else if (auto* c = std::get_if<fhir::Condition>(&resource)) {
      fhir::Condition cond = *c;
      cond.patient_id = pseudonym;
      stored_bundle.resources.emplace_back(std::move(cond));
    }
  }

  // --- store --------------------------------------------------------------
  Bytes stored_bytes = fhir::serialize_bundle(stored_bundle);
  charge("store", 0, costs_.store_per_kb, stored_bytes.size(), lane);
  Bytes content_hash = crypto::sha256(stored_bytes);
  Bytes original_hash = crypto::sha256(plaintext);
  crypto::KeyId patient_key_id = patient_key_for_store(pseudonym);
  // Cluster mode routes each record to its owner shard-host by content
  // hash — placement is a pure function of the workload, never of worker
  // interleaving or host count (the scaleout differential wall pins this).
  auto reference =
      deps_.cluster_lake != nullptr
          ? deps_.cluster_lake->put(stored_bytes, patient_key_id,
                                    hex_encode(content_hash), lane)
          : deps_.lake->put(stored_bytes, patient_key_id);
  if (!reference.is_ok()) {
    fail("store", message.upload_id,
         "data lake error: " + reference.status().to_string(), outcome);
    return;
  }

  // Section IV.B.1: the *original* (identified) bundle is also stored,
  // encrypted under the same per-patient key — full export re-identifies
  // from it, and crypto-shredding covers both copies.
  auto original_reference =
      deps_.cluster_lake != nullptr
          ? deps_.cluster_lake->put(plaintext, patient_key_id,
                                    hex_encode(original_hash), lane)
          : deps_.lake->put(plaintext, patient_key_id);

  storage::RecordMetadata metadata;
  metadata.reference_id = *reference;
  metadata.pseudonym = pseudonym;
  metadata.consent_group = message.consent_group;
  metadata.schema = "fhir-bundle";
  metadata.privacy_level = "de-identified";
  metadata.content_hash = content_hash;
  if (original_reference.is_ok()) {
    metadata.original_reference_id = *original_reference;
    storage::RecordMetadata original_md;
    original_md.reference_id = *original_reference;
    original_md.pseudonym = pseudonym;
    original_md.consent_group = "";  // originals are not query-exposed by group
    original_md.schema = "fhir-bundle";
    original_md.privacy_level = "identified";
    original_md.content_hash = original_hash;
    (void)deps_.metadata->put(original_md);
  }
  (void)deps_.metadata->put(metadata);
  deps_.reid_map->record(pseudonym, patient->id);

  record_provenance(*reference, "received", content_hash, 0, stored_bytes.size());
  record_provenance(*reference, "anonymized", content_hash, 1, stored_bytes.size());
  if (deps_.ledger) {
    char score[32];
    std::snprintf(score, sizeof(score), "%.3f", degree.record_score);
    (void)deps_.ledger->submit_and_commit(
        "privacy",
        {{"action", "record_degree"},
         {"record_ref", *reference},
         {"score", score},
         {"k", std::to_string(degree.holistic_k)}},
        "ingestion-service");
  }

  (void)deps_.staging->remove(message.upload_id);
  deps_.tracker->set_stored(message.upload_id, *reference);
  if (deps_.metrics) deps_.metrics->add("hc.ingestion.stored");
  if (deps_.log) {
    deps_.log->audit("ingestion", "upload_stored",
                     message.upload_id + " -> " + *reference);
  }
  outcome.stored = true;
  outcome.reference_id = *reference;
}

std::size_t IngestionService::process_batch(
    std::vector<storage::IngestionMessage> batch, SimTime* lane) {
  // Phase 1: per-message staging fetch, zero-copy envelope view, session-key
  // unwrap. Failures here are reported immediately; survivors queue up for
  // the batched tag check. The staged blob stays alive inside the pending
  // item and the view spans it in place — the batched tag pass and the AES
  // decrypt read straight out of the staging bytes, no Envelope copies.
  struct PendingDecrypt {
    const storage::IngestionMessage* message = nullptr;
    Bytes blob;  // owns the staged bytes `view` spans
    crypto::EnvelopeView view;
    Bytes session_key;
  };
  std::vector<PendingDecrypt> pending;
  pending.reserve(batch.size());
  for (const auto& message : batch) {
    ProcessOutcome outcome;
    outcome.upload_id = message.upload_id;
    auto blob = deps_.staging->get(message.upload_id);
    if (!blob.is_ok()) {
      fail("staging", message.upload_id,
           "staged blob missing: " + blob.status().to_string(), outcome);
      continue;
    }
    deps_.tracker->set_stage(message.upload_id, storage::IngestionStage::kDecrypting);
    charge("decrypt", 0, costs_.decrypt_per_kb, blob->size(), lane);
    PendingDecrypt item;
    item.message = &message;
    item.blob = std::move(*blob);
    auto view = view_envelope(item.blob);
    if (!view.is_ok()) {
      fail("decrypt", message.upload_id, view.status().message(), outcome);
      continue;
    }
    item.view = *view;
    if (deps_.session_cache != nullptr) {
      // Cached unwrap: one KMS fetch + RSA trapdoor per distinct session,
      // keyed on the wrapped bytes themselves (the toy RSA is
      // deterministic, so equal wrapped bytes mean equal session keys).
      Bytes wrapped(item.view.wrapped_key,
                    item.view.wrapped_key + item.view.wrapped_key_len);
      try {
        auto session_key = deps_.session_cache->unwrap(message.key_id, wrapped);
        if (!session_key.is_ok()) {
          fail("decrypt", message.upload_id,
               "client key unavailable: " + session_key.status().to_string(),
               outcome);
          continue;
        }
        item.session_key = std::move(*session_key);
      } catch (const std::invalid_argument& e) {
        fail("decrypt", message.upload_id,
             std::string("decryption failed: ") + e.what(), outcome);
        continue;
      }
    } else {
      auto client_key = deps_.kms->private_key(message.key_id, principal_);
      if (!client_key.is_ok()) {
        fail("decrypt", message.upload_id,
             "client key unavailable: " + client_key.status().to_string(),
             outcome);
        continue;
      }
      try {
        item.session_key = crypto::envelope_unwrap_key(*client_key, item.view);
      } catch (const std::invalid_argument& e) {
        fail("decrypt", message.upload_id,
             std::string("decryption failed: ") + e.what(), outcome);
        continue;
      }
    }
    pending.push_back(std::move(item));
  }

  // Phase 2: one constant-time HMAC pass over the whole batch, four lanes
  // at a time, reading the message bytes in place via the view overload.
  std::vector<crypto::HmacVerifyView> tags;
  tags.reserve(pending.size());
  for (const auto& item : pending) {
    tags.push_back({&item.session_key, item.view.body, item.view.body_len,
                    item.view.tag, item.view.tag_len});
  }
  std::vector<bool> verdicts = crypto::hmac_verify_batch(tags);

  // Phase 3: decrypt the survivors and run the rest of the pipeline.
  std::size_t stored = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    PendingDecrypt& item = pending[i];
    ProcessOutcome outcome;
    outcome.upload_id = item.message->upload_id;
    if (!verdicts[i]) {
      secure_wipe(item.session_key);
      // Same client-visible reason the serial envelope_open path reports.
      fail("decrypt", item.message->upload_id,
           "decryption failed: envelope_open: integrity tag mismatch", outcome);
      continue;
    }
    Bytes plaintext;
    try {
      plaintext = crypto::envelope_decrypt_body(item.session_key, item.view);
    } catch (const std::invalid_argument& e) {
      secure_wipe(item.session_key);
      fail("decrypt", item.message->upload_id,
           std::string("decryption failed: ") + e.what(), outcome);
      continue;
    }
    secure_wipe(item.session_key);
    process_decrypted(*item.message, plaintext, outcome, lane);
    if (outcome.stored) ++stored;
  }
  return stored;
}

Result<crypto::KeyId> IngestionService::patient_key(const std::string& pseudonym) const {
  std::lock_guard lock(keys_mu_);
  auto it = patient_keys_.find(pseudonym);
  if (it == patient_keys_.end()) {
    return Status(StatusCode::kNotFound, "no data key for pseudonym " + pseudonym);
  }
  return it->second;
}

crypto::KeyId IngestionService::patient_key_for_store(const std::string& pseudonym) {
  // Per-patient data key: created on first record, reused afterwards, and
  // crypto-shredded when the patient exercises right-to-forget. The lock
  // spans find-and-create so concurrent workers storing records for the
  // same patient agree on a single key.
  std::lock_guard lock(keys_mu_);
  auto it = patient_keys_.find(pseudonym);
  if (it == patient_keys_.end()) {
    it = patient_keys_
             .emplace(pseudonym, deps_.kms->create_symmetric_key(principal_))
             .first;
  }
  return it->second;
}

std::size_t IngestionService::process_all(std::size_t n_workers) {
  const bool batched = deps_.batcher != nullptr && n_workers >= 1;
  if (n_workers <= 1 && !batched) {
    // Historical serial drain: stage costs advance the shared clock in
    // order, reproducing the metrics-locked golden artifacts byte for byte.
    std::size_t stored = 0;
    for (;;) {
      auto outcome = process_next();
      if (!outcome.is_ok()) break;  // queue drained
      if (outcome->stored) ++stored;
    }
    if (deps_.anchorer) (void)deps_.anchorer->flush();
    return stored;
  }

  // Scheduler-decided claim sizes: the plan partitions the queue depth at
  // drain start, purely from (depth, batcher config). The plan's slot
  // sizes sum exactly to the depth, so every claim pops its full size no
  // matter which worker gets there first — the batch_size histogram (and
  // every other aggregate) is identical across worker counts and reruns.
  std::vector<std::size_t> plan;
  if (batched) plan = deps_.batcher->plan(deps_.queue->depth());
  std::atomic<std::size_t> next_slot{0};

  // Parallel drain: workers pop batches until the queue (or plan) is dry,
  // charging stage costs to worker-local sim lanes instead of the shared
  // clock.
  std::vector<SimTime> lanes(n_workers, 0);
  std::atomic<std::size_t> stored{0};
  {
    exec::ThreadPool pool(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) {
      pool.submit([this, &lanes, &stored, &plan, &next_slot, batched, w] {
        SimTime& lane = lanes[w];
        for (;;) {
          std::size_t take = kWorkerBatch;
          if (batched) {
            std::size_t slot = next_slot.fetch_add(1, std::memory_order_relaxed);
            if (slot >= plan.size()) break;
            take = plan[slot];
          }
          auto batch = deps_.queue->pop_batch(take);
          if (batch.empty()) break;
          if (batched) deps_.batcher->record(batch.size());
          stored.fetch_add(process_batch(std::move(batch), &lane),
                           std::memory_order_relaxed);
        }
      });
    }
    pool.drain();
    pool.shutdown();
  }

  // Advance the shared clock once by the ideal parallel makespan
  // ceil(total / n_workers). The *total* stage cost is a property of the
  // workload alone — every message's cost lands in exactly one lane — so
  // the advance (and therefore final sim time and throughput) is identical
  // across runs no matter how the OS scheduled the workers.
  SimTime total = 0;
  for (SimTime lane : lanes) total += lane;
  SimTime workers = static_cast<SimTime>(n_workers);
  deps_.clock->advance((total + workers - 1) / workers);
  // Anchor the provenance buffered during the drain: one canonical sort +
  // Merkle seal + batched consensus flush, identical for every worker count.
  if (deps_.anchorer) (void)deps_.anchorer->flush();
  return stored.load(std::memory_order_relaxed);
}

}  // namespace hc::ingestion
