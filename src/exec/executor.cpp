#include "exec/executor.h"

#include <atomic>
#include <stdexcept>
#include <utility>

namespace hc::exec {

std::uint64_t fnv1a64(std::string_view key) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : key) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::size_t shard_by(std::string_view key, std::size_t shards) {
  if (shards == 0) throw std::invalid_argument("shard_by: shards must be >= 1");
  return static_cast<std::size_t>(fnv1a64(key) % shards);
}

ThreadPool::ThreadPool(std::size_t workers, std::size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (workers == 0) throw std::invalid_argument("ThreadPool: workers must be >= 1");
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      not_full_.notify_one();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (error && !first_error_) first_error_ = error;
      --active_;
      ++completed_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  std::unique_lock lock(mu_);
  not_full_.wait(lock, [this] { return stopping_ || queue_.size() < capacity_; });
  if (stopping_) throw std::logic_error("ThreadPool::submit after shutdown");
  queue_.push_back(std::move(task));
  not_empty_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  std::lock_guard lock(mu_);
  if (stopping_) throw std::logic_error("ThreadPool::submit after shutdown");
  if (queue_.size() >= capacity_) return false;
  queue_.push_back(std::move(task));
  not_empty_.notify_one();
  return true;
}

void ThreadPool::drain() {
  std::exception_ptr error;
  {
    std::unique_lock lock(mu_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::shutdown() {
  {
    std::unique_lock lock(mu_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    if (stopping_ && workers_.empty()) return;  // already shut down
    stopping_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void ThreadPool::check_error() {
  std::exception_ptr error;
  {
    std::lock_guard lock(mu_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

std::uint64_t ThreadPool::completed() const {
  std::lock_guard lock(mu_);
  return completed_;
}

void parallel_for(std::size_t n, std::size_t workers,
                  const std::function<void(std::size_t)>& fn, std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  std::size_t chunks = (n + grain - 1) / grain;
  if (workers <= 1 || chunks == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  auto run = [&] {
    for (;;) {
      std::size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunks || failed.load(std::memory_order_relaxed)) return;
      std::size_t begin = chunk * grain;
      std::size_t end = std::min(n, begin + grain);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        throw;  // captured by the pool, rethrown from drain()
      }
    }
  };
  std::size_t pool_size = std::min(workers, chunks);
  ThreadPool pool(pool_size, pool_size);
  for (std::size_t w = 0; w < pool.worker_count(); ++w) pool.submit(run);
  pool.drain();  // rethrows the first task exception
  pool.shutdown();
}

std::size_t hardware_workers() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

AffinityExecutor::AffinityExecutor(std::size_t lanes, std::size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (lanes == 0) lanes = 1;
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  for (auto& lane : lanes_) {
    lane->thread = std::thread([this, l = lane.get()] { lane_loop(*l); });
  }
}

AffinityExecutor::~AffinityExecutor() { shutdown(); }

void AffinityExecutor::record_error() {
  std::lock_guard lock(error_mu_);
  if (!first_error_) first_error_ = std::current_exception();
}

void AffinityExecutor::lane_loop(Lane& lane) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(lane.mu);
      lane.not_empty_.wait(lock, [&] { return lane.stopping || !lane.queue.empty(); });
      if (lane.queue.empty()) return;  // stopping and drained
      task = std::move(lane.queue.front());
      lane.queue.pop_front();
      lane.active = true;
      lane.not_full_.notify_one();
    }
    try {
      task();
    } catch (...) {
      record_error();
    }
    {
      std::lock_guard lock(lane.mu);
      lane.active = false;
      if (lane.queue.empty()) lane.idle_.notify_all();
    }
  }
}

void AffinityExecutor::submit(std::size_t lane_index, std::function<void()> task) {
  Lane& lane = *lanes_[lane_index % lanes_.size()];
  std::unique_lock lock(lane.mu);
  if (lane.stopping) throw std::logic_error("AffinityExecutor::submit after shutdown");
  lane.not_full_.wait(lock, [&] { return lane.queue.size() < capacity_; });
  lane.queue.push_back(std::move(task));
  lane.not_empty_.notify_one();
}

void AffinityExecutor::submit_keyed(std::string_view key, std::function<void()> task) {
  submit(shard_by(key, lanes_.size()), std::move(task));
}

void AffinityExecutor::drain() {
  for (auto& lane : lanes_) {
    std::unique_lock lock(lane->mu);
    lane->idle_.wait(lock, [&] { return lane->queue.empty() && !lane->active; });
  }
  check_error();
}

void AffinityExecutor::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& lane : lanes_) {
    std::lock_guard lock(lane->mu);
    lane->stopping = true;
    lane->not_empty_.notify_all();
  }
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
}

void AffinityExecutor::check_error() {
  std::exception_ptr error;
  {
    std::lock_guard lock(error_mu_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace hc::exec
