// Execution layer: fixed-size thread pool, parallel_for, shard hashing.
//
// The paper's ingestion service is "asynchronous by design" (Sections II.B
// and IV.B.1) so the platform can absorb bulk EMR uploads; this module is
// the substrate that lets the reproduction actually run that pipeline on N
// OS threads. Design constraints, in order:
//
//   1. *Bounded.* The pool's work queue has a fixed capacity and submit()
//      blocks when it is full — backpressure, never unbounded memory.
//   2. *Deterministic shutdown.* drain() waits until every queued and
//      in-flight task has finished; shutdown() additionally joins the
//      workers. Both are safe to call repeatedly.
//   3. *Exceptions surface.* A task that throws does not kill the worker;
//      the first exception is captured and rethrown from drain() (or
//      check_error()), so parallel pipelines fail loudly, not silently.
//   4. *Stable sharding.* shard_by() is FNV-1a — an explicitly specified
//      hash, not std::hash — so shard assignment (and therefore lock
//      distribution and any shard-keyed artifact) is identical across
//      platforms and standard libraries.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace hc::exec {

/// FNV-1a 64-bit over the bytes of `key`. Stable across platforms.
std::uint64_t fnv1a64(std::string_view key);

/// Shard index in [0, shards) for a string key. `shards` must be >= 1.
/// The platform's sharded-lock containers (data lake, metadata store,
/// re-identification map, metrics registry) all key their shards through
/// this function so that one patient / reference id always lands on the
/// same shard — unrelated uploads never contend on a lock.
std::size_t shard_by(std::string_view key, std::size_t shards);

/// Fixed-size worker pool over a bounded FIFO work queue.
class ThreadPool {
 public:
  /// Starts `workers` threads (>= 1). `queue_capacity` bounds the number
  /// of *queued* (not yet started) tasks; submit() blocks when full.
  explicit ThreadPool(std::size_t workers, std::size_t queue_capacity = 256);

  /// Drains and joins. Any captured task exception is swallowed here (use
  /// drain() before destruction to observe it).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; blocks while the queue is at capacity (backpressure).
  /// Throws std::logic_error after shutdown().
  void submit(std::function<void()> task);

  /// Non-blocking submit: false when the queue is at capacity.
  bool try_submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is in flight, then
  /// rethrows the first exception any task raised since the last drain
  /// (clearing it, so the pool remains usable).
  void drain();

  /// drain() + stop + join. Idempotent; does not throw for task errors
  /// (call drain() first to observe them).
  void shutdown();

  /// Rethrows the first captured task exception, if any (clears it).
  void check_error();

  std::size_t worker_count() const { return workers_.size(); }
  std::size_t queue_capacity() const { return capacity_; }
  /// Tasks queued but not yet started.
  std::size_t pending() const;
  /// Tasks that finished (normally or by throwing).
  std::uint64_t completed() const;

 private:
  void worker_loop();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;  // queue gained work / stopping
  std::condition_variable not_full_;   // queue has room
  std::condition_variable idle_;       // queue empty and nothing in flight
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;        // tasks currently executing
  std::uint64_t completed_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;  // first task exception since last drain
};

/// Lane-affine executor: `lanes` single-thread FIFO queues. A task
/// submitted to lane L always runs on lane L's thread, and two tasks on
/// the same lane never run concurrently or out of order — the shard/worker
/// affinity hc::cluster uses so one shard-host's drain stays on one lane
/// (the NUMA-pinning discipline of large-scale training runners, scaled
/// down to the simulation). Cross-lane tasks run concurrently.
///
/// Error discipline matches ThreadPool: the first exception any task
/// throws is captured and rethrown from drain() / check_error().
class AffinityExecutor {
 public:
  /// Starts `lanes` single-thread queues (>= 1). `queue_capacity` bounds
  /// each lane's queued tasks; submit() blocks when that lane is full.
  explicit AffinityExecutor(std::size_t lanes, std::size_t queue_capacity = 256);

  /// drain() + join (task errors swallowed — drain() first to observe).
  ~AffinityExecutor();

  AffinityExecutor(const AffinityExecutor&) = delete;
  AffinityExecutor& operator=(const AffinityExecutor&) = delete;

  /// Enqueues on lane `lane % lanes()`. FIFO within the lane.
  void submit(std::size_t lane, std::function<void()> task);

  /// Enqueues on the lane shard_by(key, lanes()) selects — the same key
  /// always lands on the same lane.
  void submit_keyed(std::string_view key, std::function<void()> task);

  /// Blocks until every lane is empty and idle, then rethrows the first
  /// captured task exception (clearing it).
  void drain();

  /// drain() + stop + join. Idempotent; task errors are not thrown here.
  void shutdown();

  /// Rethrows the first captured task exception, if any (clears it).
  void check_error();

  std::size_t lanes() const { return lanes_.size(); }

 private:
  struct Lane {
    std::mutex mu;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue;
    std::thread thread;
    bool active = false;     // a task is executing
    bool stopping = false;
  };

  void lane_loop(Lane& lane);
  void record_error();

  const std::size_t capacity_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::mutex error_mu_;
  std::exception_ptr first_error_;
  bool stopped_ = false;
};

/// Runs fn(0) ... fn(n-1) across `workers` threads (a temporary pool when
/// workers > 1, inline when workers <= 1 or n <= 1). Indices are handed
/// out dynamically, so uneven per-index cost still balances. Rethrows the
/// first exception any invocation raised; remaining indices may be skipped
/// once an error is recorded.
///
/// `grain` is the minimum chunk size: indices are handed out in contiguous
/// runs of `grain` (the last run may be shorter), so per-index bodies that
/// are cheap relative to an atomic fetch don't pay dispatch overhead once
/// per index. grain <= 1 keeps the historical index-at-a-time behaviour.
/// A worker runs its chunk's indices in ascending order, so loops whose
/// writes are disjoint per index stay deterministic for any grain.
void parallel_for(std::size_t n, std::size_t workers,
                  const std::function<void(std::size_t)>& fn, std::size_t grain = 1);

/// std::thread::hardware_concurrency() with a floor of 1.
std::size_t hardware_workers();

}  // namespace hc::exec
