#include "cache/multilevel.h"

namespace hc::cache {

CacheHierarchy::CacheHierarchy(std::vector<Tier> tiers, OriginFetch fetch_origin,
                               ClockPtr clock)
    : tiers_(std::move(tiers)),
      fetch_origin_(std::move(fetch_origin)),
      clock_(std::move(clock)) {}

void CacheHierarchy::bind_metrics(obs::MetricsPtr metrics) {
  metrics_ = std::move(metrics);
  for (auto& tier : tiers_) tier.cache->bind_metrics(metrics_, tier.name);
}

Result<LookupOutcome> CacheHierarchy::get(const std::string& key, SimTime ttl) {
  SimTime start = clock_->now();

  auto record = [&](const std::string& served_by, SimTime latency) {
    if (!metrics_) return;
    metrics_->observe("hc.cache.lookup_us", static_cast<double>(latency));
    metrics_->add("hc.cache.served." + served_by);
  };

  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    clock_->advance(tiers_[i].access_latency);
    auto entry = tiers_[i].cache->get(key);
    if (entry) {
      // Populate the tiers above the hit so subsequent reads stop earlier.
      for (std::size_t j = 0; j < i; ++j) {
        tiers_[j].cache->put(key, entry->value, ttl, entry->version);
      }
      SimTime latency = clock_->now() - start;
      record(tiers_[i].name, latency);
      return LookupOutcome{entry->value, tiers_[i].name, latency};
    }
  }

  auto fetched = fetch_origin_(key);
  if (!fetched.is_ok()) return fetched.status();
  for (auto& tier : tiers_) tier.cache->put(key, *fetched, ttl);
  SimTime latency = clock_->now() - start;
  record("origin", latency);
  return LookupOutcome{*fetched, "origin", latency};
}

void CacheHierarchy::put_through(const std::string& key, const Bytes& value,
                                 std::uint64_t version, SimTime ttl) {
  for (auto& tier : tiers_) tier.cache->put(key, value, ttl, version);
}

void CacheHierarchy::invalidate(const std::string& key) {
  for (auto& tier : tiers_) tier.cache->invalidate(key);
}

}  // namespace hc::cache
