#include "cache/cache.h"

namespace hc::cache {

Cache::Cache(std::size_t capacity, EvictionPolicy policy, ClockPtr clock)
    : capacity_(capacity), policy_(policy), clock_(std::move(clock)) {}

void Cache::bind_metrics(obs::MetricsPtr metrics, const std::string& name) {
  metrics_ = std::move(metrics);
  metric_prefix_ = "hc.cache." + name + ".";
}

void Cache::bump(const char* event) {
  if (metrics_) metrics_->add(metric_prefix_ + event);
}

bool Cache::expired(const CacheEntry& entry) const {
  return entry.expires_at != 0 && clock_->now() >= entry.expires_at;
}

void Cache::unlink(const std::string& key, Node& node) {
  (void)key;
  if (policy_ == EvictionPolicy::kLfu) {
    by_frequency_.erase(node.freq_it);
  } else {
    order_.erase(node.order_it);
  }
}

void Cache::touch(const std::string& key, Node& node) {
  switch (policy_) {
    case EvictionPolicy::kLru:
      order_.erase(node.order_it);
      node.order_it = order_.insert(order_.end(), key);
      break;
    case EvictionPolicy::kLfu:
      by_frequency_.erase(node.freq_it);
      ++node.frequency;
      node.freq_it = by_frequency_.emplace(node.frequency, key);
      break;
    case EvictionPolicy::kFifo:
      break;  // insertion order only
  }
}

void Cache::evict_one() {
  if (policy_ == EvictionPolicy::kLfu) {
    auto victim = by_frequency_.begin();
    entries_.erase(victim->second);
    by_frequency_.erase(victim);
  } else {
    entries_.erase(order_.front());
    order_.pop_front();
  }
  ++stats_.evictions;
  bump("evictions");
}

void Cache::put(const std::string& key, Bytes value, SimTime ttl,
                std::optional<std::uint64_t> version) {
  if (capacity_ == 0) return;

  SimTime expires_at = ttl == 0 ? 0 : clock_->now() + ttl;

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Node& node = it->second;
    std::uint64_t next_version = version.value_or(node.entry.version + 1);
    node.entry = CacheEntry{std::move(value), next_version, expires_at};
    touch(key, node);
    return;
  }

  if (entries_.size() >= capacity_) evict_one();

  Node node;
  node.entry = CacheEntry{std::move(value), version.value_or(1), expires_at};
  if (policy_ == EvictionPolicy::kLfu) {
    node.frequency = 1;
    node.freq_it = by_frequency_.emplace(1, key);
  } else {
    node.order_it = order_.insert(order_.end(), key);
  }
  entries_.emplace(key, std::move(node));
}

std::optional<CacheEntry> Cache::get(const std::string& key,
                                     std::optional<std::uint64_t> min_version) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    bump("misses");
    return std::nullopt;
  }

  Node& node = it->second;
  if (expired(node.entry)) {
    unlink(key, node);
    entries_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    bump("expirations");
    bump("misses");
    return std::nullopt;
  }
  if (min_version && node.entry.version < *min_version) {
    // Version-validation consistency: the cached copy is stale; drop it.
    unlink(key, node);
    entries_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    bump("invalidations");
    bump("misses");
    return std::nullopt;
  }

  touch(key, node);
  ++stats_.hits;
  bump("hits");
  return node.entry;
}

bool Cache::contains(const std::string& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && !expired(it->second.entry);
}

bool Cache::invalidate(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  unlink(key, it->second);
  entries_.erase(it);
  ++stats_.invalidations;
  bump("invalidations");
  return true;
}

void Cache::clear() {
  entries_.clear();
  order_.clear();
  by_frequency_.clear();
}

}  // namespace hc::cache
