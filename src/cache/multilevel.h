// Multi-level cache composition (Fig 4).
//
// "Our system employs caching at multiple levels and not just at the client
// level." A CacheHierarchy stacks tiers — e.g. client memory, cloud-server
// cache, knowledge-base cache — in front of an origin fetch. Each tier has
// an access latency charged on the shared SimClock; a get() probes tiers in
// order, falls through to the origin on a full miss, and populates every
// tier on the way back. Invalidation propagates to all tiers (the paper's
// cache-consistency requirement for mutable data).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace hc::cache {

struct Tier {
  std::string name;       // "client", "server", "kb-cache"
  Cache* cache = nullptr;  // not owned
  SimTime access_latency = 0;  // charged per probe of this tier
};

struct LookupOutcome {
  Bytes value;
  std::string served_by;  // tier name or "origin"
  SimTime latency = 0;    // total time charged for this lookup
};

class CacheHierarchy {
 public:
  /// `fetch_origin` is charged its own time internally (e.g. via SimNetwork)
  /// and returns the authoritative value.
  using OriginFetch = std::function<Result<Bytes>(const std::string& key)>;

  CacheHierarchy(std::vector<Tier> tiers, OriginFetch fetch_origin, ClockPtr clock);

  /// Probes tiers top-down; on a hit at tier i, populates tiers 0..i-1.
  /// On a full miss, fetches from the origin and populates all tiers.
  /// `ttl` applies to entries written on the way back.
  Result<LookupOutcome> get(const std::string& key, SimTime ttl = 0);

  /// Writes through: updates the origin is the caller's job; this updates
  /// every tier with the new value/version so readers see it immediately.
  void put_through(const std::string& key, const Bytes& value,
                   std::uint64_t version, SimTime ttl = 0);

  /// Removes the key from every tier.
  void invalidate(const std::string& key);

  std::size_t tier_count() const { return tiers_.size(); }
  const Tier& tier(std::size_t i) const { return tiers_.at(i); }

  /// Observability (nullable): records per-lookup latency into
  /// `hc.cache.lookup_us`, where each lookup was served from into
  /// `hc.cache.served.<tier|origin>`, and binds every tier's Cache to
  /// `hc.cache.<tier-name>.*` hit/miss/eviction counters.
  void bind_metrics(obs::MetricsPtr metrics);

 private:
  std::vector<Tier> tiers_;
  OriginFetch fetch_origin_;
  ClockPtr clock_;
  obs::MetricsPtr metrics_;  // may be null
};

}  // namespace hc::cache
