// In-memory cache with pluggable eviction, TTL expiry, and versioning.
//
// Section III: "Caching is a critically important feature for improving
// performance. Note that it takes place at multiple parts of the
// architecture, both at the clients and servers. Caching works best for
// data which do not change frequently. If the data are changing frequently,
// cache consistency algorithms need to be applied..."
//
// Consistency support here:
//   - entries carry a version; readers can demand a minimum version
//     (version-validation consistency),
//   - entries may carry a TTL after which they expire (bounded staleness),
//   - explicit invalidation for write-through/invalidate protocols
//     (used by the multi-level composition in multilevel.h).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "obs/metrics.h"

namespace hc::cache {

enum class EvictionPolicy { kLru, kLfu, kFifo };

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t expirations = 0;

  double hit_ratio() const {
    std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

struct CacheEntry {
  Bytes value;
  std::uint64_t version = 0;
  SimTime expires_at = 0;  // 0 = never
};

class Cache {
 public:
  /// `capacity` is the max entry count; zero capacity caches nothing but
  /// still counts misses (useful as a "caching disabled" baseline).
  Cache(std::size_t capacity, EvictionPolicy policy, ClockPtr clock);

  /// Inserts/overwrites. `ttl` of 0 means no expiry. Increments the entry
  /// version unless `version` is supplied explicitly.
  void put(const std::string& key, Bytes value, SimTime ttl = 0,
           std::optional<std::uint64_t> version = std::nullopt);

  /// Returns the entry if present, unexpired, and (when `min_version` is
  /// given) at least that fresh. Stale-but-present entries are evicted and
  /// counted as expirations/invalidations.
  std::optional<CacheEntry> get(const std::string& key,
                                std::optional<std::uint64_t> min_version = std::nullopt);

  /// Presence check that does not disturb recency/frequency bookkeeping.
  bool contains(const std::string& key) const;

  /// Removes one key (consistency protocol hook).
  bool invalidate(const std::string& key);

  /// Drops everything.
  void clear();

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  /// Mirrors hit/miss/eviction/invalidation/expiration counts into the
  /// registry under `hc.cache.<name>.<event>` (nullable, like LogPtr).
  void bind_metrics(obs::MetricsPtr metrics, const std::string& name);

 private:
  void bump(const char* event);

  struct Node {
    CacheEntry entry;
    std::list<std::string>::iterator order_it;          // LRU/FIFO position
    std::multimap<std::uint64_t, std::string>::iterator freq_it;  // LFU position
    std::uint64_t frequency = 0;
  };

  void evict_one();
  void touch(const std::string& key, Node& node);
  void unlink(const std::string& key, Node& node);
  bool expired(const CacheEntry& entry) const;

  std::size_t capacity_;
  EvictionPolicy policy_;
  ClockPtr clock_;
  std::map<std::string, Node> entries_;
  std::list<std::string> order_;  // front = next eviction candidate (LRU/FIFO)
  std::multimap<std::uint64_t, std::string> by_frequency_;  // LFU index
  CacheStats stats_;
  obs::MetricsPtr metrics_;     // may be null
  std::string metric_prefix_;   // "hc.cache.<name>."
};

}  // namespace hc::cache
