// External knowledge bases with local caching (Section III).
//
// "we make use of data from external databases and knowledge bases ...
// DBpedia, Wikidata, Yago ... DisGeNet, PubChem, DrugBank, SIDER ...
// We cache data from these knowledge bases locally. That way, data can be
// accessed and analyzed more quickly than if it needs to be fetched
// remotely. For the most up-to-date data, the remote knowledge bases can
// be directly queried."
//
// Each simulated KB is a keyed dataset behind a WAN-latency fetch; the hub
// fronts every KB with a local cache. query() goes through the cache;
// query_fresh() bypasses it (the "most up-to-date" path) and refreshes the
// cached copy. A tiny PubMed-style fact extractor covers the paper's "we
// perform text analysis on these papers to extract important scientific
// facts".
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace hc::services {

struct KnowledgeBaseConfig {
  std::string name;                       // "drugbank", "dbpedia", ...
  SimTime fetch_latency = 80 * kMillisecond;  // remote query cost
  std::size_t cache_capacity = 1024;
  SimTime cache_ttl = 0;  // 0 = entries never expire
};

struct KbLookup {
  std::string value;
  bool from_cache = false;
  SimTime latency = 0;
};

class KnowledgeHub {
 public:
  KnowledgeHub(ClockPtr clock);

  /// Creates a KB with the given dataset.
  void add_knowledge_base(const KnowledgeBaseConfig& config,
                          std::map<std::string, std::string> dataset);

  bool has_knowledge_base(const std::string& kb) const;

  /// Cached lookup: local hit costs ~nothing; miss pays the fetch latency
  /// and populates the cache.
  Result<KbLookup> query(const std::string& kb, const std::string& key);

  /// Direct remote query (always pays latency); refreshes the cache entry.
  Result<KbLookup> query_fresh(const std::string& kb, const std::string& key);

  /// Updates the remote dataset (the KB "changed upstream"); the cached
  /// copy becomes stale until invalidated, expired or refreshed — the
  /// consistency trade-off the paper describes.
  Status update_remote(const std::string& kb, const std::string& key,
                       const std::string& value);

  /// Drops the cached copy of one key.
  Status invalidate(const std::string& kb, const std::string& key);

  Result<cache::CacheStats> cache_stats(const std::string& kb) const;

 private:
  struct Kb {
    KnowledgeBaseConfig config;
    std::map<std::string, std::string> remote;
    std::unique_ptr<cache::Cache> cache;
  };

  Kb* find(const std::string& kb);
  const Kb* find(const std::string& kb) const;

  ClockPtr clock_;
  std::map<std::string, Kb> kbs_;
};

/// One extracted scientific fact: drug X is discussed with disease Y.
struct ExtractedFact {
  std::string drug;
  std::string disease;
  std::string paper_id;
};

/// Keyword co-occurrence extraction over PubMed-style abstracts: any known
/// drug appearing in the same abstract as a known disease yields a fact.
std::vector<ExtractedFact> extract_facts(
    const std::map<std::string, std::string>& abstracts_by_paper_id,
    const std::vector<std::string>& known_drugs,
    const std::vector<std::string>& known_diseases);

/// Builds the standard simulated KB set (drugbank/sider/pubchem/disgenet +
/// general KBs) with synthetic entries, for examples and benches.
void install_standard_knowledge_bases(KnowledgeHub& hub, Rng& rng,
                                      std::size_t entries_per_kb = 500);

}  // namespace hc::services
