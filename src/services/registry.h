// External AI/analytics service registry (Section III).
//
// "there are many external Web services which can be used to provide
// additional analytics ... The AI services from different providers offer
// similar functionality but are not identical. We provide users with a
// choice of services for similar functionality. In addition, we maintain
// information on the different services to allow users to pick the best
// ones. This information includes response times and availability ... For
// some of the services (e.g. text extraction), we have standard tests
// which we run to test the accuracy ... Users can also provide feedback."
//
// Each simulated service has a true latency distribution, availability and
// accuracy (which may drift). The registry learns response time and
// availability from observed invocations (EWMA), runs standard accuracy
// tests, stores user feedback, and picks the best service per category.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "fault/fault.h"
#include "fault/resilience.h"
#include "obs/metrics.h"

namespace hc::services {

/// Functionality categories the platform brokers.
enum class Category { kTextExtraction, kSpeechRecognition, kVisualRecognition,
                      kLanguageUnderstanding };

std::string_view category_name(Category c);

/// Ground-truth behaviour of a simulated external service. Mutable so
/// benches can drift latency/availability mid-run.
struct ServiceProfile {
  std::string name;       // "provider-a/nlu"
  Category category = Category::kTextExtraction;
  SimTime mean_latency = 50 * kMillisecond;
  SimTime latency_jitter = 10 * kMillisecond;
  double availability = 0.99;  // probability an invocation succeeds
  double accuracy = 0.9;       // probability of a correct answer
  /// Marginal cost of each additional request in a batched invocation,
  /// as a fraction of mean_latency (connection setup, auth, and transit
  /// amortize across the batch; only payload work scales).
  double batch_marginal = 0.25;
};

/// What the registry has learned about a service.
struct ServiceStats {
  double observed_latency_us = 0.0;  // EWMA
  double observed_availability = 1.0;  // EWMA of success indicator
  std::uint64_t invocations = 0;
  std::uint64_t failures = 0;
  double measured_accuracy = -1.0;  // last standard-test result; -1 = never run
  std::vector<int> feedback;        // user ratings 1..5
};

struct InvocationResult {
  Bytes response;
  SimTime latency = 0;
};

/// One coalesced call carrying several requests (see invoke_batch).
struct BatchInvocationResult {
  std::vector<Bytes> responses;  // one per request, in order
  SimTime latency = 0;           // total charged for the whole batch
};

/// invoke_best(): which provider ultimately answered and how many
/// candidates were tried before one did (1 = the top pick worked).
struct BrokeredInvocation {
  std::string service;
  InvocationResult result;
  int attempts = 1;
};

/// Selection criteria for ServiceRegistry::best_service().
struct SelectionCriteria {
  double latency_weight = 1.0;
  double availability_weight = 1.0;
  double accuracy_weight = 1.0;
};

class ServiceRegistry {
 public:
  ServiceRegistry(ClockPtr clock, Rng rng);

  void register_service(ServiceProfile profile);
  std::vector<std::string> services_in(Category category) const;

  /// Invokes a service: charges simulated latency, may fail per
  /// availability, updates learned stats. The response echoes the request
  /// (payload content is out of scope — brokering is what's modeled).
  /// With a fault injector bound, a crashed service host times out
  /// (kUnavailable after the latency charge) and injected delay rules
  /// stretch the observed latency. Every outcome feeds the service's
  /// circuit breaker.
  Result<InvocationResult> invoke(const std::string& service, const Bytes& request);

  /// Coalesced invocation (hc::sched adaptive batching): n requests ride
  /// one round trip. The batch is charged one full-latency draw plus
  /// batch_marginal * mean_latency for each additional request — strictly
  /// cheaper than n separate calls — and makes a single availability draw
  /// (the transport either delivers the batch or it doesn't). Stats count
  /// n invocations; the learned latency EWMA observes the per-item cost so
  /// batched and unbatched callers remain comparable in best_service().
  Result<BatchInvocationResult> invoke_batch(const std::string& service,
                                             const std::vector<Bytes>& requests);

  /// Failover brokering: tries services in `category` best-first, skipping
  /// any whose circuit breaker is open, until one answers. A dead provider
  /// therefore costs its timeout only until its breaker opens; after its
  /// host restarts, the cooldown's half-open probe folds it back in.
  Result<BrokeredInvocation> invoke_best(
      Category category, const Bytes& request,
      const SelectionCriteria& criteria = SelectionCriteria());

  /// Runs the standard accuracy test: n probe requests with known answers;
  /// records the measured fraction correct.
  Result<double> run_accuracy_test(const std::string& service, int probes = 50);

  /// Stores a 1-5 user rating. The paper cautions that feedback "may not
  /// be accurate" — it is surfaced but never used by best_service().
  Status record_feedback(const std::string& service, int rating);
  Result<double> average_feedback(const std::string& service) const;

  Result<ServiceStats> stats(const std::string& service) const;

  /// Picks the service in `category` minimizing normalized latency and
  /// maximizing availability/accuracy per the weights, routing around any
  /// whose circuit breaker is currently open (unless every candidate's
  /// is). Services never invoked rank by their defaults. kNotFound if the
  /// category is empty.
  Result<std::string> best_service(
      Category category, const SelectionCriteria& criteria = SelectionCriteria()) const;

  /// All candidates in `category`, best score first (selection order).
  std::vector<std::string> ranked_services(
      Category category, const SelectionCriteria& criteria = SelectionCriteria()) const;

  /// Testing/bench hook: mutate the true profile (latency drift, outages).
  Result<ServiceProfile*> mutable_profile(const std::string& service);

  // --- resilience wiring ---------------------------------------------------
  /// Chaos hook: service names are treated as hosts, so a scheduled crash
  /// makes invocations time out until the restart.
  void set_fault_injector(fault::FaultInjectorPtr injector) {
    injector_ = std::move(injector);
  }
  /// Breaker template for services registered *after* this call (name is
  /// filled per service).
  void set_breaker_config(fault::CircuitBreakerConfig config) {
    breaker_template_ = std::move(config);
  }
  void bind_metrics(obs::MetricsPtr metrics) { metrics_ = std::move(metrics); }

  fault::BreakerState breaker_state(const std::string& service) const;

 private:
  struct Entry {
    ServiceProfile profile;
    ServiceStats stats;
    std::unique_ptr<fault::CircuitBreaker> breaker;
  };

  ClockPtr clock_;
  mutable Rng rng_;
  fault::CircuitBreakerConfig breaker_template_;
  fault::FaultInjectorPtr injector_;  // may be null
  obs::MetricsPtr metrics_;           // may be null
  std::map<std::string, Entry> services_;
};

}  // namespace hc::services
