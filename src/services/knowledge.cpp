#include "services/knowledge.h"

#include <cctype>

namespace hc::services {

KnowledgeHub::KnowledgeHub(ClockPtr clock) : clock_(std::move(clock)) {}

void KnowledgeHub::add_knowledge_base(const KnowledgeBaseConfig& config,
                                      std::map<std::string, std::string> dataset) {
  Kb kb;
  kb.config = config;
  kb.remote = std::move(dataset);
  kb.cache = std::make_unique<cache::Cache>(config.cache_capacity,
                                            cache::EvictionPolicy::kLru, clock_);
  kbs_[config.name] = std::move(kb);
}

bool KnowledgeHub::has_knowledge_base(const std::string& kb) const {
  return kbs_.contains(kb);
}

KnowledgeHub::Kb* KnowledgeHub::find(const std::string& kb) {
  auto it = kbs_.find(kb);
  return it == kbs_.end() ? nullptr : &it->second;
}

const KnowledgeHub::Kb* KnowledgeHub::find(const std::string& kb) const {
  auto it = kbs_.find(kb);
  return it == kbs_.end() ? nullptr : &it->second;
}

Result<KbLookup> KnowledgeHub::query(const std::string& kb, const std::string& key) {
  Kb* entry = find(kb);
  if (!entry) return Status(StatusCode::kNotFound, "no knowledge base " + kb);

  SimTime start = clock_->now();
  if (auto cached = entry->cache->get(key)) {
    clock_->advance(10);  // local lookup cost
    return KbLookup{to_string(cached->value), true, clock_->now() - start};
  }
  return query_fresh(kb, key);
}

Result<KbLookup> KnowledgeHub::query_fresh(const std::string& kb,
                                           const std::string& key) {
  Kb* entry = find(kb);
  if (!entry) return Status(StatusCode::kNotFound, "no knowledge base " + kb);

  SimTime start = clock_->now();
  clock_->advance(entry->config.fetch_latency);
  auto remote = entry->remote.find(key);
  if (remote == entry->remote.end()) {
    return Status(StatusCode::kNotFound, kb + " has no entry for " + key);
  }
  entry->cache->put(key, to_bytes(remote->second), entry->config.cache_ttl);
  return KbLookup{remote->second, false, clock_->now() - start};
}

Status KnowledgeHub::update_remote(const std::string& kb, const std::string& key,
                                   const std::string& value) {
  Kb* entry = find(kb);
  if (!entry) return Status(StatusCode::kNotFound, "no knowledge base " + kb);
  entry->remote[key] = value;
  return Status::ok();
}

Status KnowledgeHub::invalidate(const std::string& kb, const std::string& key) {
  Kb* entry = find(kb);
  if (!entry) return Status(StatusCode::kNotFound, "no knowledge base " + kb);
  entry->cache->invalidate(key);
  return Status::ok();
}

Result<cache::CacheStats> KnowledgeHub::cache_stats(const std::string& kb) const {
  const Kb* entry = find(kb);
  if (!entry) return Status(StatusCode::kNotFound, "no knowledge base " + kb);
  return entry->cache->stats();
}

namespace {
std::string to_lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}
}  // namespace

std::vector<ExtractedFact> extract_facts(
    const std::map<std::string, std::string>& abstracts_by_paper_id,
    const std::vector<std::string>& known_drugs,
    const std::vector<std::string>& known_diseases) {
  std::vector<ExtractedFact> facts;
  for (const auto& [paper_id, abstract] : abstracts_by_paper_id) {
    std::string text = to_lower(abstract);
    for (const auto& drug : known_drugs) {
      if (text.find(to_lower(drug)) == std::string::npos) continue;
      for (const auto& disease : known_diseases) {
        if (text.find(to_lower(disease)) == std::string::npos) continue;
        facts.push_back(ExtractedFact{drug, disease, paper_id});
      }
    }
  }
  return facts;
}

void install_standard_knowledge_bases(KnowledgeHub& hub, Rng& rng,
                                      std::size_t entries_per_kb) {
  struct Spec {
    const char* name;
    const char* key_prefix;
    const char* value_prefix;
    SimTime latency;
  };
  const Spec specs[] = {
      {"drugbank", "drug-", "targets:", 90 * kMillisecond},
      {"sider", "drug-", "side-effects:", 70 * kMillisecond},
      {"pubchem", "compound-", "structure:", 110 * kMillisecond},
      {"disgenet", "gene-", "diseases:", 80 * kMillisecond},
      {"dbpedia", "entity-", "abstract:", 60 * kMillisecond},
      {"wikidata", "entity-", "claims:", 65 * kMillisecond},
      {"wordnet", "word-", "synsets:", 40 * kMillisecond},
  };
  for (const auto& spec : specs) {
    std::map<std::string, std::string> dataset;
    for (std::size_t i = 0; i < entries_per_kb; ++i) {
      dataset[spec.key_prefix + std::to_string(i)] =
          spec.value_prefix + std::to_string(rng.uniform_int(0, 1 << 20));
    }
    KnowledgeBaseConfig config;
    config.name = spec.name;
    config.fetch_latency = spec.latency;
    config.cache_capacity = entries_per_kb / 4;  // deliberate pressure
    hub.add_knowledge_base(config, std::move(dataset));
  }
}

}  // namespace hc::services
