#include "services/registry.h"

#include <algorithm>
#include <limits>

namespace hc::services {

namespace {
constexpr double kEwmaAlpha = 0.2;
}

std::string_view category_name(Category c) {
  switch (c) {
    case Category::kTextExtraction: return "text-extraction";
    case Category::kSpeechRecognition: return "speech-recognition";
    case Category::kVisualRecognition: return "visual-recognition";
    case Category::kLanguageUnderstanding: return "language-understanding";
  }
  return "unknown";
}

ServiceRegistry::ServiceRegistry(ClockPtr clock, Rng rng)
    : clock_(std::move(clock)), rng_(rng) {}

void ServiceRegistry::register_service(ServiceProfile profile) {
  Entry entry;
  entry.stats.observed_latency_us = static_cast<double>(profile.mean_latency);
  entry.stats.observed_availability = profile.availability;
  entry.profile = std::move(profile);
  services_[entry.profile.name] = std::move(entry);
}

std::vector<std::string> ServiceRegistry::services_in(Category category) const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : services_) {
    if (entry.profile.category == category) names.push_back(name);
  }
  return names;
}

Result<InvocationResult> ServiceRegistry::invoke(const std::string& service,
                                                 const Bytes& request) {
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Status(StatusCode::kNotFound, "no such service: " + service);
  }
  Entry& entry = it->second;

  SimTime latency = entry.profile.mean_latency;
  if (entry.profile.latency_jitter > 0) {
    latency += rng_.uniform_int(0, entry.profile.latency_jitter);
  }
  clock_->advance(latency);

  ++entry.stats.invocations;
  bool available = rng_.bernoulli(entry.profile.availability);
  entry.stats.observed_availability =
      (1 - kEwmaAlpha) * entry.stats.observed_availability +
      kEwmaAlpha * (available ? 1.0 : 0.0);
  entry.stats.observed_latency_us = (1 - kEwmaAlpha) * entry.stats.observed_latency_us +
                                    kEwmaAlpha * static_cast<double>(latency);

  if (!available) {
    ++entry.stats.failures;
    return Status(StatusCode::kUnavailable, service + " failed to respond");
  }

  InvocationResult result;
  result.latency = latency;
  result.response = to_bytes("echo:" + to_string(request));
  return result;
}

Result<double> ServiceRegistry::run_accuracy_test(const std::string& service,
                                                  int probes) {
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Status(StatusCode::kNotFound, "no such service: " + service);
  }
  if (probes <= 0) return Status(StatusCode::kInvalidArgument, "probes must be positive");

  int correct = 0;
  for (int i = 0; i < probes; ++i) {
    // Each probe is an invocation with a known answer; unavailable counts
    // as incorrect (the test measures usable accuracy).
    auto response = invoke(service, to_bytes("probe-" + std::to_string(i)));
    if (response.is_ok() && rng_.bernoulli(it->second.profile.accuracy)) ++correct;
  }
  double measured = static_cast<double>(correct) / static_cast<double>(probes);
  it->second.stats.measured_accuracy = measured;
  return measured;
}

Status ServiceRegistry::record_feedback(const std::string& service, int rating) {
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Status(StatusCode::kNotFound, "no such service: " + service);
  }
  if (rating < 1 || rating > 5) {
    return Status(StatusCode::kInvalidArgument, "rating must be in 1..5");
  }
  it->second.stats.feedback.push_back(rating);
  return Status::ok();
}

Result<double> ServiceRegistry::average_feedback(const std::string& service) const {
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Status(StatusCode::kNotFound, "no such service: " + service);
  }
  const auto& feedback = it->second.stats.feedback;
  if (feedback.empty()) {
    return Status(StatusCode::kNotFound, "no feedback recorded for " + service);
  }
  double sum = 0;
  for (int rating : feedback) sum += rating;
  return sum / static_cast<double>(feedback.size());
}

Result<ServiceStats> ServiceRegistry::stats(const std::string& service) const {
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Status(StatusCode::kNotFound, "no such service: " + service);
  }
  return it->second.stats;
}

Result<std::string> ServiceRegistry::best_service(Category category,
                                                  const SelectionCriteria& criteria) const {
  // Normalize latency by the slowest candidate so weights are comparable.
  double max_latency = 0.0;
  for (const auto& [name, entry] : services_) {
    if (entry.profile.category == category) {
      max_latency = std::max(max_latency, entry.stats.observed_latency_us);
    }
  }

  std::string best;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const auto& [name, entry] : services_) {
    if (entry.profile.category != category) continue;
    double latency_term = max_latency > 0
                              ? 1.0 - entry.stats.observed_latency_us / max_latency
                              : 1.0;
    double accuracy_term = entry.stats.measured_accuracy >= 0
                               ? entry.stats.measured_accuracy
                               : entry.profile.accuracy;
    double score = criteria.latency_weight * latency_term +
                   criteria.availability_weight * entry.stats.observed_availability +
                   criteria.accuracy_weight * accuracy_term;
    if (score > best_score) {
      best_score = score;
      best = name;
    }
  }
  if (best.empty()) {
    return Status(StatusCode::kNotFound,
                  std::string("no services in category ") +
                      std::string(category_name(category)));
  }
  return best;
}

Result<ServiceProfile*> ServiceRegistry::mutable_profile(const std::string& service) {
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Status(StatusCode::kNotFound, "no such service: " + service);
  }
  return &it->second.profile;
}

}  // namespace hc::services
