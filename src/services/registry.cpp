#include "services/registry.h"

#include <algorithm>
#include <limits>

namespace hc::services {

namespace {
constexpr double kEwmaAlpha = 0.2;
}

std::string_view category_name(Category c) {
  switch (c) {
    case Category::kTextExtraction: return "text-extraction";
    case Category::kSpeechRecognition: return "speech-recognition";
    case Category::kVisualRecognition: return "visual-recognition";
    case Category::kLanguageUnderstanding: return "language-understanding";
  }
  return "unknown";
}

ServiceRegistry::ServiceRegistry(ClockPtr clock, Rng rng)
    : clock_(std::move(clock)), rng_(rng) {}

void ServiceRegistry::register_service(ServiceProfile profile) {
  Entry entry;
  entry.stats.observed_latency_us = static_cast<double>(profile.mean_latency);
  entry.stats.observed_availability = profile.availability;
  entry.profile = std::move(profile);
  fault::CircuitBreakerConfig breaker_config = breaker_template_;
  breaker_config.name = "service." + entry.profile.name;
  entry.breaker = std::make_unique<fault::CircuitBreaker>(
      std::move(breaker_config), clock_, metrics_);
  services_[entry.profile.name] = std::move(entry);
}

std::vector<std::string> ServiceRegistry::services_in(Category category) const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : services_) {
    if (entry.profile.category == category) names.push_back(name);
  }
  return names;
}

Result<InvocationResult> ServiceRegistry::invoke(const std::string& service,
                                                 const Bytes& request) {
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Status(StatusCode::kNotFound, "no such service: " + service);
  }
  Entry& entry = it->second;

  SimTime latency = entry.profile.mean_latency;
  if (entry.profile.latency_jitter > 0) {
    latency += rng_.uniform_int(0, entry.profile.latency_jitter);
  }

  // Chaos: injected delay rules stretch the call; a crashed host means the
  // broker waits out the full call before concluding the service is dead.
  bool host_down = false;
  if (injector_) {
    fault::FaultDecision decision = injector_->on_message("broker", service);
    latency += decision.extra_delay;
    host_down = injector_->host_down(service) || decision.drop;
  }
  clock_->advance(latency);

  ++entry.stats.invocations;
  bool available = !host_down && rng_.bernoulli(entry.profile.availability);
  entry.stats.observed_availability =
      (1 - kEwmaAlpha) * entry.stats.observed_availability +
      kEwmaAlpha * (available ? 1.0 : 0.0);
  entry.stats.observed_latency_us = (1 - kEwmaAlpha) * entry.stats.observed_latency_us +
                                    kEwmaAlpha * static_cast<double>(latency);

  if (!available) {
    ++entry.stats.failures;
    entry.breaker->record_failure();
    if (metrics_) metrics_->add("hc.services.invoke_failures");
    return Status(StatusCode::kUnavailable,
                  host_down ? service + " host is down"
                            : service + " failed to respond");
  }

  entry.breaker->record_success();
  InvocationResult result;
  result.latency = latency;
  result.response = to_bytes("echo:" + to_string(request));
  return result;
}

Result<BatchInvocationResult> ServiceRegistry::invoke_batch(
    const std::string& service, const std::vector<Bytes>& requests) {
  if (requests.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty batch for " + service);
  }
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Status(StatusCode::kNotFound, "no such service: " + service);
  }
  Entry& entry = it->second;
  const std::size_t n = requests.size();

  // One full-latency draw for the round trip, marginal cost per extra item.
  SimTime latency = entry.profile.mean_latency;
  if (entry.profile.latency_jitter > 0) {
    latency += rng_.uniform_int(0, entry.profile.latency_jitter);
  }
  latency += static_cast<SimTime>(
      static_cast<double>(n - 1) * entry.profile.batch_marginal *
      static_cast<double>(entry.profile.mean_latency));

  // One transport: the injector and the availability draw apply to the
  // whole batch, not per item.
  bool host_down = false;
  if (injector_) {
    fault::FaultDecision decision = injector_->on_message("broker", service);
    latency += decision.extra_delay;
    host_down = injector_->host_down(service) || decision.drop;
  }
  clock_->advance(latency);

  entry.stats.invocations += n;
  bool available = !host_down && rng_.bernoulli(entry.profile.availability);
  double per_item = static_cast<double>(latency) / static_cast<double>(n);
  entry.stats.observed_availability =
      (1 - kEwmaAlpha) * entry.stats.observed_availability +
      kEwmaAlpha * (available ? 1.0 : 0.0);
  entry.stats.observed_latency_us =
      (1 - kEwmaAlpha) * entry.stats.observed_latency_us + kEwmaAlpha * per_item;

  if (metrics_) {
    metrics_->add("hc.services.batch.calls");
    metrics_->add("hc.services.batch.items", n);
  }

  if (!available) {
    entry.stats.failures += n;
    entry.breaker->record_failure();
    if (metrics_) metrics_->add("hc.services.invoke_failures");
    return Status(StatusCode::kUnavailable,
                  host_down ? service + " host is down"
                            : service + " failed to respond");
  }

  entry.breaker->record_success();
  BatchInvocationResult result;
  result.latency = latency;
  result.responses.reserve(n);
  for (const Bytes& request : requests) {
    result.responses.push_back(to_bytes("echo:" + to_string(request)));
  }
  return result;
}

Result<BrokeredInvocation> ServiceRegistry::invoke_best(
    Category category, const Bytes& request, const SelectionCriteria& criteria) {
  std::vector<std::string> ranked = ranked_services(category, criteria);
  if (ranked.empty()) {
    return Status(StatusCode::kNotFound,
                  std::string("no services in category ") +
                      std::string(category_name(category)));
  }
  Status last(StatusCode::kUnavailable, "all services in category unavailable");
  int attempts = 0;
  for (const std::string& candidate : ranked) {
    // An open breaker is a known-dead provider: don't spend a timeout on
    // it. (Half-open passes — that probe is how recovery is discovered.)
    if (services_.at(candidate).breaker->state() == fault::BreakerState::kOpen) {
      continue;
    }
    ++attempts;
    auto result = invoke(candidate, request);
    if (result.is_ok()) {
      if (metrics_ && attempts > 1) metrics_->add("hc.services.failovers");
      return BrokeredInvocation{candidate, *std::move(result), attempts};
    }
    last = result.status();
  }
  if (metrics_) metrics_->add("hc.services.brokered_failures");
  return last;
}

Result<double> ServiceRegistry::run_accuracy_test(const std::string& service,
                                                  int probes) {
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Status(StatusCode::kNotFound, "no such service: " + service);
  }
  if (probes <= 0) return Status(StatusCode::kInvalidArgument, "probes must be positive");

  int correct = 0;
  for (int i = 0; i < probes; ++i) {
    // Each probe is an invocation with a known answer; unavailable counts
    // as incorrect (the test measures usable accuracy).
    auto response = invoke(service, to_bytes("probe-" + std::to_string(i)));
    if (response.is_ok() && rng_.bernoulli(it->second.profile.accuracy)) ++correct;
  }
  double measured = static_cast<double>(correct) / static_cast<double>(probes);
  it->second.stats.measured_accuracy = measured;
  return measured;
}

Status ServiceRegistry::record_feedback(const std::string& service, int rating) {
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Status(StatusCode::kNotFound, "no such service: " + service);
  }
  if (rating < 1 || rating > 5) {
    return Status(StatusCode::kInvalidArgument, "rating must be in 1..5");
  }
  it->second.stats.feedback.push_back(rating);
  return Status::ok();
}

Result<double> ServiceRegistry::average_feedback(const std::string& service) const {
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Status(StatusCode::kNotFound, "no such service: " + service);
  }
  const auto& feedback = it->second.stats.feedback;
  if (feedback.empty()) {
    return Status(StatusCode::kNotFound, "no feedback recorded for " + service);
  }
  double sum = 0;
  for (int rating : feedback) sum += rating;
  return sum / static_cast<double>(feedback.size());
}

Result<ServiceStats> ServiceRegistry::stats(const std::string& service) const {
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Status(StatusCode::kNotFound, "no such service: " + service);
  }
  return it->second.stats;
}

std::vector<std::string> ServiceRegistry::ranked_services(
    Category category, const SelectionCriteria& criteria) const {
  // Normalize latency by the slowest candidate so weights are comparable.
  double max_latency = 0.0;
  for (const auto& [name, entry] : services_) {
    if (entry.profile.category == category) {
      max_latency = std::max(max_latency, entry.stats.observed_latency_us);
    }
  }

  std::vector<std::pair<double, std::string>> scored;
  for (const auto& [name, entry] : services_) {
    if (entry.profile.category != category) continue;
    double latency_term = max_latency > 0
                              ? 1.0 - entry.stats.observed_latency_us / max_latency
                              : 1.0;
    double accuracy_term = entry.stats.measured_accuracy >= 0
                               ? entry.stats.measured_accuracy
                               : entry.profile.accuracy;
    double score = criteria.latency_weight * latency_term +
                   criteria.availability_weight * entry.stats.observed_availability +
                   criteria.accuracy_weight * accuracy_term;
    scored.emplace_back(score, name);
  }
  // Stable sort keeps name order on score ties (services_ iterates sorted
  // by name), matching the historical pick.
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> ranked;
  ranked.reserve(scored.size());
  for (auto& [score, name] : scored) ranked.push_back(std::move(name));
  return ranked;
}

Result<std::string> ServiceRegistry::best_service(Category category,
                                                  const SelectionCriteria& criteria) const {
  std::vector<std::string> ranked = ranked_services(category, criteria);
  if (ranked.empty()) {
    return Status(StatusCode::kNotFound,
                  std::string("no services in category ") +
                      std::string(category_name(category)));
  }
  for (const std::string& candidate : ranked) {
    if (services_.at(candidate).breaker->state() != fault::BreakerState::kOpen) {
      return candidate;
    }
  }
  // Every breaker is open: degrade to the best-scored pick rather than
  // refusing outright (the caller's invocation becomes the probe).
  return ranked.front();
}

fault::BreakerState ServiceRegistry::breaker_state(const std::string& service) const {
  auto it = services_.find(service);
  return it == services_.end() ? fault::BreakerState::kClosed
                               : it->second.breaker->state();
}

Result<ServiceProfile*> ServiceRegistry::mutable_profile(const std::string& service) {
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Status(StatusCode::kNotFound, "no such service: " + service);
  }
  return &it->second.profile;
}

}  // namespace hc::services
