// Back-end storage: the Data Lake and metadata store (Section II.B).
//
// De-identified records land in the Data Lake "with a reference-id, and the
// reference-id to identity mapping is stored in the metadata". The lake
// stores only ciphertext — every object is encrypted at rest under a key
// held in the KMS, so a storage breach without key access yields nothing
// (Section IV.B.1). Both original and anonymized versions of an object may
// be stored, each encrypted.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/id.h"
#include "common/rng.h"
#include "common/status.h"
#include "crypto/kms.h"

namespace hc::storage {

/// Metadata kept outside the encrypted payload. The identity mapping
/// (reference id -> pseudonym/patient linkage) lives here, separate from
/// the lake, so access to one does not imply access to the other.
struct RecordMetadata {
  std::string reference_id;
  std::string pseudonym;        // de-identified patient handle
  std::string consent_group;    // study/program the data is consented to
  std::string schema;           // e.g. "fhir-bundle"
  std::string privacy_level;    // "identified" | "de-identified" | "anonymized"
  Bytes content_hash;           // sha256 of the plaintext (integrity metadata)
  std::uint32_t key_version = 1;
  /// Section IV.B.1: "Both the original and anonymized versions of data
  /// objects are encrypted and stored." Lake reference of the encrypted
  /// *original* (identified) bundle; empty if the original was not kept.
  std::string original_reference_id;
};

/// Thread-safe via sharded locks keyed by reference id (exec::shard_by),
/// so parallel ingestion workers storing unrelated records never contend.
/// Scan queries (by_pseudonym / by_group) visit every shard and return
/// results sorted by reference id — the same order the unsharded map gave.
class MetadataStore {
 public:
  Status put(const RecordMetadata& metadata);
  Result<RecordMetadata> get(const std::string& reference_id) const;
  Status erase(const std::string& reference_id);

  /// All records for a pseudonym (supports GDPR per-patient deletion).
  std::vector<RecordMetadata> by_pseudonym(const std::string& pseudonym) const;
  /// All records consented to a group (export service).
  std::vector<RecordMetadata> by_group(const std::string& group) const;
  /// Every record, sorted by reference id (checkpoint capture).
  std::vector<RecordMetadata> all() const;

  std::size_t size() const;

  static constexpr std::size_t kShardCount = 16;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, RecordMetadata> records;
  };

  Shard& shard_for(const std::string& reference_id);
  const Shard& shard_for(const std::string& reference_id) const;

  std::array<Shard, kShardCount> shards_;
};

/// Encrypted object store. Objects are written under a KMS key id; the lake
/// itself never sees plaintext of records whose key it is not given — the
/// caller provides the principal, and key fetches go through KMS access
/// control.
///
/// Thread-safe via sharded locks keyed by reference id. Reference-id
/// generation and the IV stream share one small mutex; each put() forks a
/// private Rng under that lock, so AES encryption itself runs outside any
/// lock and parallel writers only serialize for microseconds.
class DataLake {
 public:
  /// `principal` is the identity the lake acts as when touching the KMS.
  /// `id_seed` selects the reference-id uuid stream; the default keeps the
  /// historical sequence. Sharded deployments (hc::cluster) must give each
  /// partition a distinct seed — two lakes on the same seed mint identical
  /// "ref-<uuid>" sequences, and replication between them collides.
  DataLake(crypto::KeyManagementService& kms, std::string principal, Rng rng,
           std::uint64_t id_seed = 0x1d5eed);

  /// Encrypts and stores; returns the reference id.
  Result<std::string> put(const Bytes& plaintext, const crypto::KeyId& key_id);

  /// Fetches and decrypts. kDataLoss if the key was shredded (the
  /// crypto-shredding deletion path), kNotFound for unknown ids.
  Result<Bytes> get(const std::string& reference_id) const;

  /// Removes the ciphertext itself (secure deletion of the blob).
  Status erase(const std::string& reference_id);

  bool contains(const std::string& reference_id) const;
  std::size_t object_count() const;
  std::uint64_t stored_bytes() const {
    return stored_bytes_.load(std::memory_order_relaxed);
  }

  /// Testing hook: corrupt a stored ciphertext (insider-tamper tests).
  Status tamper_for_test(const std::string& reference_id);

  // --- replication support (HA/DR service, Section II.B) -----------------
  /// An object as it travels between replicas: ciphertext only — the
  /// storage layer never decrypts to replicate.
  struct SealedObject {
    crypto::KeyId key_id;
    std::uint32_t key_version = 1;
    Bytes ciphertext;
    Bytes tag;
  };

  Result<SealedObject> export_object(const std::string& reference_id) const;

  /// Installs a sealed object under an explicit reference (idempotent:
  /// re-import of an existing reference is kAlreadyExists).
  Status import_object(const std::string& reference_id, SealedObject object);

  /// All stored reference ids (anti-entropy enumeration).
  std::vector<std::string> references() const;

  static constexpr std::size_t kShardCount = 16;

 private:
  struct StoredObject {
    crypto::KeyId key_id;
    std::uint32_t key_version = 1;  // rotation-safe: decrypt with the
                                    // version that encrypted the object
    Bytes ciphertext;
    Bytes tag;  // encrypt-then-MAC integrity tag
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, StoredObject> objects;
  };

  Shard& shard_for(const std::string& reference_id);
  const Shard& shard_for(const std::string& reference_id) const;

  crypto::KeyManagementService* kms_;
  std::string principal_;
  mutable std::mutex gen_mu_;  // guards rng_ + ids_
  mutable Rng rng_;
  IdGenerator ids_;
  std::array<Shard, kShardCount> shards_;
  std::atomic<std::uint64_t> stored_bytes_{0};
};

}  // namespace hc::storage
