#include "storage/replication.h"

#include <set>
#include <stdexcept>

namespace hc::storage {

ReplicatedDataLake::ReplicatedDataLake(std::vector<DataLake*> replicas,
                                       std::size_t write_quorum)
    : replicas_(std::move(replicas)),
      available_(replicas_.size(), true),
      write_quorum_(write_quorum) {
  if (replicas_.empty()) {
    throw std::invalid_argument("ReplicatedDataLake needs at least one replica");
  }
  if (write_quorum_ == 0) write_quorum_ = replicas_.size() / 2 + 1;
  if (write_quorum_ > replicas_.size()) {
    throw std::invalid_argument("write quorum exceeds replica count");
  }
}

bool ReplicatedDataLake::replica_available(std::size_t index) const {
  if (!available_.at(index)) return false;
  if (resilience_.injector && index < resilience_.replica_hosts.size() &&
      resilience_.injector->host_down(resilience_.replica_hosts[index])) {
    return false;
  }
  return true;
}

void ReplicatedDataLake::bind_resilience(ReplicationResilience resilience) {
  if (!resilience.clock) {
    throw std::invalid_argument("ReplicationResilience needs a clock");
  }
  retry_rng_ = Rng(resilience.jitter_seed);
  resilience_ = std::move(resilience);
}

Result<std::string> ReplicatedDataLake::put(const Bytes& plaintext,
                                            const crypto::KeyId& key_id) {
  if (!resilience_.clock) return put_once(plaintext, key_id);
  // Quorum failures are transient when replicas crash and restart on a
  // schedule: back off on the shared clock and try the whole write again.
  return fault::with_retry(
      resilience_.retry, *resilience_.clock, retry_rng_,
      [&] { return put_once(plaintext, key_id); },
      resilience_.metrics.get(), "hc.storage.replication.put");
}

Result<std::string> ReplicatedDataLake::put_once(const Bytes& plaintext,
                                                 const crypto::KeyId& key_id) {
  // Encrypt on the first live replica; fan the ciphertext out to the rest.
  std::size_t primary = replicas_.size();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replica_available(i)) {
      primary = i;
      break;
    }
  }
  if (primary == replicas_.size()) {
    return Status(StatusCode::kUnavailable, "no replica available");
  }

  auto reference = replicas_[primary]->put(plaintext, key_id);
  if (!reference.is_ok()) return reference;
  auto sealed = replicas_[primary]->export_object(*reference);
  if (!sealed.is_ok()) return sealed.status();

  std::size_t copies = 1;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == primary || !replica_available(i)) continue;
    if (replicas_[i]->import_object(*reference, *sealed).is_ok()) ++copies;
  }
  if (copies < write_quorum_) {
    // Roll back so a failed write leaves no partial copies behind.
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (replica_available(i)) (void)replicas_[i]->erase(*reference);
    }
    return Status(StatusCode::kUnavailable,
                  "write quorum not met: " + std::to_string(copies) + "/" +
                      std::to_string(write_quorum_));
  }
  return reference;
}

Result<Bytes> ReplicatedDataLake::get(const std::string& reference_id) const {
  Status last(StatusCode::kNotFound, "no object " + reference_id);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!replica_available(i)) continue;
    auto read = replicas_[i]->get(reference_id);
    if (read.is_ok()) return read;
    last = read.status();  // corrupted/missing here -> fail over
  }
  return last;
}

Status ReplicatedDataLake::erase(const std::string& reference_id) {
  bool erased_any = false;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!replica_available(i)) continue;
    if (replicas_[i]->erase(reference_id).is_ok()) erased_any = true;
  }
  return erased_any ? Status::ok()
                    : Status(StatusCode::kNotFound, "no object " + reference_id);
}

std::size_t ReplicatedDataLake::repair() {
  // Union of references across live replicas.
  std::set<std::string> all_refs;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!replica_available(i)) continue;
    for (auto& ref : replicas_[i]->references()) all_refs.insert(std::move(ref));
  }

  std::size_t installed = 0;
  for (const auto& ref : all_refs) {
    // Find a live holder.
    Result<DataLake::SealedObject> sealed =
        Status(StatusCode::kNotFound, "no holder");
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!replica_available(i)) continue;
      sealed = replicas_[i]->export_object(ref);
      if (sealed.is_ok()) break;
    }
    if (!sealed.is_ok()) continue;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!replica_available(i) || replicas_[i]->contains(ref)) continue;
      if (replicas_[i]->import_object(ref, *sealed).is_ok()) ++installed;
    }
  }
  return installed;
}

std::size_t ReplicatedDataLake::copies_of(const std::string& reference_id) const {
  std::size_t copies = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replica_available(i) && replicas_[i]->contains(reference_id)) ++copies;
  }
  return copies;
}

}  // namespace hc::storage
