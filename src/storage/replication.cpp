#include "storage/replication.h"

#include <set>
#include <stdexcept>

namespace hc::storage {

ReplicatedDataLake::ReplicatedDataLake(std::vector<DataLake*> replicas,
                                       std::size_t write_quorum)
    : replicas_(std::move(replicas)),
      available_(replicas_.size(), true),
      write_quorum_(write_quorum) {
  if (replicas_.empty()) {
    throw std::invalid_argument("ReplicatedDataLake needs at least one replica");
  }
  if (write_quorum_ == 0) write_quorum_ = replicas_.size() / 2 + 1;
  if (write_quorum_ > replicas_.size()) {
    throw std::invalid_argument("write quorum exceeds replica count");
  }
}

Result<std::string> ReplicatedDataLake::put(const Bytes& plaintext,
                                            const crypto::KeyId& key_id) {
  // Encrypt on the first live replica; fan the ciphertext out to the rest.
  std::size_t primary = replicas_.size();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (available_[i]) {
      primary = i;
      break;
    }
  }
  if (primary == replicas_.size()) {
    return Status(StatusCode::kUnavailable, "no replica available");
  }

  auto reference = replicas_[primary]->put(plaintext, key_id);
  if (!reference.is_ok()) return reference;
  auto sealed = replicas_[primary]->export_object(*reference);
  if (!sealed.is_ok()) return sealed.status();

  std::size_t copies = 1;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == primary || !available_[i]) continue;
    if (replicas_[i]->import_object(*reference, *sealed).is_ok()) ++copies;
  }
  if (copies < write_quorum_) {
    // Roll back so a failed write leaves no partial copies behind.
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (available_[i]) (void)replicas_[i]->erase(*reference);
    }
    return Status(StatusCode::kUnavailable,
                  "write quorum not met: " + std::to_string(copies) + "/" +
                      std::to_string(write_quorum_));
  }
  return reference;
}

Result<Bytes> ReplicatedDataLake::get(const std::string& reference_id) const {
  Status last(StatusCode::kNotFound, "no object " + reference_id);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!available_[i]) continue;
    auto read = replicas_[i]->get(reference_id);
    if (read.is_ok()) return read;
    last = read.status();  // corrupted/missing here -> fail over
  }
  return last;
}

Status ReplicatedDataLake::erase(const std::string& reference_id) {
  bool erased_any = false;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!available_[i]) continue;
    if (replicas_[i]->erase(reference_id).is_ok()) erased_any = true;
  }
  return erased_any ? Status::ok()
                    : Status(StatusCode::kNotFound, "no object " + reference_id);
}

std::size_t ReplicatedDataLake::repair() {
  // Union of references across live replicas.
  std::set<std::string> all_refs;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!available_[i]) continue;
    for (auto& ref : replicas_[i]->references()) all_refs.insert(std::move(ref));
  }

  std::size_t installed = 0;
  for (const auto& ref : all_refs) {
    // Find a live holder.
    Result<DataLake::SealedObject> sealed =
        Status(StatusCode::kNotFound, "no holder");
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!available_[i]) continue;
      sealed = replicas_[i]->export_object(ref);
      if (sealed.is_ok()) break;
    }
    if (!sealed.is_ok()) continue;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!available_[i] || replicas_[i]->contains(ref)) continue;
      if (replicas_[i]->import_object(ref, *sealed).is_ok()) ++installed;
    }
  }
  return installed;
}

std::size_t ReplicatedDataLake::copies_of(const std::string& reference_id) const {
  std::size_t copies = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (available_[i] && replicas_[i]->contains(reference_id)) ++copies;
  }
  return copies;
}

}  // namespace hc::storage
