#include "storage/staging.h"

namespace hc::storage {

Status StagingArea::put(const std::string& upload_id, Bytes encrypted_blob) {
  std::lock_guard lock(mu_);
  if (blobs_.contains(upload_id)) {
    return Status(StatusCode::kAlreadyExists, "upload id reused: " + upload_id);
  }
  blobs_.emplace(upload_id, std::move(encrypted_blob));
  return Status::ok();
}

Result<Bytes> StagingArea::get(const std::string& upload_id) const {
  std::lock_guard lock(mu_);
  auto it = blobs_.find(upload_id);
  if (it == blobs_.end()) {
    return Status(StatusCode::kNotFound, "no staged upload " + upload_id);
  }
  return it->second;
}

Status StagingArea::remove(const std::string& upload_id) {
  std::lock_guard lock(mu_);
  auto it = blobs_.find(upload_id);
  if (it == blobs_.end()) {
    return Status(StatusCode::kNotFound, "no staged upload " + upload_id);
  }
  secure_wipe(it->second);
  blobs_.erase(it);
  return Status::ok();
}

std::size_t StagingArea::size() const {
  std::lock_guard lock(mu_);
  return blobs_.size();
}

void MessageQueue::push(IngestionMessage message) {
  std::lock_guard lock(mu_);
  queue_.push_back(std::move(message));
}

std::optional<IngestionMessage> MessageQueue::pop() {
  std::lock_guard lock(mu_);
  if (queue_.empty()) return std::nullopt;
  IngestionMessage msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

std::vector<IngestionMessage> MessageQueue::pop_batch(std::size_t max_messages) {
  std::lock_guard lock(mu_);
  std::vector<IngestionMessage> batch;
  batch.reserve(std::min(max_messages, queue_.size()));
  while (batch.size() < max_messages && !queue_.empty()) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

bool MessageQueue::empty() const {
  std::lock_guard lock(mu_);
  return queue_.empty();
}

std::size_t MessageQueue::depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

}  // namespace hc::storage
