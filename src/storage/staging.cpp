#include "storage/staging.h"

namespace hc::storage {

Status StagingArea::put(const std::string& upload_id, Bytes encrypted_blob) {
  if (blobs_.contains(upload_id)) {
    return Status(StatusCode::kAlreadyExists, "upload id reused: " + upload_id);
  }
  blobs_.emplace(upload_id, std::move(encrypted_blob));
  return Status::ok();
}

Result<Bytes> StagingArea::get(const std::string& upload_id) const {
  auto it = blobs_.find(upload_id);
  if (it == blobs_.end()) {
    return Status(StatusCode::kNotFound, "no staged upload " + upload_id);
  }
  return it->second;
}

Status StagingArea::remove(const std::string& upload_id) {
  auto it = blobs_.find(upload_id);
  if (it == blobs_.end()) {
    return Status(StatusCode::kNotFound, "no staged upload " + upload_id);
  }
  secure_wipe(it->second);
  blobs_.erase(it);
  return Status::ok();
}

void MessageQueue::push(IngestionMessage message) {
  queue_.push_back(std::move(message));
}

std::optional<IngestionMessage> MessageQueue::pop() {
  if (queue_.empty()) return std::nullopt;
  IngestionMessage msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

}  // namespace hc::storage
