#include "storage/staging.h"

namespace hc::storage {

Status StagingArea::put(const std::string& upload_id, Bytes encrypted_blob) {
  std::lock_guard lock(mu_);
  if (blobs_.contains(upload_id)) {
    return Status(StatusCode::kAlreadyExists, "upload id reused: " + upload_id);
  }
  blobs_.emplace(upload_id, std::move(encrypted_blob));
  return Status::ok();
}

Result<Bytes> StagingArea::get(const std::string& upload_id) const {
  std::lock_guard lock(mu_);
  auto it = blobs_.find(upload_id);
  if (it == blobs_.end()) {
    return Status(StatusCode::kNotFound, "no staged upload " + upload_id);
  }
  return it->second;
}

Status StagingArea::remove(const std::string& upload_id) {
  std::lock_guard lock(mu_);
  auto it = blobs_.find(upload_id);
  if (it == blobs_.end()) {
    return Status(StatusCode::kNotFound, "no staged upload " + upload_id);
  }
  secure_wipe(it->second);
  blobs_.erase(it);
  return Status::ok();
}

std::size_t StagingArea::size() const {
  std::lock_guard lock(mu_);
  return blobs_.size();
}

const std::string& MessageQueue::lane_of(const IngestionMessage& message) {
  static const std::string kDefaultLane = "default";
  return message.tenant.empty() ? kDefaultLane : message.tenant;
}

void MessageQueue::record_depth(const std::string& lane) {
  if (!metrics_) return;
  std::size_t depth = fair_ ? fair_->tenant_depth(lane) : queue_.size();
  metrics_->set_gauge("hc.sched.queue_depth.ingest." + lane,
                      static_cast<double>(depth));
}

Status MessageQueue::push(IngestionMessage message) {
  std::lock_guard lock(mu_);
  std::size_t current = queue_.size() + (fair_ ? fair_->depth() : 0);
  if (capacity_ > 0 && current >= capacity_) {
    // Retryable by fault::retryable(): the caller's RetryPolicy backoff is
    // the intended reaction to ingestion backpressure.
    return Status(StatusCode::kUnavailable,
                  "ingestion queue at capacity (" + std::to_string(capacity_) +
                      ") — retry with backoff");
  }
  const std::string lane = lane_of(message);
  std::uint64_t cost = message.cost == 0 ? 1 : message.cost;
  if (fair_) {
    fair_->push(lane, std::move(message), cost);
  } else {
    fifo_cost_ += cost;
    queue_.push_back(std::move(message));
  }
  record_depth(lane);
  return Status::ok();
}

std::optional<IngestionMessage> MessageQueue::pop_locked() {
  if (!queue_.empty()) {
    IngestionMessage msg = std::move(queue_.front());
    queue_.pop_front();
    fifo_cost_ -= msg.cost == 0 ? 1 : msg.cost;
    record_depth(lane_of(msg));
    return msg;
  }
  if (fair_) {
    auto msg = fair_->pop();
    if (msg) record_depth(lane_of(*msg));
    return msg;
  }
  return std::nullopt;
}

std::optional<IngestionMessage> MessageQueue::pop() {
  std::lock_guard lock(mu_);
  return pop_locked();
}

std::vector<IngestionMessage> MessageQueue::pop_batch(std::size_t max_messages) {
  std::lock_guard lock(mu_);
  std::vector<IngestionMessage> batch;
  batch.reserve(std::min(max_messages, queue_.size() + (fair_ ? fair_->depth() : 0)));
  while (batch.size() < max_messages) {
    auto msg = pop_locked();
    if (!msg) break;
    batch.push_back(std::move(*msg));
  }
  return batch;
}

bool MessageQueue::empty() const {
  std::lock_guard lock(mu_);
  return queue_.empty() && (!fair_ || fair_->empty());
}

std::size_t MessageQueue::depth() const {
  std::lock_guard lock(mu_);
  return queue_.size() + (fair_ ? fair_->depth() : 0);
}

std::uint64_t MessageQueue::backlog_cost() const {
  std::lock_guard lock(mu_);
  return fifo_cost_ + (fair_ ? fair_->backlog_cost() : 0);
}

void MessageQueue::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mu_);
  capacity_ = capacity;
}

std::size_t MessageQueue::capacity() const {
  std::lock_guard lock(mu_);
  return capacity_;
}

void MessageQueue::enable_fair_mode(std::uint64_t quantum) {
  std::lock_guard lock(mu_);
  if (!fair_) {
    fair_ = std::make_unique<sched::WeightedFairQueue<IngestionMessage>>(quantum);
  }
}

bool MessageQueue::fair_mode() const {
  std::lock_guard lock(mu_);
  return fair_ != nullptr;
}

void MessageQueue::set_tenant_weight(const std::string& tenant,
                                     std::uint64_t weight) {
  std::lock_guard lock(mu_);
  if (fair_) fair_->set_weight(tenant, weight);
}

void MessageQueue::bind_metrics(obs::MetricsPtr metrics) {
  std::lock_guard lock(mu_);
  metrics_ = std::move(metrics);
}

}  // namespace hc::storage
