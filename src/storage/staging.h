// Staging area and internal messaging (Section II.B).
//
// "Encrypted data ... is uploaded to a secure temporary storage area, and a
// message is left in the platform's internal messaging system for the
// background ingestion process to ingest the data." The staging area holds
// opaque encrypted blobs keyed by upload id; the message queue is the FIFO
// the background worker drains. Ingestion is asynchronous by design —
// upload returns immediately with a status URL.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace hc::storage {

/// Thread-safe: parallel ingestion workers fetch/remove concurrently while
/// clients stage new uploads.
class StagingArea {
 public:
  /// Stores an encrypted upload; overwrites nothing (ids are unique).
  Status put(const std::string& upload_id, Bytes encrypted_blob);

  Result<Bytes> get(const std::string& upload_id) const;

  /// Removes the blob once ingested (staging is temporary by contract).
  Status remove(const std::string& upload_id);

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Bytes> blobs_;
};

/// Message dropped on the queue for each upload.
struct IngestionMessage {
  std::string upload_id;
  std::string uploader_user_id;
  std::string consent_group;
  std::string key_id;  // KMS id of the client keypair that sealed the blob
};

/// Thread-safe FIFO. pop_batch() lets a worker take several messages under
/// one lock acquisition, so an N-worker drain contends on the queue mutex
/// once per batch rather than once per upload.
class MessageQueue {
 public:
  void push(IngestionMessage message);
  std::optional<IngestionMessage> pop();
  /// Up to `max_messages` from the head (fewer when the queue runs dry).
  std::vector<IngestionMessage> pop_batch(std::size_t max_messages);
  bool empty() const;
  std::size_t depth() const;

 private:
  mutable std::mutex mu_;
  std::deque<IngestionMessage> queue_;
};

}  // namespace hc::storage
