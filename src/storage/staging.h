// Staging area and internal messaging (Section II.B).
//
// "Encrypted data ... is uploaded to a secure temporary storage area, and a
// message is left in the platform's internal messaging system for the
// background ingestion process to ingest the data." The staging area holds
// opaque encrypted blobs keyed by upload id; the message queue is the FIFO
// the background worker drains. Ingestion is asynchronous by design —
// upload returns immediately with a status URL.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "sched/sched.h"

namespace hc::storage {

/// Thread-safe: parallel ingestion workers fetch/remove concurrently while
/// clients stage new uploads.
class StagingArea {
 public:
  /// Stores an encrypted upload; overwrites nothing (ids are unique).
  Status put(const std::string& upload_id, Bytes encrypted_blob);

  Result<Bytes> get(const std::string& upload_id) const;

  /// Removes the blob once ingested (staging is temporary by contract).
  Status remove(const std::string& upload_id);

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Bytes> blobs_;
};

/// Message dropped on the queue for each upload. The trailing QoS fields
/// default to "no scheduling hint" so pre-QoS call sites keep working.
struct IngestionMessage {
  std::string upload_id;
  std::string uploader_user_id;
  std::string consent_group;
  std::string key_id;  // KMS id of the client keypair that sealed the blob
  std::string tenant;  // fair-queue lane; empty = shared "default" lane
  std::uint64_t cost = 1;  // scheduler cost units (≈ KB of pipeline work)
  SimTime deadline = 0;    // absolute sim-time deadline; 0 = none
};

/// Thread-safe ingestion queue. pop_batch() lets a worker take several
/// messages under one lock acquisition, so an N-worker drain contends on
/// the queue mutex once per batch rather than once per upload.
///
/// Two policy knobs, both off by default (historical FIFO, unbounded):
///   * set_capacity(n) bounds the queue: push() at capacity fails with a
///     *retryable* kUnavailable instead of growing memory, so upstream
///     backpressure composes with fault::RetryPolicy.
///   * enable_fair_mode(quantum) replaces FIFO draining with deficit
///     round-robin over per-tenant lanes (sched::WeightedFairQueue), with
///     weights from set_tenant_weight — one flooding tenant can no longer
///     starve the others' drain order.
/// With metrics bound, per-lane depths land in the
/// `hc.sched.queue_depth.ingest.<lane>` gauges.
class MessageQueue {
 public:
  Status push(IngestionMessage message);
  std::optional<IngestionMessage> pop();
  /// Up to `max_messages` in drain order (fewer when the queue runs dry).
  std::vector<IngestionMessage> pop_batch(std::size_t max_messages);
  bool empty() const;
  std::size_t depth() const;
  /// Sum of queued message costs (admission control's backlog signal).
  std::uint64_t backlog_cost() const;

  /// 0 restores the unbounded default. Shrinking below the current depth
  /// only affects future pushes; nothing is dropped.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Switch to weighted-fair draining. Call before traffic: messages
  /// already queued stay in the FIFO and drain first.
  void enable_fair_mode(std::uint64_t quantum = 64);
  bool fair_mode() const;
  /// Weight for a tenant lane (>= 1). Effective in fair mode only.
  void set_tenant_weight(const std::string& tenant, std::uint64_t weight);

  void bind_metrics(obs::MetricsPtr metrics);

 private:
  static const std::string& lane_of(const IngestionMessage& message);
  /// Caller holds mu_. Publishes the lane's depth gauge.
  void record_depth(const std::string& lane);
  /// Caller holds mu_. Pops from the FIFO remainder first, then the WFQ.
  std::optional<IngestionMessage> pop_locked();

  mutable std::mutex mu_;
  std::deque<IngestionMessage> queue_;  // FIFO mode (and pre-fair remainder)
  std::unique_ptr<sched::WeightedFairQueue<IngestionMessage>> fair_;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t fifo_cost_ = 0;
  obs::MetricsPtr metrics_;  // may be null
};

}  // namespace hc::storage
