// Staging area and internal messaging (Section II.B).
//
// "Encrypted data ... is uploaded to a secure temporary storage area, and a
// message is left in the platform's internal messaging system for the
// background ingestion process to ingest the data." The staging area holds
// opaque encrypted blobs keyed by upload id; the message queue is the FIFO
// the background worker drains. Ingestion is asynchronous by design —
// upload returns immediately with a status URL.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace hc::storage {

class StagingArea {
 public:
  /// Stores an encrypted upload; overwrites nothing (ids are unique).
  Status put(const std::string& upload_id, Bytes encrypted_blob);

  Result<Bytes> get(const std::string& upload_id) const;

  /// Removes the blob once ingested (staging is temporary by contract).
  Status remove(const std::string& upload_id);

  std::size_t size() const { return blobs_.size(); }

 private:
  std::map<std::string, Bytes> blobs_;
};

/// Message dropped on the queue for each upload.
struct IngestionMessage {
  std::string upload_id;
  std::string uploader_user_id;
  std::string consent_group;
  std::string key_id;  // KMS id of the client keypair that sealed the blob
};

class MessageQueue {
 public:
  void push(IngestionMessage message);
  std::optional<IngestionMessage> pop();
  bool empty() const { return queue_.empty(); }
  std::size_t depth() const { return queue_.size(); }

 private:
  std::deque<IngestionMessage> queue_;
};

}  // namespace hc::storage
