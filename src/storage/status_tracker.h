// Ingestion status tracking (Section II.B).
//
// "The platform returns a status URL to the uploading client, which can be
// used to know the status of the data ingestion process as it goes through
// its ingestion flow sequence." Each upload id maps to its current stage;
// failures carry the reason so clients can see *why* a bundle was dropped
// (malformed, malware, consent missing, anonymization insufficient...).
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace hc::storage {

enum class IngestionStage {
  kReceived,       // staged, message queued
  kDecrypting,
  kValidating,
  kScanning,       // malware filtration
  kVerifyingConsent,
  kDeIdentifying,
  kStored,         // terminal success; reference id available
  kFailed,         // terminal failure; reason available
};

std::string_view ingestion_stage_name(IngestionStage stage);

struct IngestionStatus {
  IngestionStage stage = IngestionStage::kReceived;
  std::string reference_id;  // set when kStored
  std::string failure_reason;  // set when kFailed
};

/// Thread-safe: each parallel ingestion worker updates only its own
/// upload's entry, but map insertion still needs the lock.
class StatusTracker {
 public:
  /// Returns the status URL for an upload (also registers it as kReceived).
  std::string track(const std::string& upload_id);

  void set_stage(const std::string& upload_id, IngestionStage stage);
  void set_stored(const std::string& upload_id, const std::string& reference_id);
  void set_failed(const std::string& upload_id, const std::string& reason);

  /// Lookup by upload id or by the status URL returned from track().
  Result<IngestionStatus> status(const std::string& upload_id_or_url) const;

 private:
  static std::string url_for(const std::string& upload_id);
  static std::string id_from(const std::string& upload_id_or_url);

  mutable std::mutex mu_;
  std::map<std::string, IngestionStatus> statuses_;
};

}  // namespace hc::storage
