// High availability / disaster recovery for the data lake (Section II.B:
// "Platform services provide ... high availability and disaster recovery
// service").
//
// A ReplicatedDataLake fronts N DataLake replicas:
//   - writes go to every *available* replica and succeed when a write
//     quorum (majority by default) holds the object;
//   - reads fail over across replicas, skipping ones that are down or
//     return corrupted (unauthenticated) objects;
//   - repair() is ciphertext-level anti-entropy: recovered replicas are
//     backfilled from their peers without the storage layer ever seeing
//     plaintext.
// Replica failure is modeled by availability flags (the simulation's
// equivalent of a zone outage).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "fault/resilience.h"
#include "obs/metrics.h"
#include "storage/data_lake.h"

namespace hc::storage {

/// Optional chaos/resilience wiring for a ReplicatedDataLake: maps each
/// replica index to a simulated host (consulted against the fault plan's
/// crash schedule) and retries quorum-failed writes under `retry` — each
/// backoff advances the shared clock, which is what lets a crashed
/// replica restart mid-write and the write eventually succeed.
struct ReplicationResilience {
  ClockPtr clock;
  fault::FaultInjectorPtr injector;          // may be null
  obs::MetricsPtr metrics;                   // may be null
  fault::RetryPolicy retry{/*max_attempts=*/1};  // retries off by default
  std::vector<std::string> replica_hosts;    // host name per replica index
  std::uint64_t jitter_seed = 0xfa17;
};

class ReplicatedDataLake {
 public:
  /// `replicas` are non-owning and must outlive this object.
  /// `write_quorum` of 0 means majority.
  explicit ReplicatedDataLake(std::vector<DataLake*> replicas,
                              std::size_t write_quorum = 0);

  /// Encrypt-once, replicate-ciphertext: the object is written on the
  /// first available replica, then imported (sealed) into the others.
  /// kUnavailable when fewer than `write_quorum` replicas hold the object.
  Result<std::string> put(const Bytes& plaintext, const crypto::KeyId& key_id);

  /// Reads from the first available replica holding an authentic copy.
  Result<Bytes> get(const std::string& reference_id) const;

  /// Removes the object from every available replica.
  Status erase(const std::string& reference_id);

  /// Anti-entropy: copy every object any replica holds to every available
  /// replica missing it. Returns how many copies were installed.
  std::size_t repair();

  // --- failure injection ---------------------------------------------------
  void fail_replica(std::size_t index) { available_.at(index) = false; }
  void recover_replica(std::size_t index) { available_.at(index) = true; }
  /// Manual flag AND (when resilience is bound) the fault plan's crash
  /// schedule for the replica's host.
  bool replica_available(std::size_t index) const;
  std::size_t replica_count() const { return replicas_.size(); }

  /// Binds the chaos schedule + write retry policy. Requires a clock.
  void bind_resilience(ReplicationResilience resilience);

  /// How many available replicas hold the object (for tests/monitoring).
  std::size_t copies_of(const std::string& reference_id) const;

 private:
  Result<std::string> put_once(const Bytes& plaintext, const crypto::KeyId& key_id);

  std::vector<DataLake*> replicas_;
  std::vector<bool> available_;
  std::size_t write_quorum_;
  ReplicationResilience resilience_;  // inert until bind_resilience()
  Rng retry_rng_{0xfa17};
};

}  // namespace hc::storage
