// High availability / disaster recovery for the data lake (Section II.B:
// "Platform services provide ... high availability and disaster recovery
// service").
//
// A ReplicatedDataLake fronts N DataLake replicas:
//   - writes go to every *available* replica and succeed when a write
//     quorum (majority by default) holds the object;
//   - reads fail over across replicas, skipping ones that are down or
//     return corrupted (unauthenticated) objects;
//   - repair() is ciphertext-level anti-entropy: recovered replicas are
//     backfilled from their peers without the storage layer ever seeing
//     plaintext.
// Replica failure is modeled by availability flags (the simulation's
// equivalent of a zone outage).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/data_lake.h"

namespace hc::storage {

class ReplicatedDataLake {
 public:
  /// `replicas` are non-owning and must outlive this object.
  /// `write_quorum` of 0 means majority.
  explicit ReplicatedDataLake(std::vector<DataLake*> replicas,
                              std::size_t write_quorum = 0);

  /// Encrypt-once, replicate-ciphertext: the object is written on the
  /// first available replica, then imported (sealed) into the others.
  /// kUnavailable when fewer than `write_quorum` replicas hold the object.
  Result<std::string> put(const Bytes& plaintext, const crypto::KeyId& key_id);

  /// Reads from the first available replica holding an authentic copy.
  Result<Bytes> get(const std::string& reference_id) const;

  /// Removes the object from every available replica.
  Status erase(const std::string& reference_id);

  /// Anti-entropy: copy every object any replica holds to every available
  /// replica missing it. Returns how many copies were installed.
  std::size_t repair();

  // --- failure injection ---------------------------------------------------
  void fail_replica(std::size_t index) { available_.at(index) = false; }
  void recover_replica(std::size_t index) { available_.at(index) = true; }
  bool replica_available(std::size_t index) const { return available_.at(index); }
  std::size_t replica_count() const { return replicas_.size(); }

  /// How many available replicas hold the object (for tests/monitoring).
  std::size_t copies_of(const std::string& reference_id) const;

 private:
  std::vector<DataLake*> replicas_;
  std::vector<bool> available_;
  std::size_t write_quorum_;
};

}  // namespace hc::storage
