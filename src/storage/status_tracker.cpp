#include "storage/status_tracker.h"

namespace hc::storage {

namespace {
constexpr std::string_view kUrlPrefix = "https://healthcloud/ingestion/status/";
}

std::string_view ingestion_stage_name(IngestionStage stage) {
  switch (stage) {
    case IngestionStage::kReceived: return "received";
    case IngestionStage::kDecrypting: return "decrypting";
    case IngestionStage::kValidating: return "validating";
    case IngestionStage::kScanning: return "scanning";
    case IngestionStage::kVerifyingConsent: return "verifying-consent";
    case IngestionStage::kDeIdentifying: return "de-identifying";
    case IngestionStage::kStored: return "stored";
    case IngestionStage::kFailed: return "failed";
  }
  return "unknown";
}

std::string StatusTracker::url_for(const std::string& upload_id) {
  return std::string(kUrlPrefix) + upload_id;
}

std::string StatusTracker::id_from(const std::string& upload_id_or_url) {
  if (upload_id_or_url.starts_with(kUrlPrefix)) {
    return upload_id_or_url.substr(kUrlPrefix.size());
  }
  return upload_id_or_url;
}

std::string StatusTracker::track(const std::string& upload_id) {
  std::lock_guard lock(mu_);
  statuses_.emplace(upload_id, IngestionStatus{});
  return url_for(upload_id);
}

void StatusTracker::set_stage(const std::string& upload_id, IngestionStage stage) {
  std::lock_guard lock(mu_);
  statuses_[upload_id].stage = stage;
}

void StatusTracker::set_stored(const std::string& upload_id,
                               const std::string& reference_id) {
  std::lock_guard lock(mu_);
  auto& status = statuses_[upload_id];
  status.stage = IngestionStage::kStored;
  status.reference_id = reference_id;
}

void StatusTracker::set_failed(const std::string& upload_id, const std::string& reason) {
  std::lock_guard lock(mu_);
  auto& status = statuses_[upload_id];
  status.stage = IngestionStage::kFailed;
  status.failure_reason = reason;
}

Result<IngestionStatus> StatusTracker::status(
    const std::string& upload_id_or_url) const {
  std::lock_guard lock(mu_);
  auto it = statuses_.find(id_from(upload_id_or_url));
  if (it == statuses_.end()) {
    return Status(StatusCode::kNotFound, "unknown upload: " + upload_id_or_url);
  }
  return it->second;
}

}  // namespace hc::storage
