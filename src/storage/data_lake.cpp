#include "storage/data_lake.h"

#include "crypto/aes.h"
#include "crypto/sha256.h"

namespace hc::storage {

namespace {

/// Objects are stored with encrypt-then-MAC (the paper's "AES CBC mode
/// (encryption and integrity)"): the KMS key is split into independent
/// encryption and MAC subkeys by domain-separated hashing.
struct SubKeys {
  Bytes enc;
  Bytes mac;
};

SubKeys derive_subkeys(const Bytes& key) {
  Bytes enc_full = crypto::sha256_concat(key, to_bytes("lake-enc"));
  SubKeys out;
  out.enc.assign(enc_full.begin(), enc_full.begin() + crypto::kAesKeySize);
  out.mac = crypto::sha256_concat(key, to_bytes("lake-mac"));
  return out;
}

}  // namespace

Status MetadataStore::put(const RecordMetadata& metadata) {
  if (metadata.reference_id.empty()) {
    return Status(StatusCode::kInvalidArgument, "metadata needs a reference id");
  }
  records_[metadata.reference_id] = metadata;
  return Status::ok();
}

Result<RecordMetadata> MetadataStore::get(const std::string& reference_id) const {
  auto it = records_.find(reference_id);
  if (it == records_.end()) {
    return Status(StatusCode::kNotFound, "no metadata for " + reference_id);
  }
  return it->second;
}

Status MetadataStore::erase(const std::string& reference_id) {
  if (records_.erase(reference_id) == 0) {
    return Status(StatusCode::kNotFound, "no metadata for " + reference_id);
  }
  return Status::ok();
}

std::vector<RecordMetadata> MetadataStore::by_pseudonym(
    const std::string& pseudonym) const {
  std::vector<RecordMetadata> out;
  for (const auto& [id, md] : records_) {
    if (md.pseudonym == pseudonym) out.push_back(md);
  }
  return out;
}

std::vector<RecordMetadata> MetadataStore::by_group(const std::string& group) const {
  std::vector<RecordMetadata> out;
  for (const auto& [id, md] : records_) {
    if (md.consent_group == group) out.push_back(md);
  }
  return out;
}

DataLake::DataLake(crypto::KeyManagementService& kms, std::string principal, Rng rng)
    : kms_(&kms), principal_(std::move(principal)), rng_(rng) {}

Result<std::string> DataLake::put(const Bytes& plaintext, const crypto::KeyId& key_id) {
  auto key = kms_->symmetric_key(key_id, principal_);
  if (!key.is_ok()) return key.status();
  auto version = kms_->version(key_id);
  if (!version.is_ok()) return version.status();

  std::string ref = "ref-" + ids_.next_uuid();
  StoredObject obj;
  obj.key_id = key_id;
  obj.key_version = *version;
  SubKeys subkeys = derive_subkeys(*key);
  auto sealed = crypto::aes_encrypt_authenticated(subkeys.enc, subkeys.mac,
                                                  plaintext, rng_);
  obj.ciphertext = std::move(sealed.ciphertext);
  obj.tag = std::move(sealed.tag);
  stored_bytes_ += obj.ciphertext.size();
  objects_.emplace(ref, std::move(obj));
  return ref;
}

Result<Bytes> DataLake::get(const std::string& reference_id) const {
  auto it = objects_.find(reference_id);
  if (it == objects_.end()) {
    return Status(StatusCode::kNotFound, "no object " + reference_id);
  }
  // Fetch the key *version* the object was written under, so key rotation
  // never strands previously stored records.
  auto key = kms_->symmetric_key_version(it->second.key_id, principal_,
                                         it->second.key_version);
  if (!key.is_ok()) return key.status();
  SubKeys subkeys = derive_subkeys(*key);
  crypto::AuthenticatedCiphertext sealed;
  sealed.ciphertext = it->second.ciphertext;
  sealed.tag = it->second.tag;
  auto opened = crypto::aes_decrypt_authenticated(subkeys.enc, subkeys.mac, sealed);
  if (!opened.authentic) {
    return Status(StatusCode::kIntegrityError,
                  "stored object failed authentication: " + reference_id);
  }
  return opened.plaintext;
}

Status DataLake::erase(const std::string& reference_id) {
  auto it = objects_.find(reference_id);
  if (it == objects_.end()) {
    return Status(StatusCode::kNotFound, "no object " + reference_id);
  }
  stored_bytes_ -= it->second.ciphertext.size();
  secure_wipe(it->second.ciphertext);
  objects_.erase(it);
  return Status::ok();
}

bool DataLake::contains(const std::string& reference_id) const {
  return objects_.contains(reference_id);
}

Result<DataLake::SealedObject> DataLake::export_object(
    const std::string& reference_id) const {
  auto it = objects_.find(reference_id);
  if (it == objects_.end()) {
    return Status(StatusCode::kNotFound, "no object " + reference_id);
  }
  SealedObject out;
  out.key_id = it->second.key_id;
  out.key_version = it->second.key_version;
  out.ciphertext = it->second.ciphertext;
  out.tag = it->second.tag;
  return out;
}

Status DataLake::import_object(const std::string& reference_id, SealedObject object) {
  if (objects_.contains(reference_id)) {
    return Status(StatusCode::kAlreadyExists, "object exists: " + reference_id);
  }
  StoredObject stored;
  stored.key_id = std::move(object.key_id);
  stored.key_version = object.key_version;
  stored.ciphertext = std::move(object.ciphertext);
  stored.tag = std::move(object.tag);
  stored_bytes_ += stored.ciphertext.size();
  objects_.emplace(reference_id, std::move(stored));
  return Status::ok();
}

std::vector<std::string> DataLake::references() const {
  std::vector<std::string> out;
  out.reserve(objects_.size());
  for (const auto& [ref, obj] : objects_) out.push_back(ref);
  return out;
}

Status DataLake::tamper_for_test(const std::string& reference_id) {
  auto it = objects_.find(reference_id);
  if (it == objects_.end()) {
    return Status(StatusCode::kNotFound, "no object " + reference_id);
  }
  it->second.ciphertext[it->second.ciphertext.size() / 2] ^= 0x10;
  return Status::ok();
}

}  // namespace hc::storage
