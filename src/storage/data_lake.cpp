#include "storage/data_lake.h"

#include <algorithm>

#include "crypto/aes.h"
#include "crypto/sha256.h"
#include "exec/executor.h"

namespace hc::storage {

namespace {

/// Objects are stored with encrypt-then-MAC (the paper's "AES CBC mode
/// (encryption and integrity)"): the KMS key is split into independent
/// encryption and MAC subkeys by domain-separated hashing.
struct SubKeys {
  Bytes enc;
  Bytes mac;
};

SubKeys derive_subkeys(const Bytes& key) {
  Bytes enc_full = crypto::sha256_concat(key, to_bytes("lake-enc"));
  SubKeys out;
  out.enc.assign(enc_full.begin(), enc_full.begin() + crypto::kAesKeySize);
  out.mac = crypto::sha256_concat(key, to_bytes("lake-mac"));
  return out;
}

}  // namespace

namespace {

/// Scan results are sorted by reference id so sharding keeps the exact
/// iteration order the single-map implementation exposed.
void sort_by_reference(std::vector<RecordMetadata>& records) {
  std::sort(records.begin(), records.end(),
            [](const RecordMetadata& a, const RecordMetadata& b) {
              return a.reference_id < b.reference_id;
            });
}

}  // namespace

MetadataStore::Shard& MetadataStore::shard_for(const std::string& reference_id) {
  return shards_[exec::shard_by(reference_id, kShardCount)];
}

const MetadataStore::Shard& MetadataStore::shard_for(
    const std::string& reference_id) const {
  return shards_[exec::shard_by(reference_id, kShardCount)];
}

Status MetadataStore::put(const RecordMetadata& metadata) {
  if (metadata.reference_id.empty()) {
    return Status(StatusCode::kInvalidArgument, "metadata needs a reference id");
  }
  Shard& shard = shard_for(metadata.reference_id);
  std::lock_guard lock(shard.mu);
  shard.records[metadata.reference_id] = metadata;
  return Status::ok();
}

Result<RecordMetadata> MetadataStore::get(const std::string& reference_id) const {
  const Shard& shard = shard_for(reference_id);
  std::lock_guard lock(shard.mu);
  auto it = shard.records.find(reference_id);
  if (it == shard.records.end()) {
    return Status(StatusCode::kNotFound, "no metadata for " + reference_id);
  }
  return it->second;
}

Status MetadataStore::erase(const std::string& reference_id) {
  Shard& shard = shard_for(reference_id);
  std::lock_guard lock(shard.mu);
  if (shard.records.erase(reference_id) == 0) {
    return Status(StatusCode::kNotFound, "no metadata for " + reference_id);
  }
  return Status::ok();
}

std::vector<RecordMetadata> MetadataStore::by_pseudonym(
    const std::string& pseudonym) const {
  std::vector<RecordMetadata> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (const auto& [id, md] : shard.records) {
      if (md.pseudonym == pseudonym) out.push_back(md);
    }
  }
  sort_by_reference(out);
  return out;
}

std::vector<RecordMetadata> MetadataStore::by_group(const std::string& group) const {
  std::vector<RecordMetadata> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (const auto& [id, md] : shard.records) {
      if (md.consent_group == group) out.push_back(md);
    }
  }
  sort_by_reference(out);
  return out;
}

std::vector<RecordMetadata> MetadataStore::all() const {
  std::vector<RecordMetadata> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (const auto& [id, md] : shard.records) out.push_back(md);
  }
  sort_by_reference(out);
  return out;
}

std::size_t MetadataStore::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    total += shard.records.size();
  }
  return total;
}

DataLake::DataLake(crypto::KeyManagementService& kms, std::string principal, Rng rng,
                   std::uint64_t id_seed)
    : kms_(&kms), principal_(std::move(principal)), rng_(rng), ids_(id_seed) {}

DataLake::Shard& DataLake::shard_for(const std::string& reference_id) {
  return shards_[exec::shard_by(reference_id, kShardCount)];
}

const DataLake::Shard& DataLake::shard_for(const std::string& reference_id) const {
  return shards_[exec::shard_by(reference_id, kShardCount)];
}

Result<std::string> DataLake::put(const Bytes& plaintext, const crypto::KeyId& key_id) {
  auto key = kms_->symmetric_key(key_id, principal_);
  if (!key.is_ok()) return key.status();
  auto version = kms_->version(key_id);
  if (!version.is_ok()) return version.status();

  // Draw the reference id and a private IV stream under the generator
  // lock, then encrypt outside it so parallel writers overlap on the
  // expensive part.
  std::string ref;
  Rng iv_rng(0);
  {
    std::lock_guard lock(gen_mu_);
    ref = "ref-" + ids_.next_uuid();
    iv_rng = rng_.fork();
  }
  StoredObject obj;
  obj.key_id = key_id;
  obj.key_version = *version;
  SubKeys subkeys = derive_subkeys(*key);
  auto sealed = crypto::aes_encrypt_authenticated(subkeys.enc, subkeys.mac,
                                                  plaintext, iv_rng);
  obj.ciphertext = std::move(sealed.ciphertext);
  obj.tag = std::move(sealed.tag);
  stored_bytes_.fetch_add(obj.ciphertext.size(), std::memory_order_relaxed);
  Shard& shard = shard_for(ref);
  std::lock_guard lock(shard.mu);
  shard.objects.emplace(ref, std::move(obj));
  return ref;
}

Result<Bytes> DataLake::get(const std::string& reference_id) const {
  crypto::KeyId key_id;
  std::uint32_t key_version = 0;
  crypto::AuthenticatedCiphertext sealed;
  {
    const Shard& shard = shard_for(reference_id);
    std::lock_guard lock(shard.mu);
    auto it = shard.objects.find(reference_id);
    if (it == shard.objects.end()) {
      return Status(StatusCode::kNotFound, "no object " + reference_id);
    }
    key_id = it->second.key_id;
    key_version = it->second.key_version;
    sealed.ciphertext = it->second.ciphertext;
    sealed.tag = it->second.tag;
  }
  // Fetch the key *version* the object was written under, so key rotation
  // never strands previously stored records.
  auto key = kms_->symmetric_key_version(key_id, principal_, key_version);
  if (!key.is_ok()) return key.status();
  SubKeys subkeys = derive_subkeys(*key);
  auto opened = crypto::aes_decrypt_authenticated(subkeys.enc, subkeys.mac, sealed);
  if (!opened.authentic) {
    return Status(StatusCode::kIntegrityError,
                  "stored object failed authentication: " + reference_id);
  }
  return opened.plaintext;
}

Status DataLake::erase(const std::string& reference_id) {
  Shard& shard = shard_for(reference_id);
  std::lock_guard lock(shard.mu);
  auto it = shard.objects.find(reference_id);
  if (it == shard.objects.end()) {
    return Status(StatusCode::kNotFound, "no object " + reference_id);
  }
  stored_bytes_.fetch_sub(it->second.ciphertext.size(), std::memory_order_relaxed);
  secure_wipe(it->second.ciphertext);
  shard.objects.erase(it);
  return Status::ok();
}

bool DataLake::contains(const std::string& reference_id) const {
  const Shard& shard = shard_for(reference_id);
  std::lock_guard lock(shard.mu);
  return shard.objects.contains(reference_id);
}

std::size_t DataLake::object_count() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    total += shard.objects.size();
  }
  return total;
}

Result<DataLake::SealedObject> DataLake::export_object(
    const std::string& reference_id) const {
  const Shard& shard = shard_for(reference_id);
  std::lock_guard lock(shard.mu);
  auto it = shard.objects.find(reference_id);
  if (it == shard.objects.end()) {
    return Status(StatusCode::kNotFound, "no object " + reference_id);
  }
  SealedObject out;
  out.key_id = it->second.key_id;
  out.key_version = it->second.key_version;
  out.ciphertext = it->second.ciphertext;
  out.tag = it->second.tag;
  return out;
}

Status DataLake::import_object(const std::string& reference_id, SealedObject object) {
  Shard& shard = shard_for(reference_id);
  std::lock_guard lock(shard.mu);
  if (shard.objects.contains(reference_id)) {
    return Status(StatusCode::kAlreadyExists, "object exists: " + reference_id);
  }
  StoredObject stored;
  stored.key_id = std::move(object.key_id);
  stored.key_version = object.key_version;
  stored.ciphertext = std::move(object.ciphertext);
  stored.tag = std::move(object.tag);
  stored_bytes_.fetch_add(stored.ciphertext.size(), std::memory_order_relaxed);
  shard.objects.emplace(reference_id, std::move(stored));
  return Status::ok();
}

std::vector<std::string> DataLake::references() const {
  std::vector<std::string> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (const auto& [ref, obj] : shard.objects) out.push_back(ref);
  }
  std::sort(out.begin(), out.end());  // the order the unsharded map gave
  return out;
}

Status DataLake::tamper_for_test(const std::string& reference_id) {
  Shard& shard = shard_for(reference_id);
  std::lock_guard lock(shard.mu);
  auto it = shard.objects.find(reference_id);
  if (it == shard.objects.end()) {
    return Status(StatusCode::kNotFound, "no object " + reference_id);
  }
  it->second.ciphertext[it->second.ciphertext.size() / 2] ^= 0x10;
  return Status::ok();
}

}  // namespace hc::storage
