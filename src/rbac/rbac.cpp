#include "rbac/rbac.h"

#include <algorithm>

namespace hc::rbac {

std::string_view permission_name(Permission p) {
  switch (p) {
    case Permission::kRead: return "read";
    case Permission::kWrite: return "write";
  }
  return "unknown";
}

std::string_view role_name(Role r) {
  switch (r) {
    case Role::kTenantAdmin: return "tenant-admin";
    case Role::kDeveloper: return "developer";
    case Role::kAnalyst: return "analyst";
    case Role::kClinician: return "clinician";
    case Role::kAuditor: return "auditor";
  }
  return "unknown";
}

RbacSystem::RbacSystem(LogPtr log) : log_(std::move(log)) {}

Result<TenantInfo> RbacSystem::register_tenant(const std::string& name) {
  for (const auto& [id, info] : tenants_) {
    if (info.name == name) {
      return Status(StatusCode::kAlreadyExists, "tenant name taken: " + name);
    }
  }
  TenantInfo info;
  info.id = "tenant-" + ids_.next_uuid();
  info.name = name;
  tenants_.emplace(info.id, info);

  // Registration service: default organization + default environment.
  auto org = add_organization(info.id, "default");
  auto env = add_environment(*org, "default");
  auto& stored = tenants_.at(info.id);
  stored.default_org = *org;
  stored.default_env = *env;
  if (log_) log_->audit("rbac", "tenant_registered", info.id + " name=" + name);
  return stored;
}

Result<std::string> RbacSystem::add_organization(const std::string& tenant_id,
                                                 const std::string& name) {
  if (!tenants_.contains(tenant_id)) {
    return Status(StatusCode::kNotFound, "no tenant " + tenant_id);
  }
  std::string id = "org-" + ids_.next_uuid();
  orgs_.emplace(id, tenant_id);
  if (log_) log_->audit("rbac", "org_created", id + " name=" + name);
  return id;
}

Result<std::string> RbacSystem::add_environment(const std::string& org_id,
                                                const std::string& name) {
  if (!orgs_.contains(org_id)) {
    return Status(StatusCode::kNotFound, "no organization " + org_id);
  }
  std::string id = "env-" + ids_.next_uuid();
  environments_.emplace(id, org_id);
  if (log_) log_->audit("rbac", "env_created", id + " name=" + name);
  return id;
}

Result<std::string> RbacSystem::add_group(const std::string& tenant_id,
                                          const std::string& name) {
  if (!tenants_.contains(tenant_id)) {
    return Status(StatusCode::kNotFound, "no tenant " + tenant_id);
  }
  std::string id = "group-" + ids_.next_uuid();
  groups_.emplace(id, tenant_id);
  if (log_) log_->audit("rbac", "group_created", id + " name=" + name);
  return id;
}

Result<std::string> RbacSystem::add_user(const std::string& tenant_id,
                                         const std::string& name) {
  if (!tenants_.contains(tenant_id)) {
    return Status(StatusCode::kNotFound, "no tenant " + tenant_id);
  }
  std::string id = "user-" + ids_.next_uuid();
  users_.emplace(id, UserRecord{tenant_id, name, {}, {}});
  if (log_) log_->audit("rbac", "user_created", id + " name=" + name);
  return id;
}

Status RbacSystem::assign_role(const std::string& user_id, const std::string& env_id,
                               Role role) {
  auto user = users_.find(user_id);
  if (user == users_.end()) return Status(StatusCode::kNotFound, "no user " + user_id);
  if (!environments_.contains(env_id)) {
    return Status(StatusCode::kNotFound, "no environment " + env_id);
  }
  user->second.env_roles[env_id].insert(role);
  if (log_) {
    log_->audit("rbac", "role_assigned",
                user_id + " env=" + env_id + " role=" + std::string(role_name(role)));
  }
  return Status::ok();
}

Status RbacSystem::revoke_role(const std::string& user_id, const std::string& env_id,
                               Role role) {
  auto user = users_.find(user_id);
  if (user == users_.end()) return Status(StatusCode::kNotFound, "no user " + user_id);
  auto env_it = user->second.env_roles.find(env_id);
  if (env_it == user->second.env_roles.end() || env_it->second.erase(role) == 0) {
    return Status(StatusCode::kNotFound, "role not held");
  }
  if (log_) {
    log_->audit("rbac", "role_revoked",
                user_id + " env=" + env_id + " role=" + std::string(role_name(role)));
  }
  return Status::ok();
}

bool RbacSystem::has_role(const std::string& user_id, const std::string& env_id,
                          Role role) const {
  auto user = users_.find(user_id);
  if (user == users_.end()) return false;
  auto env_it = user->second.env_roles.find(env_id);
  return env_it != user->second.env_roles.end() && env_it->second.contains(role);
}

Status RbacSystem::add_user_to_group(const std::string& user_id,
                                     const std::string& group_id) {
  auto user = users_.find(user_id);
  if (user == users_.end()) return Status(StatusCode::kNotFound, "no user " + user_id);
  auto group = groups_.find(group_id);
  if (group == groups_.end()) return Status(StatusCode::kNotFound, "no group " + group_id);
  if (user->second.tenant != group->second) {
    return Status(StatusCode::kPermissionDenied,
                  "user and group belong to different tenants");
  }
  user->second.groups.insert(group_id);
  return Status::ok();
}

bool RbacSystem::is_group_member(const std::string& user_id,
                                 const std::string& group_id) const {
  auto user = users_.find(user_id);
  return user != users_.end() && user->second.groups.contains(group_id);
}

Status RbacSystem::grant_permission(const std::string& scope_id, Role role,
                                    const std::string& resource_prefix,
                                    Permission permission) {
  if (!tenants_.contains(scope_id) && !orgs_.contains(scope_id) &&
      !groups_.contains(scope_id)) {
    return Status(StatusCode::kNotFound, "scope must be a tenant, org or group");
  }
  policies_[scope_id].push_back(PolicyEntry{role, resource_prefix, permission});
  return Status::ok();
}

Status RbacSystem::check_access(const std::string& user_id, const std::string& env_id,
                                const std::string& scope_id, const std::string& resource,
                                Permission permission) const {
  auto user = users_.find(user_id);
  if (user == users_.end()) {
    return Status(StatusCode::kUnauthenticated, "unknown user " + user_id);
  }
  auto env_roles = user->second.env_roles.find(env_id);
  if (env_roles == user->second.env_roles.end() || env_roles->second.empty()) {
    return Status(StatusCode::kPermissionDenied,
                  "user holds no roles in environment " + env_id);
  }
  // Group-scoped policies additionally require membership (PHI consent).
  if (groups_.contains(scope_id) && !user->second.groups.contains(scope_id)) {
    return Status(StatusCode::kPermissionDenied,
                  "user is not a member of study group " + scope_id);
  }

  auto policy = policies_.find(scope_id);
  if (policy != policies_.end()) {
    for (const auto& entry : policy->second) {
      if (entry.permission != permission) continue;
      if (!env_roles->second.contains(entry.role)) continue;
      if (resource.starts_with(entry.resource_prefix)) return Status::ok();
    }
  }
  if (log_) {
    log_->warn("rbac", "access_denied",
               user_id + " " + std::string(permission_name(permission)) + " " + resource);
  }
  return Status(StatusCode::kPermissionDenied,
                "no grant covers " + resource + " for user " + user_id);
}

Status RbacSystem::set_tenant_qos(const std::string& tenant_id,
                                  std::uint64_t weight, double rate_per_sec,
                                  double burst) {
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return Status(StatusCode::kNotFound, "no tenant " + tenant_id);
  if (weight == 0) {
    return Status(StatusCode::kInvalidArgument, "qos weight must be >= 1");
  }
  if (rate_per_sec < 0 || burst < 0) {
    return Status(StatusCode::kInvalidArgument, "qos rate/burst must be >= 0");
  }
  it->second.qos_weight = weight;
  it->second.qos_rate = rate_per_sec;
  it->second.qos_burst = burst;
  if (log_) {
    log_->info("rbac", "tenant_qos_set",
               tenant_id + " weight=" + std::to_string(weight) +
                   " rate=" + std::to_string(rate_per_sec) +
                   " burst=" + std::to_string(burst));
  }
  return Status::ok();
}

Status RbacSystem::meter_call(const std::string& tenant_id) {
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return Status(StatusCode::kNotFound, "no tenant " + tenant_id);
  ++it->second.metered_calls;
  return Status::ok();
}

Result<std::uint64_t> RbacSystem::metered_calls(const std::string& tenant_id) const {
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return Status(StatusCode::kNotFound, "no tenant " + tenant_id);
  return it->second.metered_calls;
}

Result<TenantInfo> RbacSystem::tenant(const std::string& tenant_id) const {
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return Status(StatusCode::kNotFound, "no tenant " + tenant_id);
  return it->second;
}

Result<std::string> RbacSystem::user_tenant(const std::string& user_id) const {
  auto it = users_.find(user_id);
  if (it == users_.end()) return Status(StatusCode::kNotFound, "no user " + user_id);
  return it->second.tenant;
}

bool RbacSystem::environment_exists(const std::string& env_id) const {
  return environments_.contains(env_id);
}

}  // namespace hc::rbac
