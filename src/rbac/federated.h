// Federated identity management (Section II.B).
//
// "the platform user's identity could be managed and authenticated by an
// external (approved) system. Once users are authenticated, their roles and
// access privileges are managed by the platform's RBAC system."
//
// An IdentityProvider issues signed, expiring tokens over (subject, tenant).
// The FederatedAuthenticator keeps an approved-IdP key list, validates
// token signatures and expiry, and maps the external subject to a platform
// user id established at enrollment time.
#pragma once

#include <map>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "crypto/asymmetric.h"

namespace hc::rbac {

struct IdentityToken {
  std::string issuer;    // IdP name
  std::string subject;   // external identity, e.g. "jane@hospital.org"
  std::string tenant;    // tenant the identity belongs to
  SimTime issued_at = 0;
  SimTime expires_at = 0;
  Bytes signature;

  Bytes serialize_for_signing() const;
};

/// An external identity provider (simulated): holds its own keypair and
/// issues tokens with a configurable lifetime.
class IdentityProvider {
 public:
  IdentityProvider(std::string name, Rng& rng, ClockPtr clock,
                   SimTime token_lifetime = kHour);

  const std::string& name() const { return name_; }
  const crypto::PublicKey& public_key() const { return keys_.pub; }

  IdentityToken issue(const std::string& subject, const std::string& tenant) const;

 private:
  std::string name_;
  crypto::KeyPair keys_;
  ClockPtr clock_;
  SimTime token_lifetime_;
};

class FederatedAuthenticator {
 public:
  explicit FederatedAuthenticator(ClockPtr clock);

  /// Approves an external IdP (pins its key).
  void approve_idp(const std::string& name, const crypto::PublicKey& key);
  void revoke_idp(const std::string& name);

  /// Binds an external subject to a platform user id (enrollment).
  void enroll(const std::string& issuer, const std::string& subject,
              const std::string& platform_user_id);

  /// Validates the token and returns the enrolled platform user id.
  /// kUnauthenticated on any failure (unknown IdP, bad signature, expiry,
  /// unenrolled subject).
  Result<std::string> authenticate(const IdentityToken& token) const;

 private:
  ClockPtr clock_;
  std::map<std::string, crypto::PublicKey> approved_idps_;
  std::map<std::string, std::string> enrollments_;  // issuer|subject -> user id
};

}  // namespace hc::rbac
