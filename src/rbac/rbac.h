// Role-based access control (Section II.B, "Privacy Management").
//
// The paper's model (motivated by Cloud Foundry's): a *Tenant* is the
// namespace/account under which everything is grouped; *Organizations*
// represent departments holding shareable resources; *Groups* represent
// healthcare studies/programs to which PHI data is consented; *Environments*
// are development/deployment targets; *Users* hold *Roles* per environment
// within an organization; *Permissions* are read/write grants on resources
// scoped to tenant, organization, or group.
//
// The Registration Service behaviour is included: registering a tenant
// creates a default organization and a default environment, and tenants
// carry metering counters for billing.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/id.h"
#include "common/log.h"
#include "common/status.h"

namespace hc::rbac {

enum class Permission { kRead, kWrite };

std::string_view permission_name(Permission p);

/// Platform roles. Role grants are per (user, environment).
enum class Role {
  kTenantAdmin,  // manage the tenant's RBAC itself
  kDeveloper,    // deploy models/services to an environment
  kAnalyst,      // run analytics over de-identified data
  kClinician,    // access re-identified data for consented patients
  kAuditor,      // read logs/ledgers, never PHI payloads
};

std::string_view role_name(Role r);

struct TenantInfo {
  std::string id;
  std::string name;
  std::string default_org;
  std::string default_env;
  std::uint64_t metered_calls = 0;  // registration service: metering/billing
  // --- QoS contract (consumed by hc::sched via the gateway/ingestion) ----
  std::uint64_t qos_weight = 1;  // fair-queue share relative to other tenants
  double qos_rate = 0.0;   // admission tokens/second; 0 = platform default
  double qos_burst = 0.0;  // token-bucket depth; 0 = platform default
};

class RbacSystem {
 public:
  explicit RbacSystem(LogPtr log = nullptr);

  // --- registration service ------------------------------------------
  /// Creates the tenant plus its default organization and environment.
  Result<TenantInfo> register_tenant(const std::string& name);

  Result<std::string> add_organization(const std::string& tenant_id,
                                       const std::string& name);
  Result<std::string> add_environment(const std::string& org_id, const std::string& name);
  /// Groups model healthcare studies/programs consented to receive PHI.
  Result<std::string> add_group(const std::string& tenant_id, const std::string& name);
  Result<std::string> add_user(const std::string& tenant_id, const std::string& name);

  // --- role & membership administration --------------------------------
  /// "Users can have different roles in different environments."
  Status assign_role(const std::string& user_id, const std::string& env_id, Role role);
  Status revoke_role(const std::string& user_id, const std::string& env_id, Role role);
  bool has_role(const std::string& user_id, const std::string& env_id, Role role) const;

  Status add_user_to_group(const std::string& user_id, const std::string& group_id);
  bool is_group_member(const std::string& user_id, const std::string& group_id) const;

  // --- permission policy ----------------------------------------------
  /// Grants `role` the permission on resources with the given prefix within
  /// a scope (a tenant, organization, or group id).
  Status grant_permission(const std::string& scope_id, Role role,
                          const std::string& resource_prefix, Permission permission);

  /// The central check: does `user`, acting in `env`, hold `permission` on
  /// `resource` under scope `scope_id`? Grants are matched by longest
  /// resource prefix; absence of any grant denies (default-deny).
  Status check_access(const std::string& user_id, const std::string& env_id,
                      const std::string& scope_id, const std::string& resource,
                      Permission permission) const;

  // --- QoS (scheduling contract, Section II.B multi-tenancy) ------------
  /// Sets the tenant's scheduling contract: fair-queue weight (>= 1) and
  /// token-bucket rate/burst (0 keeps the platform default for that knob).
  /// The gateway and ingestion admission layers read these through
  /// tenant(); changing them takes effect on the next request.
  Status set_tenant_qos(const std::string& tenant_id, std::uint64_t weight,
                        double rate_per_sec, double burst);

  // --- metering (registration service) ---------------------------------
  Status meter_call(const std::string& tenant_id);
  Result<std::uint64_t> metered_calls(const std::string& tenant_id) const;

  // --- lookups -----------------------------------------------------------
  Result<TenantInfo> tenant(const std::string& tenant_id) const;
  Result<std::string> user_tenant(const std::string& user_id) const;
  bool environment_exists(const std::string& env_id) const;

  std::size_t user_count() const { return users_.size(); }

 private:
  struct UserRecord {
    std::string tenant;
    std::string name;
    std::map<std::string, std::set<Role>> env_roles;  // env -> roles
    std::set<std::string> groups;
  };

  struct PolicyEntry {
    Role role;
    std::string resource_prefix;
    Permission permission;
  };

  LogPtr log_;
  IdGenerator ids_;
  std::map<std::string, TenantInfo> tenants_;
  std::map<std::string, std::string> orgs_;          // org id -> tenant id
  std::map<std::string, std::string> environments_;  // env id -> org id
  std::map<std::string, std::string> groups_;        // group id -> tenant id
  std::map<std::string, UserRecord> users_;
  std::map<std::string, std::vector<PolicyEntry>> policies_;  // scope -> grants
};

}  // namespace hc::rbac
