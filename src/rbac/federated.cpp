#include "rbac/federated.h"

#include "crypto/sha256.h"

namespace hc::rbac {

Bytes IdentityToken::serialize_for_signing() const {
  crypto::Sha256 h;
  h.update(issuer);
  h.update(std::string_view("|"));
  h.update(subject);
  h.update(std::string_view("|"));
  h.update(tenant);
  std::uint8_t times[16];
  for (int i = 0; i < 8; ++i) {
    times[i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(issued_at) >> (56 - 8 * i));
    times[8 + i] =
        static_cast<std::uint8_t>(static_cast<std::uint64_t>(expires_at) >> (56 - 8 * i));
  }
  h.update(times, 16);
  return h.finalize();
}

IdentityProvider::IdentityProvider(std::string name, Rng& rng, ClockPtr clock,
                                   SimTime token_lifetime)
    : name_(std::move(name)),
      keys_(crypto::generate_keypair(rng)),
      clock_(std::move(clock)),
      token_lifetime_(token_lifetime) {}

IdentityToken IdentityProvider::issue(const std::string& subject,
                                      const std::string& tenant) const {
  IdentityToken token;
  token.issuer = name_;
  token.subject = subject;
  token.tenant = tenant;
  token.issued_at = clock_->now();
  token.expires_at = token.issued_at + token_lifetime_;
  token.signature = crypto::rsa_sign(keys_.priv, token.serialize_for_signing());
  return token;
}

FederatedAuthenticator::FederatedAuthenticator(ClockPtr clock)
    : clock_(std::move(clock)) {}

void FederatedAuthenticator::approve_idp(const std::string& name,
                                         const crypto::PublicKey& key) {
  approved_idps_[name] = key;
}

void FederatedAuthenticator::revoke_idp(const std::string& name) {
  approved_idps_.erase(name);
}

void FederatedAuthenticator::enroll(const std::string& issuer, const std::string& subject,
                                    const std::string& platform_user_id) {
  enrollments_[issuer + "|" + subject] = platform_user_id;
}

Result<std::string> FederatedAuthenticator::authenticate(
    const IdentityToken& token) const {
  auto idp = approved_idps_.find(token.issuer);
  if (idp == approved_idps_.end()) {
    return Status(StatusCode::kUnauthenticated, "IdP not approved: " + token.issuer);
  }
  if (!crypto::rsa_verify(idp->second, token.serialize_for_signing(), token.signature)) {
    return Status(StatusCode::kUnauthenticated, "token signature invalid");
  }
  if (clock_->now() >= token.expires_at) {
    return Status(StatusCode::kUnauthenticated, "token expired");
  }
  auto enrolled = enrollments_.find(token.issuer + "|" + token.subject);
  if (enrolled == enrollments_.end()) {
    return Status(StatusCode::kUnauthenticated,
                  "subject not enrolled: " + token.subject);
  }
  return enrolled->second;
}

}  // namespace hc::rbac
