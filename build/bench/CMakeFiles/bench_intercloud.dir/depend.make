# Empty dependencies file for bench_intercloud.
# This may be replaced when dependencies are built.
