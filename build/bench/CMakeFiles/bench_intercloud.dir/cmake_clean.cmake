file(REMOVE_RECURSE
  "CMakeFiles/bench_intercloud.dir/bench_intercloud.cpp.o"
  "CMakeFiles/bench_intercloud.dir/bench_intercloud.cpp.o.d"
  "bench_intercloud"
  "bench_intercloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intercloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
