file(REMOVE_RECURSE
  "CMakeFiles/bench_jmf.dir/bench_jmf.cpp.o"
  "CMakeFiles/bench_jmf.dir/bench_jmf.cpp.o.d"
  "bench_jmf"
  "bench_jmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
