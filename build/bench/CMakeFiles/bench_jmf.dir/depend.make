# Empty dependencies file for bench_jmf.
# This may be replaced when dependencies are built.
