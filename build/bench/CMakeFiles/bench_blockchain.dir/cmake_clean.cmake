file(REMOVE_RECURSE
  "CMakeFiles/bench_blockchain.dir/bench_blockchain.cpp.o"
  "CMakeFiles/bench_blockchain.dir/bench_blockchain.cpp.o.d"
  "bench_blockchain"
  "bench_blockchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blockchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
