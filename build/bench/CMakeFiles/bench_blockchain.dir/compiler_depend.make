# Empty compiler generated dependencies file for bench_blockchain.
# This may be replaced when dependencies are built.
