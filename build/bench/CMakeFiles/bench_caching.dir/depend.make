# Empty dependencies file for bench_caching.
# This may be replaced when dependencies are built.
