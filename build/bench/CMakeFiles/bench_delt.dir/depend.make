# Empty dependencies file for bench_delt.
# This may be replaced when dependencies are built.
