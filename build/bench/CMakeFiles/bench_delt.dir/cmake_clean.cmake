file(REMOVE_RECURSE
  "CMakeFiles/bench_delt.dir/bench_delt.cpp.o"
  "CMakeFiles/bench_delt.dir/bench_delt.cpp.o.d"
  "bench_delt"
  "bench_delt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
