# Empty dependencies file for bench_services.
# This may be replaced when dependencies are built.
