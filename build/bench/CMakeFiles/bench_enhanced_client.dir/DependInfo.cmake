
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_enhanced_client.cpp" "bench/CMakeFiles/bench_enhanced_client.dir/bench_enhanced_client.cpp.o" "gcc" "bench/CMakeFiles/bench_enhanced_client.dir/bench_enhanced_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/hc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/hc_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/rbac/CMakeFiles/hc_rbac.dir/DependInfo.cmake"
  "/root/repo/build/src/ingestion/CMakeFiles/hc_ingestion.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/fhir/CMakeFiles/hc_fhir.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/hc_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/blockchain/CMakeFiles/hc_blockchain.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/hc_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/hc_services.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/hc_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
