file(REMOVE_RECURSE
  "CMakeFiles/bench_enhanced_client.dir/bench_enhanced_client.cpp.o"
  "CMakeFiles/bench_enhanced_client.dir/bench_enhanced_client.cpp.o.d"
  "bench_enhanced_client"
  "bench_enhanced_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enhanced_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
