# Empty compiler generated dependencies file for bench_enhanced_client.
# This may be replaced when dependencies are built.
