file(REMOVE_RECURSE
  "CMakeFiles/bench_rbac_api.dir/bench_rbac_api.cpp.o"
  "CMakeFiles/bench_rbac_api.dir/bench_rbac_api.cpp.o.d"
  "bench_rbac_api"
  "bench_rbac_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rbac_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
