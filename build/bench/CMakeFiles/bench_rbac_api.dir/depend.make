# Empty dependencies file for bench_rbac_api.
# This may be replaced when dependencies are built.
