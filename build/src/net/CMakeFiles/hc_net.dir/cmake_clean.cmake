file(REMOVE_RECURSE
  "CMakeFiles/hc_net.dir/network.cpp.o"
  "CMakeFiles/hc_net.dir/network.cpp.o.d"
  "CMakeFiles/hc_net.dir/secure_channel.cpp.o"
  "CMakeFiles/hc_net.dir/secure_channel.cpp.o.d"
  "libhc_net.a"
  "libhc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
