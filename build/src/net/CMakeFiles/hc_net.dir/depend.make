# Empty dependencies file for hc_net.
# This may be replaced when dependencies are built.
