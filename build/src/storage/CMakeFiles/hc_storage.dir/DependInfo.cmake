
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/data_lake.cpp" "src/storage/CMakeFiles/hc_storage.dir/data_lake.cpp.o" "gcc" "src/storage/CMakeFiles/hc_storage.dir/data_lake.cpp.o.d"
  "/root/repo/src/storage/replication.cpp" "src/storage/CMakeFiles/hc_storage.dir/replication.cpp.o" "gcc" "src/storage/CMakeFiles/hc_storage.dir/replication.cpp.o.d"
  "/root/repo/src/storage/staging.cpp" "src/storage/CMakeFiles/hc_storage.dir/staging.cpp.o" "gcc" "src/storage/CMakeFiles/hc_storage.dir/staging.cpp.o.d"
  "/root/repo/src/storage/status_tracker.cpp" "src/storage/CMakeFiles/hc_storage.dir/status_tracker.cpp.o" "gcc" "src/storage/CMakeFiles/hc_storage.dir/status_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
