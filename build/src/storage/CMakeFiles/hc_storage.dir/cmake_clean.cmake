file(REMOVE_RECURSE
  "CMakeFiles/hc_storage.dir/data_lake.cpp.o"
  "CMakeFiles/hc_storage.dir/data_lake.cpp.o.d"
  "CMakeFiles/hc_storage.dir/replication.cpp.o"
  "CMakeFiles/hc_storage.dir/replication.cpp.o.d"
  "CMakeFiles/hc_storage.dir/staging.cpp.o"
  "CMakeFiles/hc_storage.dir/staging.cpp.o.d"
  "CMakeFiles/hc_storage.dir/status_tracker.cpp.o"
  "CMakeFiles/hc_storage.dir/status_tracker.cpp.o.d"
  "libhc_storage.a"
  "libhc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
