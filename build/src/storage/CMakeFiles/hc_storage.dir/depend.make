# Empty dependencies file for hc_storage.
# This may be replaced when dependencies are built.
