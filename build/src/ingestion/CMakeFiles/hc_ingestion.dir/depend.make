# Empty dependencies file for hc_ingestion.
# This may be replaced when dependencies are built.
