file(REMOVE_RECURSE
  "libhc_ingestion.a"
)
