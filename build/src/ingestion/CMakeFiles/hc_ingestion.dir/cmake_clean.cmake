file(REMOVE_RECURSE
  "CMakeFiles/hc_ingestion.dir/export.cpp.o"
  "CMakeFiles/hc_ingestion.dir/export.cpp.o.d"
  "CMakeFiles/hc_ingestion.dir/ingestion.cpp.o"
  "CMakeFiles/hc_ingestion.dir/ingestion.cpp.o.d"
  "CMakeFiles/hc_ingestion.dir/malware.cpp.o"
  "CMakeFiles/hc_ingestion.dir/malware.cpp.o.d"
  "libhc_ingestion.a"
  "libhc_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
