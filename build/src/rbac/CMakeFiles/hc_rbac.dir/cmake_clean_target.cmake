file(REMOVE_RECURSE
  "libhc_rbac.a"
)
