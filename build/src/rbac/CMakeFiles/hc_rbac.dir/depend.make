# Empty dependencies file for hc_rbac.
# This may be replaced when dependencies are built.
