file(REMOVE_RECURSE
  "CMakeFiles/hc_rbac.dir/federated.cpp.o"
  "CMakeFiles/hc_rbac.dir/federated.cpp.o.d"
  "CMakeFiles/hc_rbac.dir/rbac.cpp.o"
  "CMakeFiles/hc_rbac.dir/rbac.cpp.o.d"
  "libhc_rbac.a"
  "libhc_rbac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_rbac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
