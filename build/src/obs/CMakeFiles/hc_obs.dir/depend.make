# Empty dependencies file for hc_obs.
# This may be replaced when dependencies are built.
