file(REMOVE_RECURSE
  "CMakeFiles/hc_obs.dir/export.cpp.o"
  "CMakeFiles/hc_obs.dir/export.cpp.o.d"
  "CMakeFiles/hc_obs.dir/metrics.cpp.o"
  "CMakeFiles/hc_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/hc_obs.dir/trace.cpp.o"
  "CMakeFiles/hc_obs.dir/trace.cpp.o.d"
  "libhc_obs.a"
  "libhc_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
