file(REMOVE_RECURSE
  "libhc_obs.a"
)
