# Empty compiler generated dependencies file for hc_blockchain.
# This may be replaced when dependencies are built.
