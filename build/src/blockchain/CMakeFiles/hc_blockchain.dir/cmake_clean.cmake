file(REMOVE_RECURSE
  "CMakeFiles/hc_blockchain.dir/auditor.cpp.o"
  "CMakeFiles/hc_blockchain.dir/auditor.cpp.o.d"
  "CMakeFiles/hc_blockchain.dir/contracts.cpp.o"
  "CMakeFiles/hc_blockchain.dir/contracts.cpp.o.d"
  "CMakeFiles/hc_blockchain.dir/ledger.cpp.o"
  "CMakeFiles/hc_blockchain.dir/ledger.cpp.o.d"
  "libhc_blockchain.a"
  "libhc_blockchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_blockchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
