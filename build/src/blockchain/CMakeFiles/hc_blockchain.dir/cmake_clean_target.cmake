file(REMOVE_RECURSE
  "libhc_blockchain.a"
)
