# CMake generated Testfile for 
# Source directory: /root/repo/src/blockchain
# Build directory: /root/repo/build/src/blockchain
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
