file(REMOVE_RECURSE
  "CMakeFiles/hc_crypto.dir/aes.cpp.o"
  "CMakeFiles/hc_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/hc_crypto.dir/asymmetric.cpp.o"
  "CMakeFiles/hc_crypto.dir/asymmetric.cpp.o.d"
  "CMakeFiles/hc_crypto.dir/graph_mac.cpp.o"
  "CMakeFiles/hc_crypto.dir/graph_mac.cpp.o.d"
  "CMakeFiles/hc_crypto.dir/hmac.cpp.o"
  "CMakeFiles/hc_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/hc_crypto.dir/kms.cpp.o"
  "CMakeFiles/hc_crypto.dir/kms.cpp.o.d"
  "CMakeFiles/hc_crypto.dir/merkle.cpp.o"
  "CMakeFiles/hc_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/hc_crypto.dir/redactable.cpp.o"
  "CMakeFiles/hc_crypto.dir/redactable.cpp.o.d"
  "CMakeFiles/hc_crypto.dir/sha256.cpp.o"
  "CMakeFiles/hc_crypto.dir/sha256.cpp.o.d"
  "libhc_crypto.a"
  "libhc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
