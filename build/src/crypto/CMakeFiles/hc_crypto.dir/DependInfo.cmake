
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/hc_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/hc_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/asymmetric.cpp" "src/crypto/CMakeFiles/hc_crypto.dir/asymmetric.cpp.o" "gcc" "src/crypto/CMakeFiles/hc_crypto.dir/asymmetric.cpp.o.d"
  "/root/repo/src/crypto/graph_mac.cpp" "src/crypto/CMakeFiles/hc_crypto.dir/graph_mac.cpp.o" "gcc" "src/crypto/CMakeFiles/hc_crypto.dir/graph_mac.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/hc_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/hc_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/kms.cpp" "src/crypto/CMakeFiles/hc_crypto.dir/kms.cpp.o" "gcc" "src/crypto/CMakeFiles/hc_crypto.dir/kms.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/crypto/CMakeFiles/hc_crypto.dir/merkle.cpp.o" "gcc" "src/crypto/CMakeFiles/hc_crypto.dir/merkle.cpp.o.d"
  "/root/repo/src/crypto/redactable.cpp" "src/crypto/CMakeFiles/hc_crypto.dir/redactable.cpp.o" "gcc" "src/crypto/CMakeFiles/hc_crypto.dir/redactable.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/hc_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/hc_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
