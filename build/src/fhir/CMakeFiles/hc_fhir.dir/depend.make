# Empty dependencies file for hc_fhir.
# This may be replaced when dependencies are built.
