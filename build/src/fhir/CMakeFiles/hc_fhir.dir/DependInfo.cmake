
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fhir/hl7.cpp" "src/fhir/CMakeFiles/hc_fhir.dir/hl7.cpp.o" "gcc" "src/fhir/CMakeFiles/hc_fhir.dir/hl7.cpp.o.d"
  "/root/repo/src/fhir/json.cpp" "src/fhir/CMakeFiles/hc_fhir.dir/json.cpp.o" "gcc" "src/fhir/CMakeFiles/hc_fhir.dir/json.cpp.o.d"
  "/root/repo/src/fhir/resources.cpp" "src/fhir/CMakeFiles/hc_fhir.dir/resources.cpp.o" "gcc" "src/fhir/CMakeFiles/hc_fhir.dir/resources.cpp.o.d"
  "/root/repo/src/fhir/synthetic.cpp" "src/fhir/CMakeFiles/hc_fhir.dir/synthetic.cpp.o" "gcc" "src/fhir/CMakeFiles/hc_fhir.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/hc_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
