file(REMOVE_RECURSE
  "libhc_fhir.a"
)
