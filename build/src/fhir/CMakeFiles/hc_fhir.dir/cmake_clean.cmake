file(REMOVE_RECURSE
  "CMakeFiles/hc_fhir.dir/hl7.cpp.o"
  "CMakeFiles/hc_fhir.dir/hl7.cpp.o.d"
  "CMakeFiles/hc_fhir.dir/json.cpp.o"
  "CMakeFiles/hc_fhir.dir/json.cpp.o.d"
  "CMakeFiles/hc_fhir.dir/resources.cpp.o"
  "CMakeFiles/hc_fhir.dir/resources.cpp.o.d"
  "CMakeFiles/hc_fhir.dir/synthetic.cpp.o"
  "CMakeFiles/hc_fhir.dir/synthetic.cpp.o.d"
  "libhc_fhir.a"
  "libhc_fhir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_fhir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
