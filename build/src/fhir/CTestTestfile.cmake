# CMake generated Testfile for 
# Source directory: /root/repo/src/fhir
# Build directory: /root/repo/build/src/fhir
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
