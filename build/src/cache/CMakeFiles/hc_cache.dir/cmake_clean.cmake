file(REMOVE_RECURSE
  "CMakeFiles/hc_cache.dir/cache.cpp.o"
  "CMakeFiles/hc_cache.dir/cache.cpp.o.d"
  "CMakeFiles/hc_cache.dir/multilevel.cpp.o"
  "CMakeFiles/hc_cache.dir/multilevel.cpp.o.d"
  "libhc_cache.a"
  "libhc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
