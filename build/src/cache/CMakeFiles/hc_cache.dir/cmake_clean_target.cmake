file(REMOVE_RECURSE
  "libhc_cache.a"
)
