# Empty compiler generated dependencies file for hc_cache.
# This may be replaced when dependencies are built.
