file(REMOVE_RECURSE
  "CMakeFiles/hc_common.dir/bytes.cpp.o"
  "CMakeFiles/hc_common.dir/bytes.cpp.o.d"
  "CMakeFiles/hc_common.dir/clock.cpp.o"
  "CMakeFiles/hc_common.dir/clock.cpp.o.d"
  "CMakeFiles/hc_common.dir/id.cpp.o"
  "CMakeFiles/hc_common.dir/id.cpp.o.d"
  "CMakeFiles/hc_common.dir/log.cpp.o"
  "CMakeFiles/hc_common.dir/log.cpp.o.d"
  "CMakeFiles/hc_common.dir/rng.cpp.o"
  "CMakeFiles/hc_common.dir/rng.cpp.o.d"
  "CMakeFiles/hc_common.dir/status.cpp.o"
  "CMakeFiles/hc_common.dir/status.cpp.o.d"
  "libhc_common.a"
  "libhc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
