file(REMOVE_RECURSE
  "libhc_common.a"
)
