# Empty dependencies file for hc_common.
# This may be replaced when dependencies are built.
