file(REMOVE_RECURSE
  "CMakeFiles/hc_tpm.dir/attestation.cpp.o"
  "CMakeFiles/hc_tpm.dir/attestation.cpp.o.d"
  "CMakeFiles/hc_tpm.dir/image.cpp.o"
  "CMakeFiles/hc_tpm.dir/image.cpp.o.d"
  "CMakeFiles/hc_tpm.dir/tpm.cpp.o"
  "CMakeFiles/hc_tpm.dir/tpm.cpp.o.d"
  "CMakeFiles/hc_tpm.dir/trust_chain.cpp.o"
  "CMakeFiles/hc_tpm.dir/trust_chain.cpp.o.d"
  "CMakeFiles/hc_tpm.dir/vtpm.cpp.o"
  "CMakeFiles/hc_tpm.dir/vtpm.cpp.o.d"
  "libhc_tpm.a"
  "libhc_tpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_tpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
