# Empty dependencies file for hc_tpm.
# This may be replaced when dependencies are built.
