file(REMOVE_RECURSE
  "libhc_tpm.a"
)
