
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpm/attestation.cpp" "src/tpm/CMakeFiles/hc_tpm.dir/attestation.cpp.o" "gcc" "src/tpm/CMakeFiles/hc_tpm.dir/attestation.cpp.o.d"
  "/root/repo/src/tpm/image.cpp" "src/tpm/CMakeFiles/hc_tpm.dir/image.cpp.o" "gcc" "src/tpm/CMakeFiles/hc_tpm.dir/image.cpp.o.d"
  "/root/repo/src/tpm/tpm.cpp" "src/tpm/CMakeFiles/hc_tpm.dir/tpm.cpp.o" "gcc" "src/tpm/CMakeFiles/hc_tpm.dir/tpm.cpp.o.d"
  "/root/repo/src/tpm/trust_chain.cpp" "src/tpm/CMakeFiles/hc_tpm.dir/trust_chain.cpp.o" "gcc" "src/tpm/CMakeFiles/hc_tpm.dir/trust_chain.cpp.o.d"
  "/root/repo/src/tpm/vtpm.cpp" "src/tpm/CMakeFiles/hc_tpm.dir/vtpm.cpp.o" "gcc" "src/tpm/CMakeFiles/hc_tpm.dir/vtpm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
