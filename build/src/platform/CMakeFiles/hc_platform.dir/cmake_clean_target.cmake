file(REMOVE_RECURSE
  "libhc_platform.a"
)
