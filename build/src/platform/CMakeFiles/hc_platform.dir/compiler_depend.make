# Empty compiler generated dependencies file for hc_platform.
# This may be replaced when dependencies are built.
