file(REMOVE_RECURSE
  "CMakeFiles/hc_platform.dir/change_mgmt.cpp.o"
  "CMakeFiles/hc_platform.dir/change_mgmt.cpp.o.d"
  "CMakeFiles/hc_platform.dir/compliance.cpp.o"
  "CMakeFiles/hc_platform.dir/compliance.cpp.o.d"
  "CMakeFiles/hc_platform.dir/enhanced_client.cpp.o"
  "CMakeFiles/hc_platform.dir/enhanced_client.cpp.o.d"
  "CMakeFiles/hc_platform.dir/gateway.cpp.o"
  "CMakeFiles/hc_platform.dir/gateway.cpp.o.d"
  "CMakeFiles/hc_platform.dir/instance.cpp.o"
  "CMakeFiles/hc_platform.dir/instance.cpp.o.d"
  "CMakeFiles/hc_platform.dir/intercloud.cpp.o"
  "CMakeFiles/hc_platform.dir/intercloud.cpp.o.d"
  "CMakeFiles/hc_platform.dir/log_anchor.cpp.o"
  "CMakeFiles/hc_platform.dir/log_anchor.cpp.o.d"
  "CMakeFiles/hc_platform.dir/routes.cpp.o"
  "CMakeFiles/hc_platform.dir/routes.cpp.o.d"
  "libhc_platform.a"
  "libhc_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
