# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("crypto")
subdirs("net")
subdirs("tpm")
subdirs("rbac")
subdirs("storage")
subdirs("cache")
subdirs("privacy")
subdirs("fhir")
subdirs("blockchain")
subdirs("ingestion")
subdirs("analytics")
subdirs("services")
subdirs("platform")
