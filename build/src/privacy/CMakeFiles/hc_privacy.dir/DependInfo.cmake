
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/deid.cpp" "src/privacy/CMakeFiles/hc_privacy.dir/deid.cpp.o" "gcc" "src/privacy/CMakeFiles/hc_privacy.dir/deid.cpp.o.d"
  "/root/repo/src/privacy/kanonymity.cpp" "src/privacy/CMakeFiles/hc_privacy.dir/kanonymity.cpp.o" "gcc" "src/privacy/CMakeFiles/hc_privacy.dir/kanonymity.cpp.o.d"
  "/root/repo/src/privacy/verification.cpp" "src/privacy/CMakeFiles/hc_privacy.dir/verification.cpp.o" "gcc" "src/privacy/CMakeFiles/hc_privacy.dir/verification.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
