file(REMOVE_RECURSE
  "CMakeFiles/hc_privacy.dir/deid.cpp.o"
  "CMakeFiles/hc_privacy.dir/deid.cpp.o.d"
  "CMakeFiles/hc_privacy.dir/kanonymity.cpp.o"
  "CMakeFiles/hc_privacy.dir/kanonymity.cpp.o.d"
  "CMakeFiles/hc_privacy.dir/verification.cpp.o"
  "CMakeFiles/hc_privacy.dir/verification.cpp.o.d"
  "libhc_privacy.a"
  "libhc_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
