file(REMOVE_RECURSE
  "libhc_privacy.a"
)
