# Empty compiler generated dependencies file for hc_privacy.
# This may be replaced when dependencies are built.
