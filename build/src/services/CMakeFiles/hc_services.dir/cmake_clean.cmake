file(REMOVE_RECURSE
  "CMakeFiles/hc_services.dir/knowledge.cpp.o"
  "CMakeFiles/hc_services.dir/knowledge.cpp.o.d"
  "CMakeFiles/hc_services.dir/registry.cpp.o"
  "CMakeFiles/hc_services.dir/registry.cpp.o.d"
  "libhc_services.a"
  "libhc_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
