file(REMOVE_RECURSE
  "libhc_services.a"
)
