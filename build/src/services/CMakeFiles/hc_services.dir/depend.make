# Empty dependencies file for hc_services.
# This may be replaced when dependencies are built.
