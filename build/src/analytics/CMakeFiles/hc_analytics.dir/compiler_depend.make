# Empty compiler generated dependencies file for hc_analytics.
# This may be replaced when dependencies are built.
