file(REMOVE_RECURSE
  "CMakeFiles/hc_analytics.dir/ddi.cpp.o"
  "CMakeFiles/hc_analytics.dir/ddi.cpp.o.d"
  "CMakeFiles/hc_analytics.dir/delt.cpp.o"
  "CMakeFiles/hc_analytics.dir/delt.cpp.o.d"
  "CMakeFiles/hc_analytics.dir/emr.cpp.o"
  "CMakeFiles/hc_analytics.dir/emr.cpp.o.d"
  "CMakeFiles/hc_analytics.dir/jmf.cpp.o"
  "CMakeFiles/hc_analytics.dir/jmf.cpp.o.d"
  "CMakeFiles/hc_analytics.dir/lifecycle.cpp.o"
  "CMakeFiles/hc_analytics.dir/lifecycle.cpp.o.d"
  "CMakeFiles/hc_analytics.dir/matrix.cpp.o"
  "CMakeFiles/hc_analytics.dir/matrix.cpp.o.d"
  "CMakeFiles/hc_analytics.dir/metrics.cpp.o"
  "CMakeFiles/hc_analytics.dir/metrics.cpp.o.d"
  "CMakeFiles/hc_analytics.dir/mf.cpp.o"
  "CMakeFiles/hc_analytics.dir/mf.cpp.o.d"
  "CMakeFiles/hc_analytics.dir/similarity.cpp.o"
  "CMakeFiles/hc_analytics.dir/similarity.cpp.o.d"
  "libhc_analytics.a"
  "libhc_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
