file(REMOVE_RECURSE
  "libhc_analytics.a"
)
