
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/ddi.cpp" "src/analytics/CMakeFiles/hc_analytics.dir/ddi.cpp.o" "gcc" "src/analytics/CMakeFiles/hc_analytics.dir/ddi.cpp.o.d"
  "/root/repo/src/analytics/delt.cpp" "src/analytics/CMakeFiles/hc_analytics.dir/delt.cpp.o" "gcc" "src/analytics/CMakeFiles/hc_analytics.dir/delt.cpp.o.d"
  "/root/repo/src/analytics/emr.cpp" "src/analytics/CMakeFiles/hc_analytics.dir/emr.cpp.o" "gcc" "src/analytics/CMakeFiles/hc_analytics.dir/emr.cpp.o.d"
  "/root/repo/src/analytics/jmf.cpp" "src/analytics/CMakeFiles/hc_analytics.dir/jmf.cpp.o" "gcc" "src/analytics/CMakeFiles/hc_analytics.dir/jmf.cpp.o.d"
  "/root/repo/src/analytics/lifecycle.cpp" "src/analytics/CMakeFiles/hc_analytics.dir/lifecycle.cpp.o" "gcc" "src/analytics/CMakeFiles/hc_analytics.dir/lifecycle.cpp.o.d"
  "/root/repo/src/analytics/matrix.cpp" "src/analytics/CMakeFiles/hc_analytics.dir/matrix.cpp.o" "gcc" "src/analytics/CMakeFiles/hc_analytics.dir/matrix.cpp.o.d"
  "/root/repo/src/analytics/metrics.cpp" "src/analytics/CMakeFiles/hc_analytics.dir/metrics.cpp.o" "gcc" "src/analytics/CMakeFiles/hc_analytics.dir/metrics.cpp.o.d"
  "/root/repo/src/analytics/mf.cpp" "src/analytics/CMakeFiles/hc_analytics.dir/mf.cpp.o" "gcc" "src/analytics/CMakeFiles/hc_analytics.dir/mf.cpp.o.d"
  "/root/repo/src/analytics/similarity.cpp" "src/analytics/CMakeFiles/hc_analytics.dir/similarity.cpp.o" "gcc" "src/analytics/CMakeFiles/hc_analytics.dir/similarity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
