# Empty dependencies file for drug_repositioning.
# This may be replaced when dependencies are built.
