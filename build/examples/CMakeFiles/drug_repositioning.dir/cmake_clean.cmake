file(REMOVE_RECURSE
  "CMakeFiles/drug_repositioning.dir/drug_repositioning.cpp.o"
  "CMakeFiles/drug_repositioning.dir/drug_repositioning.cpp.o.d"
  "drug_repositioning"
  "drug_repositioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drug_repositioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
