file(REMOVE_RECURSE
  "CMakeFiles/intercloud_transfer.dir/intercloud_transfer.cpp.o"
  "CMakeFiles/intercloud_transfer.dir/intercloud_transfer.cpp.o.d"
  "intercloud_transfer"
  "intercloud_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intercloud_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
