# Empty compiler generated dependencies file for intercloud_transfer.
# This may be replaced when dependencies are built.
