# Empty dependencies file for drug_interactions.
# This may be replaced when dependencies are built.
