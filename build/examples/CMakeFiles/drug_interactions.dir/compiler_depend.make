# Empty compiler generated dependencies file for drug_interactions.
# This may be replaced when dependencies are built.
