file(REMOVE_RECURSE
  "CMakeFiles/drug_interactions.dir/drug_interactions.cpp.o"
  "CMakeFiles/drug_interactions.dir/drug_interactions.cpp.o.d"
  "drug_interactions"
  "drug_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drug_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
