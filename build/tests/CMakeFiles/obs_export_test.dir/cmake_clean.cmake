file(REMOVE_RECURSE
  "CMakeFiles/obs_export_test.dir/obs_export_test.cpp.o"
  "CMakeFiles/obs_export_test.dir/obs_export_test.cpp.o.d"
  "obs_export_test"
  "obs_export_test.pdb"
  "obs_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
