file(REMOVE_RECURSE
  "CMakeFiles/graph_mac_test.dir/graph_mac_test.cpp.o"
  "CMakeFiles/graph_mac_test.dir/graph_mac_test.cpp.o.d"
  "graph_mac_test"
  "graph_mac_test.pdb"
  "graph_mac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_mac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
