# Empty compiler generated dependencies file for graph_mac_test.
# This may be replaced when dependencies are built.
