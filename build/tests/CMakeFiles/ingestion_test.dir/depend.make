# Empty dependencies file for ingestion_test.
# This may be replaced when dependencies are built.
