file(REMOVE_RECURSE
  "CMakeFiles/ingestion_test.dir/ingestion_test.cpp.o"
  "CMakeFiles/ingestion_test.dir/ingestion_test.cpp.o.d"
  "ingestion_test"
  "ingestion_test.pdb"
  "ingestion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingestion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
