# Empty compiler generated dependencies file for fhir_test.
# This may be replaced when dependencies are built.
