file(REMOVE_RECURSE
  "CMakeFiles/fhir_test.dir/fhir_test.cpp.o"
  "CMakeFiles/fhir_test.dir/fhir_test.cpp.o.d"
  "fhir_test"
  "fhir_test.pdb"
  "fhir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
