file(REMOVE_RECURSE
  "CMakeFiles/check-obs"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/check-obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
