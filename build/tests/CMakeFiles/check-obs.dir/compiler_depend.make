# Empty custom commands generated dependencies file for check-obs.
# This may be replaced when dependencies are built.
