# Empty dependencies file for routes_test.
# This may be replaced when dependencies are built.
