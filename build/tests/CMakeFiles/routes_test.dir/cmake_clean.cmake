file(REMOVE_RECURSE
  "CMakeFiles/routes_test.dir/routes_test.cpp.o"
  "CMakeFiles/routes_test.dir/routes_test.cpp.o.d"
  "routes_test"
  "routes_test.pdb"
  "routes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
