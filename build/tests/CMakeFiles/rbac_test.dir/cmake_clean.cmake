file(REMOVE_RECURSE
  "CMakeFiles/rbac_test.dir/rbac_test.cpp.o"
  "CMakeFiles/rbac_test.dir/rbac_test.cpp.o.d"
  "rbac_test"
  "rbac_test.pdb"
  "rbac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
