# Empty dependencies file for rbac_test.
# This may be replaced when dependencies are built.
