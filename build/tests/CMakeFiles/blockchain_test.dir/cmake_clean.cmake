file(REMOVE_RECURSE
  "CMakeFiles/blockchain_test.dir/blockchain_test.cpp.o"
  "CMakeFiles/blockchain_test.dir/blockchain_test.cpp.o.d"
  "blockchain_test"
  "blockchain_test.pdb"
  "blockchain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockchain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
