# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/tpm_test[1]_include.cmake")
include("/root/repo/build/tests/rbac_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/privacy_test[1]_include.cmake")
include("/root/repo/build/tests/fhir_test[1]_include.cmake")
include("/root/repo/build/tests/blockchain_test[1]_include.cmake")
include("/root/repo/build/tests/ingestion_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_test[1]_include.cmake")
include("/root/repo/build/tests/services_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/compliance_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/routes_test[1]_include.cmake")
include("/root/repo/build/tests/graph_mac_test[1]_include.cmake")
include("/root/repo/build/tests/adversary_test[1]_include.cmake")
include("/root/repo/build/tests/replication_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/obs_export_test[1]_include.cmake")
