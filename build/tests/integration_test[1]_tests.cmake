add_test([=[EndToEnd.FullPlatformScenario]=]  /root/repo/build/tests/integration_test [==[--gtest_filter=EndToEnd.FullPlatformScenario]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[EndToEnd.FullPlatformScenario]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_test_TESTS EndToEnd.FullPlatformScenario)
